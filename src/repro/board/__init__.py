"""Multi-chip board simulation: a mesh of TrueNorth chips with link delays.

The package models an NS16e-style board as a grid of
:class:`~repro.truenorth.chip.TrueNorthChip` instances joined by mesh
links (:class:`~repro.board.board.Board`); a spike crossing a chip
boundary pays ``link_delay`` ticks per chip hop on top of the on-chip
router delay, and the exact latency/drain model of the single-chip
pipeline extends board-wide.  Placement and the inference drivers for
boards live in :mod:`repro.mapping.placement`
(:func:`~repro.mapping.placement.place_on_board`) and
:mod:`repro.mapping.pipeline`
(:func:`~repro.mapping.pipeline.run_board_inference_multicopy`); the
``board`` evaluation backend in :mod:`repro.api` drives them.
"""

from repro.board.board import Board, LinkFabric
from repro.board.topology import BoardConfig, board_shape_for

__all__ = [
    "Board",
    "LinkFabric",
    "BoardConfig",
    "board_shape_for",
]
