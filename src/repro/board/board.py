"""A board of TrueNorth chips advanced in lock-step with mesh links.

:class:`Board` owns one :class:`~repro.truenorth.chip.TrueNorthChip` per
grid position and a :class:`LinkFabric` that carries spikes between them.
Every board tick advances every *active* chip (one that is in batch mode)
by one chip tick, then pops each chip router's egress — the spikes whose
routes point off-chip (:meth:`~repro.truenorth.router.SpikeRouter.connect_remote`)
— and injects them into the target chip's router at

    ``due = emission tick + target router delay + link_delay * distance``

where ``distance`` is the Manhattan chip distance on the board grid.  The
receiving router's pending buffers double as the link queues: a spike in
flight over a link is a pre-scattered buffer entry at a future tick, so
the exact drain model ("step while any router holds pending spikes, assert
the worst-path bound") extends board-wide without heuristics.

Injection at emission time is safe because the router delay is at least 1:
an egress record produced at board tick ``t`` is always due at ``t + 1``
or later, so no chip — whether it steps before or after the emitter within
the same board tick — can have popped its deliveries for the due tick yet
(the board asserts this).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.board.topology import BoardConfig
from repro.truenorth.chip import TrueNorthChip


class LinkFabric:
    """Counters of the inter-chip mesh links.

    On-chip routers keep their on-chip delivered/hop semantics; everything
    a spike does *between* chips is accounted here, so conservation checks
    can split traffic into on-chip and link shares exactly.

    Attributes:
        spikes_carried: routed (sample, spike) pairs that crossed a link.
        hop_count: the same pairs weighted by their chip Manhattan distance.
        pair_counts: pairs carried per ``(source_chip, target_chip)``.
    """

    def __init__(self) -> None:
        self.spikes_carried = 0
        self.hop_count = 0
        self.pair_counts: Dict[Tuple[int, int], int] = {}

    def record(self, source_chip: int, target_chip: int, routed: int, distance: int) -> None:
        """Account ``routed`` spikes travelling ``distance`` mesh hops."""
        self.spikes_carried += routed
        self.hop_count += routed * distance
        key = (source_chip, target_chip)
        self.pair_counts[key] = self.pair_counts.get(key, 0) + routed

    def reset_counters(self) -> None:
        """Clear all counters (run state, not programming)."""
        self.spikes_carried = 0
        self.hop_count = 0
        self.pair_counts = {}


class Board:
    """A ``(rows, cols)`` mesh of TrueNorth chips sharing one tick clock."""

    def __init__(self, config: Optional[BoardConfig] = None):
        self.config = config or BoardConfig()
        self.chips: List[TrueNorthChip] = [
            TrueNorthChip(self.config.chip_config)
            for _ in range(self.config.chip_count)
        ]
        self.fabric = LinkFabric()

    # ------------------------------------------------------------------
    @property
    def chip_count(self) -> int:
        """Number of chips on the board."""
        return len(self.chips)

    def chip(self, index: int) -> TrueNorthChip:
        """Return the chip at a board index (row-major)."""
        return self.chips[index]

    def active_chips(self) -> List[int]:
        """Indices of chips currently in batch mode."""
        return [i for i, chip in enumerate(self.chips) if chip.batch_size is not None]

    @property
    def tick(self) -> int:
        """The shared tick counter of the active chips (asserted lock-step)."""
        ticks = {self.chips[i].tick for i in self.active_chips()}
        if not ticks:
            return 0
        if len(ticks) != 1:
            raise RuntimeError(f"chips have diverging tick counters: {sorted(ticks)}")
        return ticks.pop()

    def reset(self) -> None:
        """Reset every chip's run state and the link counters.

        Like :meth:`TrueNorthChip.reset`, programming (crossbars, routes,
        remote routes, bindings) survives — only in-flight spikes, batch
        mode, tick counters, and statistics are dropped.
        """
        for chip in self.chips:
            chip.reset()
        self.fabric.reset_counters()

    def has_pending(self) -> bool:
        """True while any spike is in flight anywhere on the board."""
        return any(chip.router.has_pending() for chip in self.chips)

    # ------------------------------------------------------------------
    def step_batch(
        self,
        external_inputs: Optional[Dict[int, Dict[str, Dict[int, np.ndarray]]]] = None,
    ) -> Dict[int, Dict[str, Dict[int, np.ndarray]]]:
        """Advance every active chip one tick and carry the link traffic.

        Args:
            external_inputs: per-chip external inputs, keyed by board chip
                index; each value has the shape
                :meth:`TrueNorthChip.step_batch` expects.

        Returns:
            per-chip external outputs, keyed by board chip index (inactive
            chips are absent).
        """
        tick = self.tick
        outputs: Dict[int, Dict[str, Dict[int, np.ndarray]]] = {}
        for index, chip in enumerate(self.chips):
            if chip.batch_size is None:
                continue
            per_chip = None if external_inputs is None else external_inputs.get(index)
            outputs[index] = chip.step_batch(per_chip)
            for egress in chip.router.pop_egress():
                self._carry(index, egress, tick)
        return outputs

    def _carry(self, source_chip: int, egress, tick: int) -> None:
        """Inject one egress record into its target chip's router."""
        target_index = egress.target_chip
        if not (0 <= target_index < len(self.chips)):
            raise IndexError(
                f"remote route targets chip {target_index} outside "
                f"[0, {len(self.chips)})"
            )
        distance = self.config.chip_distance(source_chip, target_index)
        if distance == 0:
            raise ValueError(
                f"chip {source_chip} holds a remote route to itself; "
                "same-chip targets must use SpikeRouter.connect"
            )
        target = self.chips[target_index]
        due = egress.tick + target.router.delay + self.config.link_delay * distance
        if due < target.tick:
            raise RuntimeError(
                f"link spike due at tick {due} but chip {target_index} is "
                f"already at tick {target.tick}; the latency model was "
                "violated (router delay < 1?)"
            )
        target.router.external_deliver_batch(
            due_tick=due,
            target_core=egress.target_core,
            axon_idx=egress.axon_idx,
            columns=egress.columns,
            axons=target.core(egress.target_core).config.axons,
            unique_axons=egress.unique_axons,
            routed=egress.routed,
        )
        self.fabric.record(source_chip, target_index, egress.routed, distance)
