"""Topology of a multi-chip board: a mesh of TrueNorth chips.

The NS16e-style boards tile several chips on a 2-D grid and connect
neighbours with inter-chip links.  The reproduction models the board as a
``(rows, cols)`` grid whose links add a configurable *link delay* per mesh
hop on top of the on-chip router delay: a spike emitted at tick ``t`` on
chip ``a`` toward chip ``b`` is delivered at
``t + router_delay + link_delay * chip_distance(a, b)``, where the chip
distance is the Manhattan distance on the board grid (dimension-order
routing over the mesh links).  ``link_delay=0`` collapses the board to a
set of chips sharing one synchronous tick, which is what the bit-identity
equivalence tests against the single-chip engine pin down.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Tuple

from repro.truenorth.config import ChipConfig


@dataclass(frozen=True)
class BoardConfig:
    """Parameters of a simulated multi-chip board.

    Attributes:
        grid_shape: ``(rows, cols)`` of the chip mesh.
        chip_config: configuration shared by every chip on the board.
        link_delay: extra delivery delay (in ticks) a spike pays per mesh
            hop between chips; ``0`` makes inter-chip delivery as fast as
            on-chip routing.
    """

    grid_shape: Tuple[int, int] = (1, 1)
    chip_config: ChipConfig = field(default_factory=ChipConfig)
    link_delay: int = 0

    def __post_init__(self):
        rows, cols = self.grid_shape
        if rows <= 0 or cols <= 0:
            raise ValueError(f"grid_shape must be positive, got {self.grid_shape}")
        if self.link_delay < 0:
            raise ValueError(f"link_delay must be >= 0, got {self.link_delay}")

    @property
    def chip_count(self) -> int:
        """Number of chips on the board."""
        return self.grid_shape[0] * self.grid_shape[1]

    @property
    def core_capacity(self) -> int:
        """Total number of core slots across all chips."""
        return self.chip_count * self.chip_config.capacity

    def chip_position(self, index: int) -> Tuple[int, int]:
        """(row, col) of a chip on the board grid (row-major indexing)."""
        rows, cols = self.grid_shape
        if not (0 <= index < rows * cols):
            raise IndexError(f"chip index {index} outside [0, {rows * cols})")
        return index // cols, index % cols

    def chip_distance(self, a: int, b: int) -> int:
        """Manhattan distance between two chips (mesh hops a link spike pays)."""
        row_a, col_a = self.chip_position(a)
        row_b, col_b = self.chip_position(b)
        return abs(row_a - row_b) + abs(col_a - col_b)


def board_shape_for(
    core_count: int, copies: int, chip_config: ChipConfig = ChipConfig()
) -> Tuple[int, int]:
    """Smallest square-ish board grid that fits ``copies`` network copies.

    Mirrors the packing rule of
    :func:`repro.mapping.placement.place_on_board`: a copy that fits one
    chip is never split (so chips hold ``floor(capacity / core_count)``
    copies each), while a copy larger than one chip claims
    ``ceil(core_count / capacity)`` whole chips for itself.

    Args:
        core_count: cores one network copy occupies.
        copies: copies to place.
        chip_config: per-chip configuration (supplies the core capacity).

    Returns:
        ``(rows, cols)`` with ``rows * cols`` chips, as square as possible.
    """
    if core_count <= 0:
        raise ValueError(f"core_count must be positive, got {core_count}")
    if copies <= 0:
        raise ValueError(f"copies must be positive, got {copies}")
    capacity = chip_config.capacity
    if core_count <= capacity:
        per_chip = capacity // core_count
        chips = math.ceil(copies / per_chip)
    else:
        chips = copies * math.ceil(core_count / capacity)
    rows = math.ceil(math.sqrt(chips))
    cols = math.ceil(chips / rows)
    return rows, cols
