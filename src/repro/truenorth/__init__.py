"""Functional simulator of the IBM TrueNorth neuro-synaptic architecture.

This package is the hardware substrate of the reproduction.  It models the
aspects of TrueNorth that the paper's analysis depends on:

* a 256x256 binary-connectivity synaptic crossbar per core,
* per-axon *axon types* indexing a 4-entry signed integer weight table at
  each neuron,
* stochastic synapses gated by a pseudo-random number generator so that the
  expected effective weight equals a fractional target (Tea deployment),
* a digital leaky integrate-and-fire neuron (with the history-free
  McCulloch-Pitts special case used by the paper),
* a chip made of a 2-D grid of cores connected by a spike router, advanced by
  a tick-based scheduler,
* an NSCS-like facade that extracts synaptic-weight deviation maps
  (paper Figure 4).

Nothing here knows about training; the learning methods live in
``repro.core`` and the mapping from trained models onto cores in
``repro.mapping``.
"""

from repro.truenorth.constants import (
    AXONS_PER_CORE,
    NEURONS_PER_CORE,
    AXON_TYPES,
    CORES_PER_CHIP,
    CHIP_GRID_SHAPE,
    DEFAULT_WEIGHT_TABLE,
)
from repro.truenorth.config import CoreConfig, NeuronConfig, ChipConfig
from repro.truenorth.prng import LfsrPrng
from repro.truenorth.neuron import McCullochPittsNeuron, LifNeuron
from repro.truenorth.crossbar import SynapticCrossbar
from repro.truenorth.core import NeurosynapticCore
from repro.truenorth.router import SpikeRouter, SpikeEvent
from repro.truenorth.chip import TrueNorthChip
from repro.truenorth.nscs import NeuroSynapticChipSimulator, DeviationReport

__all__ = [
    "AXONS_PER_CORE",
    "NEURONS_PER_CORE",
    "AXON_TYPES",
    "CORES_PER_CHIP",
    "CHIP_GRID_SHAPE",
    "DEFAULT_WEIGHT_TABLE",
    "CoreConfig",
    "NeuronConfig",
    "ChipConfig",
    "LfsrPrng",
    "McCullochPittsNeuron",
    "LifNeuron",
    "SynapticCrossbar",
    "NeurosynapticCore",
    "SpikeRouter",
    "SpikeEvent",
    "TrueNorthChip",
    "NeuroSynapticChipSimulator",
    "DeviationReport",
]
