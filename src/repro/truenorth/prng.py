"""Pseudo-random number generator used by the stochastic synapse gating.

TrueNorth cores contain a hardware linear-feedback shift register (LFSR) that
draws one pseudo-random value per stochastic event (synapse gating, stochastic
leak, stochastic threshold).  The simulator reproduces a 16-bit Fibonacci LFSR
so that stochastic deployments are bit-reproducible given a seed, and exposes
a vectorized Bernoulli helper used by the crossbar.
"""

from __future__ import annotations

import numpy as np

#: Feedback taps of the 16-bit maximal-length LFSR (x^16 + x^14 + x^13 + x^11 + 1).
_TAPS = (15, 13, 12, 10)
_STATE_BITS = 16
_STATE_MASK = (1 << _STATE_BITS) - 1


class LfsrPrng:
    """16-bit Fibonacci LFSR with a vectorized Bernoulli interface.

    The generator never reaches the all-zero state (a zero seed is remapped
    to a fixed non-zero state, as hardware initialization does).
    """

    def __init__(self, seed: int = 1):
        seed = int(seed) & _STATE_MASK
        self._state = seed if seed != 0 else 0xACE1
        self._initial_state = self._state

    @property
    def state(self) -> int:
        """Current register contents (16-bit unsigned)."""
        return self._state

    def reset(self) -> None:
        """Restore the register to its seeded state."""
        self._state = self._initial_state

    def next_bit(self) -> int:
        """Advance one step and return the output bit (0 or 1)."""
        bit = 0
        for tap in _TAPS:
            bit ^= (self._state >> tap) & 1
        self._state = ((self._state << 1) | bit) & _STATE_MASK
        return bit

    def next_uint(self, bits: int = 16) -> int:
        """Return the next ``bits``-bit unsigned integer (1..32 bits)."""
        if not (1 <= bits <= 32):
            raise ValueError(f"bits must be in [1, 32], got {bits}")
        value = 0
        for _ in range(bits):
            value = (value << 1) | self.next_bit()
        return value

    def next_uniform(self) -> float:
        """Return a float uniformly distributed in [0, 1)."""
        return self.next_uint(16) / float(1 << 16)

    def bernoulli(self, probability: float) -> bool:
        """Draw a single Bernoulli sample with the given probability."""
        if not (0.0 <= probability <= 1.0):
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        return self.next_uniform() < probability

    def bernoulli_array(self, probabilities: np.ndarray) -> np.ndarray:
        """Draw one Bernoulli sample per entry of ``probabilities``.

        This is the hot path of stochastic-synapse simulation, so samples are
        drawn from a numpy generator seeded by the LFSR stream rather than by
        stepping the LFSR once per synapse; the result remains a pure function
        of the LFSR state.
        """
        probabilities = np.asarray(probabilities, dtype=np.float64)
        if probabilities.size and (
            probabilities.min() < 0.0 or probabilities.max() > 1.0
        ):
            raise ValueError("probabilities must lie in [0, 1]")
        derived_seed = (self.next_uint(16) << 16) | self.next_uint(16)
        rng = np.random.default_rng(derived_seed)
        return rng.random(probabilities.shape) < probabilities
