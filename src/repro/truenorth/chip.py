"""Chip-level simulation: a grid of cores advanced by a tick scheduler.

:class:`TrueNorthChip` owns a set of :class:`~repro.truenorth.core.NeurosynapticCore`
instances placed on a 2-D grid, a :class:`~repro.truenorth.router.SpikeRouter`
that carries inter-core spikes, and external input/output bindings so that
host code can inject spike frames and read out classification spikes.

The chip runs in one of two modes:

* **scalar** — :meth:`TrueNorthChip.step` advances one sample one tick at a
  time (the reference path, unchanged from the original simulator);
* **batched** — :meth:`TrueNorthChip.begin_batch` resets the chip for B
  lock-step samples and :meth:`TrueNorthChip.step_batch` advances all of
  them per tick: every core performs one ``(B, axons) @ (axons, neurons)``
  crossbar matmul, neuron state lives in ``(B, neurons)`` arrays, and the
  router scatters ``(B,)`` spike columns with index arrays.  External
  bindings accept and emit ``(B, len(map))`` matrices.  The batched engine
  is spike-for-spike equivalent to B independent scalar runs (including the
  per-tick LFSR stream in stochastic mode, which every scalar run replays
  identically after its reset); the test suite enforces this.

Batched execution additionally supports a **copies** axis
(``begin_batch(batch_size, copies=C, copy_seeds=...)``): the B batch rows
are partitioned copy-major into C independently *programmed* network
copies of S samples each (``B = C * S``).  Each core integrates copy ``c``
through its own slice of a stacked per-copy crossbar tensor
(:meth:`~repro.truenorth.crossbar.SynapticCrossbar.set_copy_signed_weights`)
and, in stochastic mode, draws copy ``c``'s connectivity from a dedicated
per-copy LFSR — so one multi-copy chip image is spike-for-spike equivalent
to C one-chip-per-copy simulations, at one batched matmul per core per
tick.  Because every copy is programmed with the *same* routing topology,
the single route table already is the disjoint per-copy route table: batch
rows never mix, so spikes of copy ``c`` can only ever land on copy ``c``'s
axon rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.truenorth.config import ChipConfig, CoreConfig
from repro.truenorth.core import NeurosynapticCore
from repro.truenorth.router import SpikeRouter


@dataclass
class ExternalInputBinding:
    """Binding of an external input channel onto a core's axons.

    ``axon_map[i]`` is the axon index that receives the ``i``-th component of
    the external spike vector for this binding.  ``identity`` marks maps
    that are exactly ``0..len-1`` — the batched engine then adopts the spike
    matrix directly instead of scattering it into a zeroed buffer.
    """

    core_id: int
    axon_map: List[int] = field(default_factory=list)
    identity: bool = field(init=False)

    def __post_init__(self):
        self.identity = self.axon_map == list(range(len(self.axon_map)))


@dataclass
class ExternalOutputBinding:
    """Binding of a core's neurons onto an external output channel.

    ``neuron_map[i]`` is the neuron index whose spikes feed the ``i``-th
    component of the external output vector for this binding.  ``identity``
    marks maps that are exactly ``0..len-1``; the batched engine then hands
    out the core's spike matrix itself instead of a gathered copy.
    """

    core_id: int
    neuron_map: List[int] = field(default_factory=list)
    identity: bool = field(init=False)

    def __post_init__(self):
        self.identity = self.neuron_map == list(range(len(self.neuron_map)))


class TrueNorthChip:
    """A simulated TrueNorth chip.

    Cores are allocated on demand (up to the grid capacity), programmed by the
    deployment pipeline, and advanced in lock-step ticks.  External inputs are
    injected per tick through named bindings; external outputs accumulate the
    spike counts of bound neurons, which is how the paper's networks read out
    their class scores.
    """

    def __init__(self, config: Optional[ChipConfig] = None):
        self.config = config or ChipConfig()
        self.cores: Dict[int, NeurosynapticCore] = {}
        self.router = SpikeRouter(delay=1)
        self._positions: Dict[int, Tuple[int, int]] = {}
        self._input_bindings: Dict[str, List[ExternalInputBinding]] = {}
        self._output_bindings: Dict[str, List[ExternalOutputBinding]] = {}
        self._tick = 0
        self._batch_size: Optional[int] = None
        self._copies = 1
        #: cached ``core_id -> axons`` map (per-core-fit trimmed chips have
        #: heterogeneous crossbar geometries); invalidated on allocation.
        self._core_axon_counts: Optional[Dict[int, int]] = None

    # ------------------------------------------------------------------
    # allocation and programming
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Number of core slots on the chip."""
        return self.config.capacity

    @property
    def allocated_cores(self) -> int:
        """Number of cores allocated so far."""
        return len(self.cores)

    @property
    def tick(self) -> int:
        """Current tick counter."""
        return self._tick

    def allocate_core(self, core_config: Optional[CoreConfig] = None) -> NeurosynapticCore:
        """Allocate the next free core slot and return the new core."""
        if self.allocated_cores >= self.capacity:
            raise RuntimeError(
                f"chip capacity exhausted ({self.capacity} cores allocated)"
            )
        core_id = self.allocated_cores
        rows, cols = self.config.grid_shape
        position = (core_id // cols, core_id % cols)
        core = NeurosynapticCore(core_config or self.config.core_config, core_id=core_id)
        self.cores[core_id] = core
        self._positions[core_id] = position
        self.router.set_core_position(core_id, *position)
        self._core_axon_counts = None
        return core

    def _axon_counts(self) -> Dict[int, int]:
        """Axon count of every allocated core, keyed by core id.

        The router sizes its delivery buffers from this map, so cores
        trimmed to different crossbar geometries (per-core-fit trimming in
        the deployment pipeline) each pay only for their own axon count.
        """
        if self._core_axon_counts is None:
            self._core_axon_counts = {
                core_id: core.config.axons for core_id, core in self.cores.items()
            }
        return self._core_axon_counts

    def core(self, core_id: int) -> NeurosynapticCore:
        """Return an allocated core by id."""
        if core_id not in self.cores:
            raise KeyError(f"core {core_id} has not been allocated")
        return self.cores[core_id]

    def position_of(self, core_id: int) -> Tuple[int, int]:
        """Return the (row, col) grid position of a core."""
        return self._positions[core_id]

    # ------------------------------------------------------------------
    # external I/O
    # ------------------------------------------------------------------
    def bind_input(self, channel: str, core_id: int, axon_map: List[int]) -> None:
        """Bind a slice of the external input channel onto a core's axons."""
        self.core(core_id)  # validates allocation
        self._input_bindings.setdefault(channel, []).append(
            ExternalInputBinding(core_id=core_id, axon_map=list(axon_map))
        )

    def bind_output(self, channel: str, core_id: int, neuron_map: List[int]) -> None:
        """Bind a core's neurons onto a slice of the external output channel."""
        self.core(core_id)
        self._output_bindings.setdefault(channel, []).append(
            ExternalOutputBinding(core_id=core_id, neuron_map=list(neuron_map))
        )

    def input_channels(self) -> List[str]:
        """Names of the registered external input channels."""
        return sorted(self._input_bindings)

    def output_channels(self) -> List[str]:
        """Names of the registered external output channels."""
        return sorted(self._output_bindings)

    # ------------------------------------------------------------------
    # simulation
    # ------------------------------------------------------------------
    @property
    def batch_size(self) -> Optional[int]:
        """Current batch size (total rows, copies x samples), or ``None``."""
        return self._batch_size

    @property
    def copies(self) -> int:
        """Network copies in the current batch (1 outside multi-copy mode)."""
        return self._copies

    def reset(self) -> None:
        """Reset all cores, the router run state, and the tick counter.

        Routing programming (routes, positions) is preserved — only in-flight
        spikes and counters are dropped.  Batch mode, if active, is left.
        """
        for core in self.cores.values():
            core.reset()
        self.router.reset_state()
        self._tick = 0
        self._batch_size = None
        self._copies = 1

    def begin_batch(
        self,
        batch_size: int,
        copies: int = 1,
        copy_seeds: Optional[List[int]] = None,
    ) -> None:
        """Reset the chip and switch every core to lock-step batch execution.

        Args:
            batch_size: total batch rows.  With ``copies > 1`` the rows are
                copy-major: row ``c * (batch_size // copies) + s`` is copy
                ``c``'s sample ``s``, and ``copies`` must divide
                ``batch_size``.
            copies: independently programmed network copies sharing the
                batch (see the module docstring; requires per-copy crossbar
                stacks or shared single-copy programming on every core).
            copy_seeds: per-copy core-PRNG base seeds for stochastic
                synapses — copy ``c``'s core ``k`` draws from
                ``LfsrPrng(copy_seeds[c] + k + 1)``, matching a
                one-chip-per-copy simulation whose chip ``c`` was
                programmed with ``CoreConfig(seed=copy_seeds[c])``.
        """
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if copies <= 0:
            raise ValueError(f"copies must be positive, got {copies}")
        if batch_size % copies != 0:
            raise ValueError(
                f"batch_size {batch_size} is not divisible by copies {copies}"
            )
        self.reset()
        for core in self.cores.values():
            core.begin_batch(batch_size, copies=copies, copy_seeds=copy_seeds)
        self._batch_size = int(batch_size)
        self._copies = int(copies)

    def begin_multicopy(self, copies: int, samples: int,
                        copy_seeds: Optional[List[int]] = None) -> None:
        """Convenience: :meth:`begin_batch` for C copies x S samples."""
        self.begin_batch(copies * samples, copies=copies, copy_seeds=copy_seeds)

    def step(
        self, external_inputs: Optional[Dict[str, Dict[int, np.ndarray]]] = None
    ) -> Dict[str, Dict[int, np.ndarray]]:
        """Advance the chip by one tick.

        Args:
            external_inputs: mapping ``channel -> {binding_index -> spike vector}``
                where each spike vector has one entry per axon in the binding's
                ``axon_map``.

        Returns:
            mapping ``channel -> {binding_index -> spike vector}`` of the
            output spikes produced this tick by bound neurons.
        """
        if self._batch_size is not None:
            raise RuntimeError("chip is in batch mode; use step_batch() or reset()")
        axon_counts = self._axon_counts()
        routed = self.router.deliver(self._tick, axons_per_core=axon_counts)
        per_core_axons: Dict[int, np.ndarray] = {
            core_id: vector for core_id, vector in routed.items()
        }

        if external_inputs:
            for channel, per_binding in external_inputs.items():
                bindings = self._input_bindings.get(channel)
                if bindings is None:
                    raise KeyError(f"unknown input channel {channel!r}")
                for binding_index, spikes in per_binding.items():
                    binding = bindings[binding_index]
                    spikes = np.asarray(spikes)
                    if spikes.shape != (len(binding.axon_map),):
                        raise ValueError(
                            f"channel {channel!r} binding {binding_index} expects "
                            f"{len(binding.axon_map)} spikes, got {spikes.shape}"
                        )
                    vector = per_core_axons.setdefault(
                        binding.core_id,
                        np.zeros(axon_counts[binding.core_id], dtype=np.int8),
                    )
                    vector[np.asarray(binding.axon_map, dtype=np.int64)] |= spikes.astype(
                        np.int8
                    )

        outputs_by_core: Dict[int, np.ndarray] = {}
        for core_id, core in self.cores.items():
            axon_vector = per_core_axons.get(
                core_id, np.zeros(axon_counts[core_id], dtype=np.int8)
            )
            spikes = core.tick(axon_vector)
            outputs_by_core[core_id] = spikes
            self.router.submit(core_id, spikes, tick=self._tick)

        external_outputs: Dict[str, Dict[int, np.ndarray]] = {}
        for channel, bindings in self._output_bindings.items():
            per_binding: Dict[int, np.ndarray] = {}
            for index, binding in enumerate(bindings):
                spikes = outputs_by_core.get(binding.core_id)
                if spikes is None:
                    continue
                per_binding[index] = spikes[
                    np.asarray(binding.neuron_map, dtype=np.int64)
                ].copy()
            external_outputs[channel] = per_binding

        self._tick += 1
        return external_outputs

    def step_batch(
        self, external_inputs: Optional[Dict[str, Dict[int, np.ndarray]]] = None
    ) -> Dict[str, Dict[int, np.ndarray]]:
        """Advance the whole batch by one tick (requires :meth:`begin_batch`).

        Args:
            external_inputs: mapping ``channel -> {binding_index -> spike
                matrix}`` where each matrix has shape ``(batch,
                len(axon_map))`` — or, in multi-copy mode, ``(batch //
                copies, len(axon_map))`` for input *shared* by every copy
                (the hardware splitter), or ``(groups, batch // copies,
                len(axon_map))`` for *grouped* shared input where block
                ``g`` feeds the consecutive copies ``[g * copies/groups,
                (g+1) * copies/groups)`` — the layout the repeat-folded
                sweep engine uses, one block per folded repeat.  Shared and
                grouped input are never replicated: cores fed only by such
                bindings integrate them through a broadcast over their
                per-copy weight slices.

        Returns:
            mapping ``channel -> {binding_index -> (batch, len(neuron_map))
            spike matrix}`` of the output spikes produced this tick.  The
            matrices are **read-only views of engine state**: a full-width
            identity binding hands out the core's spike matrix itself (and
            two such bindings on one core alias the same array), so callers
            must copy before mutating.
        """
        if self._batch_size is None:
            raise RuntimeError("chip is in scalar mode; call begin_batch() first")
        batch = self._batch_size
        samples = batch // self._copies
        axon_counts = self._axon_counts()
        per_core_axons = self.router.deliver_batch(
            self._tick, axons_per_core=axon_counts, batch_size=batch
        )
        shared_axons: Dict[int, np.ndarray] = {}
        grouped_axons: Dict[int, np.ndarray] = {}

        if external_inputs:
            for channel, per_binding in external_inputs.items():
                bindings = self._input_bindings.get(channel)
                if bindings is None:
                    raise KeyError(f"unknown input channel {channel!r}")
                for binding_index, spikes in per_binding.items():
                    binding = bindings[binding_index]
                    spikes = np.asarray(spikes)
                    width = len(binding.axon_map)
                    axons = axon_counts[binding.core_id]
                    if (
                        spikes.ndim == 3
                        and spikes.shape[1:] == (samples, width)
                        and spikes.shape[0] >= 1
                        and self._copies % spikes.shape[0] == 0
                    ):
                        if spikes.shape[0] == self._copies:
                            # One block per copy is just full copy-major
                            # input in disguise (covers copies == 1 too).
                            spikes = spikes.reshape(batch, width)
                            target: Dict[int, np.ndarray] = per_core_axons
                            shape: Tuple[int, ...] = (batch, axons)
                        else:
                            target = grouped_axons
                            shape = (spikes.shape[0], samples, axons)
                    elif spikes.shape == (batch, width):
                        target, shape = per_core_axons, (batch, axons)
                    elif self._copies > 1 and spikes.shape == (samples, width):
                        target, shape = shared_axons, (samples, axons)
                    else:
                        expected = f"({batch}, {width})"
                        if self._copies > 1:
                            expected += (
                                f" or shared ({samples}, {width})"
                                f" or grouped (groups, {samples}, {width})"
                            )
                        raise ValueError(
                            f"channel {channel!r} binding {binding_index} "
                            f"expects spikes of shape {expected}, "
                            f"got {spikes.shape}"
                        )
                    matrix = target.get(binding.core_id)
                    if matrix is not None and matrix.shape[:-1] != shape[:-1]:
                        raise ValueError(
                            f"channel {channel!r} binding {binding_index} "
                            f"mixes group counts on core {binding.core_id}: "
                            f"buffer rows {matrix.shape[:-1]}, got "
                            f"{shape[:-1]}"
                        )
                    if matrix is None and binding.identity and width == axons:
                        # Full-width identity map: the (owned) spike matrix
                        # is the axon matrix — no zeroed buffer, no scatter.
                        target[binding.core_id] = spikes.astype(np.int8)
                        continue
                    if matrix is None:
                        matrix = np.zeros(shape, dtype=np.int8)
                        target[binding.core_id] = matrix
                    axon_idx = np.asarray(binding.axon_map, dtype=np.intp)
                    matrix[..., axon_idx] |= spikes.astype(np.int8)

        # A core fed by both routed (per-copy) and shared external spikes
        # needs the full matrix; replicate the shared block into it.
        for core_id in list(shared_axons):
            if core_id in grouped_axons:
                raise ValueError(
                    f"core {core_id} receives both shared and grouped "
                    "external input in one tick; use one layout per core"
                )
            full = per_core_axons.get(core_id)
            if full is not None:
                full |= np.tile(shared_axons.pop(core_id), (self._copies, 1))
        for core_id in list(grouped_axons):
            full = per_core_axons.get(core_id)
            if full is not None:
                grouped = grouped_axons.pop(core_id)
                per_group = self._copies // grouped.shape[0]
                full |= np.broadcast_to(
                    grouped[:, None],
                    (grouped.shape[0], per_group) + grouped.shape[1:],
                ).reshape(batch, -1)

        zero_inputs: Dict[int, np.ndarray] = {}
        outputs_by_core: Dict[int, np.ndarray] = {}
        for core_id, core in self.cores.items():
            axon_matrix = per_core_axons.get(core_id)
            if axon_matrix is None:
                axon_matrix = shared_axons.get(core_id)
            if axon_matrix is None:
                axon_matrix = grouped_axons.get(core_id)
            if axon_matrix is None:
                axons = axon_counts[core_id]
                axon_matrix = zero_inputs.get(axons)
                if axon_matrix is None:
                    axon_matrix = np.zeros((batch, axons), dtype=np.int8)
                    zero_inputs[axons] = axon_matrix
            spikes = core.tick_batch(axon_matrix)
            outputs_by_core[core_id] = spikes
            self.router.submit_batch(
                core_id, spikes, tick=self._tick, axons_per_core=axon_counts
            )

        external_outputs: Dict[str, Dict[int, np.ndarray]] = {}
        for channel, bindings in self._output_bindings.items():
            per_binding: Dict[int, np.ndarray] = {}
            for index, binding in enumerate(bindings):
                spikes = outputs_by_core.get(binding.core_id)
                if spikes is None:
                    continue
                if binding.identity and spikes.shape[1] == len(binding.neuron_map):
                    # Full-width identity map: hand out the spike matrix
                    # itself (callers treat outputs as read-only).
                    per_binding[index] = spikes
                else:
                    per_binding[index] = spikes[
                        :, np.asarray(binding.neuron_map, dtype=np.intp)
                    ].copy()
            external_outputs[channel] = per_binding
        self._tick += 1
        return external_outputs

    def occupied_core_ids(self) -> List[int]:
        """Return ids of cores that have at least one programmed synapse."""
        occupied = []
        for core_id, core in self.cores.items():
            crossbar = core.crossbar
            if crossbar.connectivity.any() or crossbar.probabilities.any():
                occupied.append(core_id)
            elif (
                crossbar.copy_connectivity is not None
                and crossbar.copy_connectivity.any()
            ) or (
                crossbar.copy_probabilities is not None
                and crossbar.copy_probabilities.any()
            ):
                occupied.append(core_id)
        return occupied
