"""Spike routing between neuro-synaptic cores.

On the chip every neuron holds the address (target core, target axon) its
spikes are delivered to; delivery happens in the tick after the spike is
produced.  The simulator reproduces that behaviour with an explicit event
queue: :class:`SpikeRouter` collects :class:`SpikeEvent` objects emitted
during tick *t* and exposes per-core axon vectors at tick *t + delay*.

The router also counts hop distance on the 2-D mesh so experiments can report
communication statistics, although the paper's evaluation does not depend on
them.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class SpikeEvent:
    """One spike in flight from a neuron to a target axon.

    Attributes:
        source_core: id of the emitting core.
        source_neuron: neuron index within the emitting core.
        target_core: id of the receiving core.
        target_axon: axon index within the receiving core.
        tick: tick at which the spike should be *delivered*.
    """

    source_core: int
    source_neuron: int
    target_core: int
    target_axon: int
    tick: int


@dataclass(frozen=True)
class NeuronTarget:
    """Routing entry: where one neuron's spikes are delivered."""

    target_core: int
    target_axon: int


class SpikeRouter:
    """Mesh spike router with a single-tick delivery delay.

    The router is deliberately simple: spikes emitted at tick ``t`` become
    visible on their target axons at tick ``t + delay`` (default 1), matching
    the chip's synchronous tick discipline.  Unrouted neurons simply drop
    their spikes (they are typically read out externally instead).
    """

    def __init__(self, delay: int = 1):
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self.delay = delay
        self._routes: Dict[Tuple[int, int], NeuronTarget] = {}
        self._pending: Dict[int, List[SpikeEvent]] = defaultdict(list)
        self._core_positions: Dict[int, Tuple[int, int]] = {}
        self.delivered_count = 0
        self.hop_count = 0

    # ------------------------------------------------------------------
    def set_core_position(self, core_id: int, row: int, col: int) -> None:
        """Record the mesh position of a core (used for hop statistics)."""
        self._core_positions[core_id] = (row, col)

    def connect(
        self, source_core: int, source_neuron: int, target_core: int, target_axon: int
    ) -> None:
        """Route spikes of (source_core, source_neuron) to (target_core, target_axon)."""
        self._routes[(source_core, source_neuron)] = NeuronTarget(
            target_core=target_core, target_axon=target_axon
        )

    def route_of(self, source_core: int, source_neuron: int) -> Optional[NeuronTarget]:
        """Return the routing entry of a neuron, or None if unrouted."""
        return self._routes.get((source_core, source_neuron))

    @property
    def route_count(self) -> int:
        """Number of programmed neuron routes."""
        return len(self._routes)

    # ------------------------------------------------------------------
    def submit(self, core_id: int, spikes: np.ndarray, tick: int) -> int:
        """Enqueue the spikes produced by ``core_id`` at ``tick``.

        Returns the number of spikes that had a route and were enqueued.
        """
        spikes = np.asarray(spikes)
        enqueued = 0
        for neuron in np.nonzero(spikes)[0]:
            route = self._routes.get((core_id, int(neuron)))
            if route is None:
                continue
            event = SpikeEvent(
                source_core=core_id,
                source_neuron=int(neuron),
                target_core=route.target_core,
                target_axon=route.target_axon,
                tick=tick + self.delay,
            )
            self._pending[event.tick].append(event)
            enqueued += 1
        return enqueued

    def deliver(self, tick: int, axons_per_core: int) -> Dict[int, np.ndarray]:
        """Pop all events due at ``tick`` and return per-core axon spike vectors."""
        events = self._pending.pop(tick, [])
        delivery: Dict[int, np.ndarray] = {}
        for event in events:
            vector = delivery.setdefault(
                event.target_core, np.zeros(axons_per_core, dtype=np.int8)
            )
            if not (0 <= event.target_axon < axons_per_core):
                raise IndexError(
                    f"target axon {event.target_axon} outside [0, {axons_per_core})"
                )
            vector[event.target_axon] = 1
            self.delivered_count += 1
            self.hop_count += self._hops(event.source_core, event.target_core)
        return delivery

    def pending_events(self) -> Iterable[SpikeEvent]:
        """Iterate over all not-yet-delivered spike events (any tick)."""
        for events in self._pending.values():
            yield from events

    def _hops(self, source_core: int, target_core: int) -> int:
        src = self._core_positions.get(source_core)
        dst = self._core_positions.get(target_core)
        if src is None or dst is None:
            return 0
        return abs(src[0] - dst[0]) + abs(src[1] - dst[1])
