"""Spike routing between neuro-synaptic cores.

On the chip every neuron holds the address (target core, target axon) its
spikes are delivered to; delivery happens in the tick after the spike is
produced.  The simulator reproduces that behaviour with an explicit event
queue: :class:`SpikeRouter` collects :class:`SpikeEvent` objects emitted
during tick *t* and exposes per-core axon vectors at tick *t + delay*.

The router also counts hop distance on the 2-D mesh so experiments can report
communication statistics, although the paper's evaluation does not depend on
them.

Batched execution replaces the per-event queue with index-array scatter:
the programmed routes of each source core are compiled once into
``(neuron indices, target axons)`` arrays grouped by target core
(:meth:`SpikeRouter.submit_batch`), so enqueueing a ``(batch, neurons)``
spike matrix is a handful of column gathers, and delivery
(:meth:`SpikeRouter.deliver_batch`) pops pre-scattered ``(batch, axons)``
buffers.  Delivered/hop counters advance by the same amounts the scalar
event path would accrue, summed over the batch.

Multi-copy batches need no extra routing state: every copy of a multi-copy
chip image is programmed with the same topology, so the one compiled route
table *is* each copy's route table, and because the scatter only ever moves
a batch row to the same row of a target buffer, the copy-major rows stay
disjoint — a spike of copy ``c`` can only land on copy ``c``'s axon rows.
The delivered/hop counters therefore equal the sum of the counters ``C``
one-chip-per-copy routers would report, which the equivalence tests assert.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

import numpy as np

#: Axon count of the receiving cores: one uniform count for homogeneous
#: chips, or a ``core_id -> axons`` mapping when per-core-fit trimming
#: gives every core its own crossbar geometry.
AxonCounts = Union[int, Mapping[int, int]]


def _axons_of(axons_per_core: AxonCounts, core_id: int) -> int:
    """Resolve the axon count of one target core from either form."""
    if isinstance(axons_per_core, int):
        return axons_per_core
    return axons_per_core[core_id]


@dataclass(frozen=True)
class SpikeEvent:
    """One spike in flight from a neuron to a target axon.

    Attributes:
        source_core: id of the emitting core.
        source_neuron: neuron index within the emitting core.
        target_core: id of the receiving core.
        target_axon: axon index within the receiving core.
        tick: tick at which the spike should be *delivered*.
    """

    source_core: int
    source_neuron: int
    target_core: int
    target_axon: int
    tick: int


@dataclass(frozen=True)
class NeuronTarget:
    """Routing entry: where one neuron's spikes are delivered."""

    target_core: int
    target_axon: int


class SpikeRouter:
    """Mesh spike router with a single-tick delivery delay.

    The router is deliberately simple: spikes emitted at tick ``t`` become
    visible on their target axons at tick ``t + delay`` (default 1), matching
    the chip's synchronous tick discipline.  Unrouted neurons simply drop
    their spikes (they are typically read out externally instead).
    """

    def __init__(self, delay: int = 1):
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self.delay = delay
        self._routes: Dict[Tuple[int, int], NeuronTarget] = {}
        self._pending: Dict[int, List[SpikeEvent]] = defaultdict(list)
        self._core_positions: Dict[int, Tuple[int, int]] = {}
        self.delivered_count = 0
        self.hop_count = 0
        # Batched state: compiled route arrays per source core, pre-scattered
        # (batch, axons) buffers per (tick, target core), and the counter
        # increments to apply when each tick's buffers are delivered.
        self._route_arrays: Optional[Dict[int, List[Tuple]]] = None
        self._pending_batch: Dict[int, Dict[int, np.ndarray]] = {}
        self._pending_batch_stats: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------
    def set_core_position(self, core_id: int, row: int, col: int) -> None:
        """Record the mesh position of a core (used for hop statistics)."""
        self._core_positions[core_id] = (row, col)
        self._route_arrays = None

    def connect(
        self, source_core: int, source_neuron: int, target_core: int, target_axon: int
    ) -> None:
        """Route spikes of (source_core, source_neuron) to (target_core, target_axon)."""
        self._routes[(source_core, source_neuron)] = NeuronTarget(
            target_core=target_core, target_axon=target_axon
        )
        self._route_arrays = None

    def reset_state(self) -> None:
        """Drop all in-flight spikes and statistics, keeping the programming.

        Routes and core positions survive (they are chip programming, not
        run state); pending events, batch buffers, and the delivered/hop
        counters are cleared.  The original chip ``reset`` re-created the
        router from scratch, which silently erased the inter-layer routes of
        multi-layer networks.
        """
        self._pending = defaultdict(list)
        self._pending_batch = {}
        self._pending_batch_stats = {}
        self.delivered_count = 0
        self.hop_count = 0

    def route_of(self, source_core: int, source_neuron: int) -> Optional[NeuronTarget]:
        """Return the routing entry of a neuron, or None if unrouted."""
        return self._routes.get((source_core, source_neuron))

    @property
    def route_count(self) -> int:
        """Number of programmed neuron routes."""
        return len(self._routes)

    # ------------------------------------------------------------------
    def submit(self, core_id: int, spikes: np.ndarray, tick: int) -> int:
        """Enqueue the spikes produced by ``core_id`` at ``tick``.

        Returns the number of spikes that had a route and were enqueued.
        """
        spikes = np.asarray(spikes)
        enqueued = 0
        for neuron in np.nonzero(spikes)[0]:
            route = self._routes.get((core_id, int(neuron)))
            if route is None:
                continue
            event = SpikeEvent(
                source_core=core_id,
                source_neuron=int(neuron),
                target_core=route.target_core,
                target_axon=route.target_axon,
                tick=tick + self.delay,
            )
            self._pending[event.tick].append(event)
            enqueued += 1
        return enqueued

    def deliver(self, tick: int, axons_per_core: AxonCounts) -> Dict[int, np.ndarray]:
        """Pop all events due at ``tick`` and return per-core axon spike vectors.

        ``axons_per_core`` is a uniform count or a ``core_id -> axons``
        mapping (per-core-fit trimmed chips).
        """
        events = self._pending.pop(tick, [])
        delivery: Dict[int, np.ndarray] = {}
        for event in events:
            axons = _axons_of(axons_per_core, event.target_core)
            vector = delivery.setdefault(
                event.target_core, np.zeros(axons, dtype=np.int8)
            )
            if not (0 <= event.target_axon < axons):
                raise IndexError(
                    f"target axon {event.target_axon} outside [0, {axons})"
                )
            vector[event.target_axon] = 1
            self.delivered_count += 1
            self.hop_count += self._hops(event.source_core, event.target_core)
        return delivery

    # ------------------------------------------------------------------
    # batched path
    # ------------------------------------------------------------------
    def _compiled_routes(self) -> Dict[int, List[Tuple]]:
        """Routes grouped as index arrays: ``source -> [(target, neuron_idx,
        axon_idx, unique_axons, hops), ...]``.

        Compiled lazily and invalidated whenever a route or core position
        changes.  ``unique_axons`` records whether the target axons within a
        group are distinct, which lets delivery use a plain scatter instead
        of ``np.maximum.at``.
        """
        if self._route_arrays is None:
            grouped: Dict[int, Dict[int, List[Tuple[int, int]]]] = {}
            for (source_core, neuron), target in self._routes.items():
                grouped.setdefault(source_core, {}).setdefault(
                    target.target_core, []
                ).append((neuron, target.target_axon))
            compiled: Dict[int, List[Tuple]] = {}
            for source_core, by_target in grouped.items():
                entries = []
                for target_core, pairs in sorted(by_target.items()):
                    pairs.sort()
                    neuron_idx = np.array([p[0] for p in pairs], dtype=np.intp)
                    axon_idx = np.array([p[1] for p in pairs], dtype=np.intp)
                    unique_axons = np.unique(axon_idx).size == axon_idx.size
                    entries.append(
                        (
                            target_core,
                            neuron_idx,
                            axon_idx,
                            unique_axons,
                            self._hops(source_core, target_core),
                        )
                    )
                compiled[source_core] = entries
            self._route_arrays = compiled
        return self._route_arrays

    def submit_batch(
        self, core_id: int, spikes: np.ndarray, tick: int, axons_per_core: AxonCounts
    ) -> int:
        """Enqueue a ``(batch, neurons)`` spike matrix produced at ``tick``.

        Spikes are scattered into per-target ``(batch, axons)`` buffers
        immediately (index-array writes, no per-spike Python work); delivery
        at ``tick + delay`` just pops the buffers.  ``axons_per_core`` is a
        uniform count or a ``core_id -> axons`` mapping (per-core-fit
        trimmed chips); each target buffer is sized for *its* core.
        Returns the number of routed (sample, spike) pairs enqueued.
        """
        spikes = np.asarray(spikes)
        entries = self._compiled_routes().get(core_id)
        if entries is None or not spikes.any():
            return 0
        due = tick + self.delay
        batch = spikes.shape[0]
        buffers = self._pending_batch.setdefault(due, {})
        stats = self._pending_batch_stats.setdefault(due, [0, 0])
        enqueued = 0
        for target_core, neuron_idx, axon_idx, unique_axons, hops in entries:
            columns = spikes[:, neuron_idx]
            routed = int(np.count_nonzero(columns))
            if routed == 0:
                continue
            axons = _axons_of(axons_per_core, target_core)
            buffer = buffers.get(target_core)
            if buffer is None:
                buffer = np.zeros((batch, axons), dtype=np.int8)
                buffers[target_core] = buffer
            if axon_idx.size and (
                axon_idx.min() < 0 or axon_idx.max() >= axons
            ):
                bad = axon_idx.min() if axon_idx.min() < 0 else axon_idx.max()
                raise IndexError(
                    f"target axon {int(bad)} outside [0, {axons})"
                )
            columns = (columns != 0).astype(np.int8)
            if unique_axons:
                buffer[:, axon_idx] = np.maximum(buffer[:, axon_idx], columns)
            else:
                np.maximum.at(buffer, (slice(None), axon_idx), columns)
            # Counters advance on delivery, like the scalar event path; each
            # routed (sample, spike) pair counts once even when OR-merged.
            stats[0] += routed
            stats[1] += routed * hops
            enqueued += routed
        return enqueued

    def deliver_batch(
        self, tick: int, axons_per_core: AxonCounts, batch_size: int
    ) -> Dict[int, np.ndarray]:
        """Pop the pre-scattered ``(batch, axons)`` buffers due at ``tick``."""
        buffers = self._pending_batch.pop(tick, {})
        delivered, hops = self._pending_batch_stats.pop(tick, (0, 0))
        self.delivered_count += delivered
        self.hop_count += hops
        for target_core, buffer in buffers.items():
            expected = (batch_size, _axons_of(axons_per_core, target_core))
            if buffer.shape != expected:
                raise ValueError(
                    f"pending buffer of shape {buffer.shape} does not match "
                    f"{expected}"
                )
        return buffers

    def has_pending(self) -> bool:
        """True when any spike (scalar event or batch buffer) is in flight."""
        if any(events for events in self._pending.values()):
            return True
        return any(self._pending_batch.values())

    def pending_events(self) -> Iterable[SpikeEvent]:
        """Iterate over all not-yet-delivered spike events (any tick)."""
        for events in self._pending.values():
            yield from events

    def _hops(self, source_core: int, target_core: int) -> int:
        src = self._core_positions.get(source_core)
        dst = self._core_positions.get(target_core)
        if src is None or dst is None:
            return 0
        return abs(src[0] - dst[0]) + abs(src[1] - dst[1])
