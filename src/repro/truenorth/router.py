"""Spike routing between neuro-synaptic cores.

On the chip every neuron holds the address (target core, target axon) its
spikes are delivered to; delivery happens in the tick after the spike is
produced.  The simulator reproduces that behaviour with an explicit event
queue: :class:`SpikeRouter` collects :class:`SpikeEvent` objects emitted
during tick *t* and exposes per-core axon vectors at tick *t + delay*.

The router also counts hop distance on the 2-D mesh so experiments can report
communication statistics, although the paper's evaluation does not depend on
them.

Batched execution replaces the per-event queue with index-array scatter:
the programmed routes of each source core are compiled once into
``(neuron indices, target axons)`` arrays grouped by target core
(:meth:`SpikeRouter.submit_batch`), so enqueueing a ``(batch, neurons)``
spike matrix is a handful of column gathers, and delivery
(:meth:`SpikeRouter.deliver_batch`) pops pre-scattered ``(batch, axons)``
buffers.  Delivered/hop counters advance by the same amounts the scalar
event path would accrue, summed over the batch.

Multi-copy batches need no extra routing state: every copy of a multi-copy
chip image is programmed with the same topology, so the one compiled route
table *is* each copy's route table, and because the scatter only ever moves
a batch row to the same row of a target buffer, the copy-major rows stay
disjoint — a spike of copy ``c`` can only land on copy ``c``'s axon rows.
The delivered/hop counters therefore equal the sum of the counters ``C``
one-chip-per-copy routers would report, which the equivalence tests assert.

Board-scale simulation adds *remote* routes: a neuron whose target core
lives on another chip of a multi-chip board (:mod:`repro.board`) is
programmed with :meth:`SpikeRouter.connect_remote` instead of
:meth:`SpikeRouter.connect`.  Spikes taking a remote route are not
scattered into this router's pending buffers — they are collected as
:class:`EgressBatch` records (one per compiled remote route group per
tick) that the board pops via :meth:`SpikeRouter.pop_egress` and injects
into the *target* chip's router through
:meth:`SpikeRouter.external_deliver_batch` at a due tick that adds the
mesh link delay on top of the router delay.  The pending buffers of the
receiving router therefore double as the inter-chip link queues: a spike
in flight over a link is exactly a pre-scattered buffer entry at a future
tick, and :meth:`has_pending` accounts for not-yet-popped egress so the
board's exact drain model sees every in-flight spike.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

import numpy as np

#: Axon count of the receiving cores: one uniform count for homogeneous
#: chips, or a ``core_id -> axons`` mapping when per-core-fit trimming
#: gives every core its own crossbar geometry.
AxonCounts = Union[int, Mapping[int, int]]


def _axons_of(axons_per_core: AxonCounts, core_id: int) -> int:
    """Resolve the axon count of one target core from either form."""
    if isinstance(axons_per_core, int):
        return axons_per_core
    return axons_per_core[core_id]


@dataclass(frozen=True)
class SpikeEvent:
    """One spike in flight from a neuron to a target axon.

    Attributes:
        source_core: id of the emitting core.
        source_neuron: neuron index within the emitting core.
        target_core: id of the receiving core.
        target_axon: axon index within the receiving core.
        tick: tick at which the spike should be *delivered*.
    """

    source_core: int
    source_neuron: int
    target_core: int
    target_axon: int
    tick: int


@dataclass(frozen=True)
class NeuronTarget:
    """Routing entry: where one neuron's spikes are delivered."""

    target_core: int
    target_axon: int


@dataclass(frozen=True)
class RemoteTarget:
    """Routing entry for a spike that leaves the chip over a mesh link."""

    target_chip: int
    target_core: int
    target_axon: int


@dataclass(frozen=True)
class EgressBatch:
    """Spikes of one remote route group leaving the chip at one tick.

    Attributes:
        target_chip: board index of the receiving chip.
        target_core: core id on the receiving chip.
        axon_idx: target axon per column of ``columns``.
        unique_axons: whether ``axon_idx`` entries are distinct (plain
            scatter vs. ``np.maximum.at`` on injection).
        columns: ``(batch, len(axon_idx))`` 0/1 spike matrix.
        tick: emission tick (the board adds router + link delay on top).
        routed: number of nonzero (sample, spike) pairs in ``columns``.
    """

    target_chip: int
    target_core: int
    axon_idx: np.ndarray
    unique_axons: bool
    columns: np.ndarray
    tick: int
    routed: int


class SpikeRouter:
    """Mesh spike router with a single-tick delivery delay.

    The router is deliberately simple: spikes emitted at tick ``t`` become
    visible on their target axons at tick ``t + delay`` (default 1), matching
    the chip's synchronous tick discipline.  Unrouted neurons simply drop
    their spikes (they are typically read out externally instead).
    """

    def __init__(self, delay: int = 1):
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self.delay = delay
        self._routes: Dict[Tuple[int, int], NeuronTarget] = {}
        self._pending: Dict[int, List[SpikeEvent]] = defaultdict(list)
        self._core_positions: Dict[int, Tuple[int, int]] = {}
        self.delivered_count = 0
        self.hop_count = 0
        # Batched state: compiled route arrays per source core, pre-scattered
        # (batch, axons) buffers per (tick, target core), and the counter
        # increments to apply when each tick's buffers are delivered.
        self._route_arrays: Optional[Dict[int, List[Tuple]]] = None
        self._pending_batch: Dict[int, Dict[int, np.ndarray]] = {}
        self._pending_batch_stats: Dict[int, List[int]] = {}
        # Board state: off-chip routes, their compiled form, and the spikes
        # waiting for the board to carry them over a link (see module doc).
        self._remote_routes: Dict[Tuple[int, int], RemoteTarget] = {}
        self._remote_arrays: Optional[Dict[int, List[Tuple]]] = None
        self._egress: List[EgressBatch] = []

    # ------------------------------------------------------------------
    def set_core_position(self, core_id: int, row: int, col: int) -> None:
        """Record the mesh position of a core (used for hop statistics)."""
        self._core_positions[core_id] = (row, col)
        self._route_arrays = None

    def connect(
        self, source_core: int, source_neuron: int, target_core: int, target_axon: int
    ) -> None:
        """Route spikes of (source_core, source_neuron) to (target_core, target_axon)."""
        if (source_core, source_neuron) in self._remote_routes:
            raise ValueError(
                f"neuron ({source_core}, {source_neuron}) already has a "
                "remote route; a neuron holds exactly one target address"
            )
        self._routes[(source_core, source_neuron)] = NeuronTarget(
            target_core=target_core, target_axon=target_axon
        )
        self._route_arrays = None

    def connect_remote(
        self,
        source_core: int,
        source_neuron: int,
        target_chip: int,
        target_core: int,
        target_axon: int,
    ) -> None:
        """Route spikes of one neuron to an axon on another chip of a board.

        The spikes are collected as egress (:meth:`pop_egress`) instead of
        entering this router's pending buffers; the board injects them into
        the target chip's router with the link delay added.
        """
        if (source_core, source_neuron) in self._routes:
            raise ValueError(
                f"neuron ({source_core}, {source_neuron}) already has an "
                "on-chip route; a neuron holds exactly one target address"
            )
        self._remote_routes[(source_core, source_neuron)] = RemoteTarget(
            target_chip=target_chip,
            target_core=target_core,
            target_axon=target_axon,
        )
        self._remote_arrays = None

    def reset_state(self) -> None:
        """Drop all in-flight spikes and statistics, keeping the programming.

        Routes and core positions survive (they are chip programming, not
        run state); pending events, batch buffers, and the delivered/hop
        counters are cleared.  The original chip ``reset`` re-created the
        router from scratch, which silently erased the inter-layer routes of
        multi-layer networks.
        """
        self._pending = defaultdict(list)
        self._pending_batch = {}
        self._pending_batch_stats = {}
        self._egress = []
        self.delivered_count = 0
        self.hop_count = 0

    def route_of(self, source_core: int, source_neuron: int) -> Optional[NeuronTarget]:
        """Return the routing entry of a neuron, or None if unrouted."""
        return self._routes.get((source_core, source_neuron))

    def remote_route_of(
        self, source_core: int, source_neuron: int
    ) -> Optional[RemoteTarget]:
        """Return the off-chip routing entry of a neuron, or None."""
        return self._remote_routes.get((source_core, source_neuron))

    @property
    def route_count(self) -> int:
        """Number of programmed neuron routes."""
        return len(self._routes)

    @property
    def remote_route_count(self) -> int:
        """Number of programmed off-chip neuron routes."""
        return len(self._remote_routes)

    # ------------------------------------------------------------------
    def submit(self, core_id: int, spikes: np.ndarray, tick: int) -> int:
        """Enqueue the spikes produced by ``core_id`` at ``tick``.

        Returns the number of spikes that had a route and were enqueued.
        """
        spikes = np.asarray(spikes)
        enqueued = 0
        for neuron in np.nonzero(spikes)[0]:
            remote = self._remote_routes.get((core_id, int(neuron)))
            if remote is not None:
                # Scalar spikes leave the chip as single-row egress batches;
                # the board injects them with the link delay added.
                self._egress.append(
                    EgressBatch(
                        target_chip=remote.target_chip,
                        target_core=remote.target_core,
                        axon_idx=np.array([remote.target_axon], dtype=np.intp),
                        unique_axons=True,
                        columns=np.ones((1, 1), dtype=np.int8),
                        tick=tick,
                        routed=1,
                    )
                )
                enqueued += 1
                continue
            route = self._routes.get((core_id, int(neuron)))
            if route is None:
                continue
            event = SpikeEvent(
                source_core=core_id,
                source_neuron=int(neuron),
                target_core=route.target_core,
                target_axon=route.target_axon,
                tick=tick + self.delay,
            )
            self._pending[event.tick].append(event)
            enqueued += 1
        return enqueued

    def deliver(self, tick: int, axons_per_core: AxonCounts) -> Dict[int, np.ndarray]:
        """Pop all events due at ``tick`` and return per-core axon spike vectors.

        ``axons_per_core`` is a uniform count or a ``core_id -> axons``
        mapping (per-core-fit trimmed chips).
        """
        events = self._pending.pop(tick, [])
        delivery: Dict[int, np.ndarray] = {}
        for event in events:
            axons = _axons_of(axons_per_core, event.target_core)
            vector = delivery.setdefault(
                event.target_core, np.zeros(axons, dtype=np.int8)
            )
            if not (0 <= event.target_axon < axons):
                raise IndexError(
                    f"target axon {event.target_axon} outside [0, {axons})"
                )
            vector[event.target_axon] = 1
            self.delivered_count += 1
            self.hop_count += self._hops(event.source_core, event.target_core)
        return delivery

    # ------------------------------------------------------------------
    # batched path
    # ------------------------------------------------------------------
    def _compiled_routes(self) -> Dict[int, List[Tuple]]:
        """Routes grouped as index arrays: ``source -> [(target, neuron_idx,
        axon_idx, unique_axons, hops), ...]``.

        Compiled lazily and invalidated whenever a route or core position
        changes.  ``unique_axons`` records whether the target axons within a
        group are distinct, which lets delivery use a plain scatter instead
        of ``np.maximum.at``.
        """
        if self._route_arrays is None:
            grouped: Dict[int, Dict[int, List[Tuple[int, int]]]] = {}
            for (source_core, neuron), target in self._routes.items():
                grouped.setdefault(source_core, {}).setdefault(
                    target.target_core, []
                ).append((neuron, target.target_axon))
            compiled: Dict[int, List[Tuple]] = {}
            for source_core, by_target in grouped.items():
                entries = []
                for target_core, pairs in sorted(by_target.items()):
                    pairs.sort()
                    neuron_idx = np.array([p[0] for p in pairs], dtype=np.intp)
                    axon_idx = np.array([p[1] for p in pairs], dtype=np.intp)
                    unique_axons = np.unique(axon_idx).size == axon_idx.size
                    entries.append(
                        (
                            target_core,
                            neuron_idx,
                            axon_idx,
                            unique_axons,
                            self._hops(source_core, target_core),
                        )
                    )
                compiled[source_core] = entries
            self._route_arrays = compiled
        return self._route_arrays

    def _compiled_remote_routes(self) -> Dict[int, List[Tuple]]:
        """Remote routes grouped as index arrays: ``source -> [(target_chip,
        target_core, neuron_idx, axon_idx, unique_axons), ...]``."""
        if self._remote_arrays is None:
            grouped: Dict[int, Dict[Tuple[int, int], List[Tuple[int, int]]]] = {}
            for (source_core, neuron), target in self._remote_routes.items():
                grouped.setdefault(source_core, {}).setdefault(
                    (target.target_chip, target.target_core), []
                ).append((neuron, target.target_axon))
            compiled: Dict[int, List[Tuple]] = {}
            for source_core, by_target in grouped.items():
                entries = []
                for (target_chip, target_core), pairs in sorted(by_target.items()):
                    pairs.sort()
                    neuron_idx = np.array([p[0] for p in pairs], dtype=np.intp)
                    axon_idx = np.array([p[1] for p in pairs], dtype=np.intp)
                    unique_axons = np.unique(axon_idx).size == axon_idx.size
                    entries.append(
                        (target_chip, target_core, neuron_idx, axon_idx, unique_axons)
                    )
                compiled[source_core] = entries
            self._remote_arrays = compiled
        return self._remote_arrays

    def submit_batch(
        self, core_id: int, spikes: np.ndarray, tick: int, axons_per_core: AxonCounts
    ) -> int:
        """Enqueue a ``(batch, neurons)`` spike matrix produced at ``tick``.

        Spikes are scattered into per-target ``(batch, axons)`` buffers
        immediately (index-array writes, no per-spike Python work); delivery
        at ``tick + delay`` just pops the buffers.  ``axons_per_core`` is a
        uniform count or a ``core_id -> axons`` mapping (per-core-fit
        trimmed chips); each target buffer is sized for *its* core.
        Returns the number of routed (sample, spike) pairs enqueued.
        """
        spikes = np.asarray(spikes)
        entries = self._compiled_routes().get(core_id)
        if not spikes.any():
            return 0
        enqueued = 0
        for target_chip, target_core, neuron_idx, axon_idx, unique in (
            self._compiled_remote_routes().get(core_id, ())
        ):
            columns = (spikes[:, neuron_idx] != 0).astype(np.int8)
            routed = int(np.count_nonzero(columns))
            if routed == 0:
                continue
            self._egress.append(
                EgressBatch(
                    target_chip=target_chip,
                    target_core=target_core,
                    axon_idx=axon_idx,
                    unique_axons=unique,
                    columns=columns,
                    tick=tick,
                    routed=routed,
                )
            )
            enqueued += routed
        if entries is None:
            return enqueued
        due = tick + self.delay
        batch = spikes.shape[0]
        buffers = self._pending_batch.setdefault(due, {})
        stats = self._pending_batch_stats.setdefault(due, [0, 0])
        for target_core, neuron_idx, axon_idx, unique_axons, hops in entries:
            columns = spikes[:, neuron_idx]
            routed = int(np.count_nonzero(columns))
            if routed == 0:
                continue
            axons = _axons_of(axons_per_core, target_core)
            buffer = buffers.get(target_core)
            if buffer is None:
                buffer = np.zeros((batch, axons), dtype=np.int8)
                buffers[target_core] = buffer
            if axon_idx.size and (
                axon_idx.min() < 0 or axon_idx.max() >= axons
            ):
                bad = axon_idx.min() if axon_idx.min() < 0 else axon_idx.max()
                raise IndexError(
                    f"target axon {int(bad)} outside [0, {axons})"
                )
            columns = (columns != 0).astype(np.int8)
            if unique_axons:
                buffer[:, axon_idx] = np.maximum(buffer[:, axon_idx], columns)
            else:
                np.maximum.at(buffer, (slice(None), axon_idx), columns)
            # Counters advance on delivery, like the scalar event path; each
            # routed (sample, spike) pair counts once even when OR-merged.
            stats[0] += routed
            stats[1] += routed * hops
            enqueued += routed
        return enqueued

    def deliver_batch(
        self, tick: int, axons_per_core: AxonCounts, batch_size: int
    ) -> Dict[int, np.ndarray]:
        """Pop the pre-scattered ``(batch, axons)`` buffers due at ``tick``."""
        buffers = self._pending_batch.pop(tick, {})
        delivered, hops = self._pending_batch_stats.pop(tick, (0, 0))
        self.delivered_count += delivered
        self.hop_count += hops
        for target_core, buffer in buffers.items():
            expected = (batch_size, _axons_of(axons_per_core, target_core))
            if buffer.shape != expected:
                raise ValueError(
                    f"pending buffer of shape {buffer.shape} does not match "
                    f"{expected}"
                )
        return buffers

    def pop_egress(self) -> List[EgressBatch]:
        """Return and clear the spikes waiting to leave the chip.

        The board calls this after every chip tick and injects each record
        into its target chip's router via :meth:`external_deliver_batch`.
        """
        egress = self._egress
        self._egress = []
        return egress

    def external_deliver_batch(
        self,
        due_tick: int,
        target_core: int,
        axon_idx: np.ndarray,
        columns: np.ndarray,
        axons: int,
        unique_axons: bool,
        routed: int,
    ) -> None:
        """Scatter spikes arriving over a mesh link into the pending buffers.

        The board computes ``due_tick`` (emission tick + this router's delay
        + link delay x chip distance) and resolves ``axons`` from the target
        core's geometry.  Injected spikes advance the delivered counter on
        delivery exactly like locally routed ones; link hops are accounted
        by the board's :class:`~repro.board.board.LinkFabric`, not here —
        the on-chip hop counter keeps its on-chip meaning.
        """
        columns = np.asarray(columns)
        if axon_idx.size and (axon_idx.min() < 0 or axon_idx.max() >= axons):
            bad = axon_idx.min() if axon_idx.min() < 0 else axon_idx.max()
            raise IndexError(f"target axon {int(bad)} outside [0, {axons})")
        batch = columns.shape[0]
        buffers = self._pending_batch.setdefault(due_tick, {})
        stats = self._pending_batch_stats.setdefault(due_tick, [0, 0])
        buffer = buffers.get(target_core)
        if buffer is None:
            buffer = np.zeros((batch, axons), dtype=np.int8)
            buffers[target_core] = buffer
        elif buffer.shape[0] != batch:
            raise ValueError(
                f"link spikes carry {batch} batch rows but core "
                f"{target_core}'s pending buffer has {buffer.shape[0]}"
            )
        if unique_axons:
            buffer[:, axon_idx] = np.maximum(buffer[:, axon_idx], columns)
        else:
            np.maximum.at(buffer, (slice(None), axon_idx), columns)
        stats[0] += routed

    def has_pending(self) -> bool:
        """True when any spike (scalar event, batch buffer, or not-yet-popped
        egress) is in flight."""
        if any(events for events in self._pending.values()):
            return True
        if self._egress:
            return True
        return any(self._pending_batch.values())

    def pending_events(self) -> Iterable[SpikeEvent]:
        """Iterate over all not-yet-delivered spike events (any tick)."""
        for events in self._pending.values():
            yield from events

    def _hops(self, source_core: int, target_core: int) -> int:
        src = self._core_positions.get(source_core)
        dst = self._core_positions.get(target_core)
        if src is None or dst is None:
            return 0
        return abs(src[0] - dst[0]) + abs(src[1] - dst[1])
