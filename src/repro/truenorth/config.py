"""Configuration dataclasses for the TrueNorth simulator.

The hardware exposes a large number of per-neuron parameters (22 in the real
LIF macro, 14 user-configurable).  The reproduction models the subset the
paper exercises — leak, threshold, reset behaviour, stochastic synapse gating
— and validates values against the architectural ranges in
:mod:`repro.truenorth.constants`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

from repro.truenorth import constants


@dataclass(frozen=True)
class NeuronConfig:
    """Parameters of one digital neuron.

    Attributes:
        weight_table: signed integer weight per axon type (length
            ``AXON_TYPES``); the synapse weight applied when a connection is
            ON and a spike arrives on an axon of that type.
        leak: signed leak added to the membrane potential every tick
            (the paper folds the bias and the leak ``lambda`` into the
            weighted sum, so test-bench neurons usually use ``leak=0``).
        threshold: firing threshold (``y' >= threshold`` produces a spike).
        reset_potential: value the membrane potential is reset to after the
            neuron is evaluated (McCulloch-Pitts resets every tick).
        history_free: when True the neuron behaves as the McCulloch-Pitts
            special case of the paper — the membrane potential is cleared
            after every evaluation regardless of whether the neuron fired.
        stochastic_synapses: when True, each ON crossbar connection is gated
            per tick by the core PRNG with its programmed probability; when
            False connections are deterministic.
    """

    weight_table: Tuple[int, ...] = constants.DEFAULT_WEIGHT_TABLE
    leak: int = 0
    threshold: int = 0
    reset_potential: int = 0
    history_free: bool = True
    stochastic_synapses: bool = False

    def __post_init__(self):
        if len(self.weight_table) != constants.AXON_TYPES:
            raise ValueError(
                f"weight_table must have {constants.AXON_TYPES} entries, "
                f"got {len(self.weight_table)}"
            )
        for value in self.weight_table:
            if not (constants.WEIGHT_MIN <= value <= constants.WEIGHT_MAX):
                raise ValueError(
                    f"weight-table entry {value} outside "
                    f"[{constants.WEIGHT_MIN}, {constants.WEIGHT_MAX}]"
                )


@dataclass(frozen=True)
class CoreConfig:
    """Parameters of one neuro-synaptic core."""

    axons: int = constants.AXONS_PER_CORE
    neurons: int = constants.NEURONS_PER_CORE
    neuron_config: NeuronConfig = field(default_factory=NeuronConfig)
    seed: int = 0

    def __post_init__(self):
        if not (0 < self.axons <= constants.AXONS_PER_CORE):
            raise ValueError(
                f"axons must be in (0, {constants.AXONS_PER_CORE}], got {self.axons}"
            )
        if not (0 < self.neurons <= constants.NEURONS_PER_CORE):
            raise ValueError(
                f"neurons must be in (0, {constants.NEURONS_PER_CORE}], got {self.neurons}"
            )


@dataclass(frozen=True)
class ChipConfig:
    """Parameters of a simulated chip (grid of cores)."""

    grid_shape: Tuple[int, int] = constants.CHIP_GRID_SHAPE
    core_config: CoreConfig = field(default_factory=CoreConfig)

    def __post_init__(self):
        rows, cols = self.grid_shape
        if rows <= 0 or cols <= 0:
            raise ValueError(f"grid_shape must be positive, got {self.grid_shape}")

    @property
    def capacity(self) -> int:
        """Total number of core slots available on the chip."""
        return self.grid_shape[0] * self.grid_shape[1]


def validate_axon_types(axon_types: Sequence[int]) -> None:
    """Raise ``ValueError`` if any axon-type index is out of range."""
    for t in axon_types:
        if not (0 <= int(t) < constants.AXON_TYPES):
            raise ValueError(
                f"axon type {t} outside [0, {constants.AXON_TYPES})"
            )
