"""The neuro-synaptic core: crossbar + neuron array + core PRNG.

A :class:`NeurosynapticCore` receives a binary spike vector on its axons each
tick, integrates it through the crossbar (optionally re-sampling stochastic
synapses), updates its neurons, and emits a binary spike vector on its
neurons.  Cores are composed into a chip by :class:`repro.truenorth.chip.TrueNorthChip`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.truenorth.config import CoreConfig
from repro.truenorth.crossbar import SynapticCrossbar
from repro.truenorth.neuron import NeuronArray
from repro.truenorth.prng import LfsrPrng


class NeurosynapticCore:
    """One TrueNorth neuro-synaptic core.

    Args:
        config: core parameters; ``config.neuron_config.stochastic_synapses``
            selects whether the crossbar connectivity is re-sampled from the
            programmed Bernoulli probabilities at every tick.
        core_id: identifier used by the chip/router (free-form integer).
    """

    def __init__(self, config: Optional[CoreConfig] = None, core_id: int = 0):
        self.config = config or CoreConfig()
        self.core_id = core_id
        neuron_cfg = self.config.neuron_config
        self.crossbar = SynapticCrossbar(
            axons=self.config.axons,
            neurons=self.config.neurons,
            weight_table=neuron_cfg.weight_table,
        )
        self.neurons = NeuronArray(self.config.neurons, neuron_cfg)
        self.prng = LfsrPrng(seed=self.config.seed + core_id + 1)
        self._tick_count = 0
        self._spike_count = 0

    # ------------------------------------------------------------------
    @property
    def tick_count(self) -> int:
        """Number of ticks this core has executed since the last reset."""
        return self._tick_count

    @property
    def spike_count(self) -> int:
        """Total number of output spikes produced since the last reset."""
        return self._spike_count

    def reset(self) -> None:
        """Reset neuron state, PRNG, and activity counters (keeps programming)."""
        self.neurons.reset()
        self.prng.reset()
        self._tick_count = 0
        self._spike_count = 0

    # ------------------------------------------------------------------
    def tick(self, axon_spikes: np.ndarray) -> np.ndarray:
        """Run one tick: integrate axon spikes and produce neuron spikes.

        In history-free (McCulloch-Pitts) mode a neuron only fires when at
        least one ON synapse received a spike this tick; a silent crossbar
        never produces a spike even though its zero weighted sum satisfies
        ``y' >= 0`` when the threshold is zero.
        """
        axon_spikes = np.asarray(axon_spikes)
        neuron_cfg = self.config.neuron_config
        if neuron_cfg.history_free:
            synaptic_input, active_counts = self.crossbar.integrate(
                axon_spikes,
                prng=self.prng,
                stochastic=neuron_cfg.stochastic_synapses,
                return_active_counts=True,
            )
            spikes = self.neurons.step(synaptic_input, active_synapses=active_counts)
        else:
            # Stateful (LIF) mode ignores the gate; skip the counts matmul.
            synaptic_input = self.crossbar.integrate(
                axon_spikes, prng=self.prng, stochastic=neuron_cfg.stochastic_synapses
            )
            spikes = self.neurons.step(synaptic_input)
        self._tick_count += 1
        self._spike_count += int(spikes.sum())
        return spikes

    def run(self, spike_frames: np.ndarray) -> np.ndarray:
        """Run a sequence of ticks.

        Args:
            spike_frames: array of shape ``(ticks, axons)`` with one binary
                spike vector per tick.

        Returns:
            array of shape ``(ticks, neurons)`` with the output spikes.
        """
        spike_frames = np.asarray(spike_frames)
        if spike_frames.ndim != 2 or spike_frames.shape[1] != self.config.axons:
            raise ValueError(
                f"expected frames of shape (ticks, {self.config.axons}), "
                f"got {spike_frames.shape}"
            )
        outputs = np.zeros((spike_frames.shape[0], self.config.neurons), dtype=np.int8)
        for t in range(spike_frames.shape[0]):
            outputs[t] = self.tick(spike_frames[t])
        return outputs

    # ------------------------------------------------------------------
    def utilization(self) -> dict:
        """Return simple occupancy statistics for reporting."""
        used_axons = int(self.crossbar.connectivity.any(axis=1).sum())
        used_neurons = int(self.crossbar.connectivity.any(axis=0).sum())
        programmed = int(self.crossbar.connectivity.sum())
        return {
            "core_id": self.core_id,
            "used_axons": used_axons,
            "used_neurons": used_neurons,
            "programmed_synapses": programmed,
            "synapse_density": programmed / float(self.config.axons * self.config.neurons),
        }
