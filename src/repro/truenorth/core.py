"""The neuro-synaptic core: crossbar + neuron array + core PRNG.

A :class:`NeurosynapticCore` receives a binary spike vector on its axons each
tick, integrates it through the crossbar (optionally re-sampling stochastic
synapses), updates its neurons, and emits a binary spike vector on its
neurons.  Cores are composed into a chip by :class:`repro.truenorth.chip.TrueNorthChip`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.truenorth.config import CoreConfig
from repro.truenorth.crossbar import SynapticCrossbar
from repro.truenorth.neuron import NeuronArray
from repro.truenorth.prng import LfsrPrng


class NeurosynapticCore:
    """One TrueNorth neuro-synaptic core.

    Args:
        config: core parameters; ``config.neuron_config.stochastic_synapses``
            selects whether the crossbar connectivity is re-sampled from the
            programmed Bernoulli probabilities at every tick.
        core_id: identifier used by the chip/router (free-form integer).
    """

    def __init__(self, config: Optional[CoreConfig] = None, core_id: int = 0):
        self.config = config or CoreConfig()
        self.core_id = core_id
        neuron_cfg = self.config.neuron_config
        self.crossbar = SynapticCrossbar(
            axons=self.config.axons,
            neurons=self.config.neurons,
            weight_table=neuron_cfg.weight_table,
        )
        self.neurons = NeuronArray(self.config.neurons, neuron_cfg)
        self.prng = LfsrPrng(seed=self.config.seed + core_id + 1)
        self._tick_count = 0
        self._spike_count = 0
        self._batch_spike_counts: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    @property
    def tick_count(self) -> int:
        """Number of ticks this core has executed since the last reset."""
        return self._tick_count

    @property
    def spike_count(self) -> int:
        """Total number of output spikes produced since the last reset.

        In batch mode this is the sum over all batch samples; the per-sample
        breakdown is :attr:`batch_spike_counts`.
        """
        return self._spike_count

    @property
    def batch_size(self) -> Optional[int]:
        """Current batch size, or ``None`` in scalar mode."""
        return self.neurons.batch_size

    @property
    def batch_spike_counts(self) -> Optional[np.ndarray]:
        """Per-sample output spike counts ``(batch,)`` since ``begin_batch``.

        ``None`` in scalar mode.  For a batch of B samples, entry ``i``
        equals the :attr:`spike_count` a scalar run of sample ``i`` alone
        would report — the equivalence tests rely on this.
        """
        if self._batch_spike_counts is None:
            return None
        return self._batch_spike_counts.copy()

    def reset(self) -> None:
        """Reset neuron state, PRNG, and activity counters (keeps programming).

        Also leaves batch mode: the next :meth:`tick` runs scalar again.
        """
        self.neurons.reset()
        self.prng.reset()
        self._tick_count = 0
        self._spike_count = 0
        self._batch_spike_counts = None

    def begin_batch(self, batch_size: int) -> None:
        """Reset the core and switch to lock-step batch execution.

        After this call :meth:`tick_batch` advances ``batch_size`` samples
        per tick on shared programming (crossbar) but independent neuron
        state; :meth:`reset` returns to scalar mode.
        """
        self.reset()
        self.neurons.begin_batch(batch_size)
        self._batch_spike_counts = np.zeros(batch_size, dtype=np.int64)

    # ------------------------------------------------------------------
    def tick(self, axon_spikes: np.ndarray) -> np.ndarray:
        """Run one tick: integrate axon spikes and produce neuron spikes.

        In history-free (McCulloch-Pitts) mode a neuron only fires when at
        least one ON synapse received a spike this tick; a silent crossbar
        never produces a spike even though its zero weighted sum satisfies
        ``y' >= 0`` when the threshold is zero.
        """
        axon_spikes = np.asarray(axon_spikes)
        neuron_cfg = self.config.neuron_config
        if neuron_cfg.history_free:
            synaptic_input, active_counts = self.crossbar.integrate(
                axon_spikes,
                prng=self.prng,
                stochastic=neuron_cfg.stochastic_synapses,
                return_active_counts=True,
            )
            spikes = self.neurons.step(synaptic_input, active_synapses=active_counts)
        else:
            # Stateful (LIF) mode ignores the gate; skip the counts matmul.
            synaptic_input = self.crossbar.integrate(
                axon_spikes, prng=self.prng, stochastic=neuron_cfg.stochastic_synapses
            )
            spikes = self.neurons.step(synaptic_input)
        self._tick_count += 1
        self._spike_count += int(spikes.sum())
        return spikes

    def tick_batch(self, axon_spikes: np.ndarray) -> np.ndarray:
        """Run one tick for every batch sample at once.

        The crossbar integration is a single ``(batch, axons) @ (axons,
        neurons)`` matmul and the neuron update operates on ``(batch,
        neurons)`` state, so B samples advance in one numpy pass with
        exactly the spikes B scalar runs would produce.

        Args:
            axon_spikes: binary array of shape ``(batch, axons)``.

        Returns:
            binary int8 spike matrix of shape ``(batch, neurons)``.
        """
        if self.neurons.batch_size is None:
            raise RuntimeError("core is in scalar mode; call begin_batch() first")
        neuron_cfg = self.config.neuron_config
        if neuron_cfg.history_free:
            synaptic_input, active_counts = self.crossbar.integrate_batch(
                axon_spikes,
                prng=self.prng,
                stochastic=neuron_cfg.stochastic_synapses,
                return_active_counts=True,
            )
            spikes = self.neurons.step_batch(
                synaptic_input, active_synapses=active_counts
            )
        else:
            synaptic_input = self.crossbar.integrate_batch(
                axon_spikes, prng=self.prng, stochastic=neuron_cfg.stochastic_synapses
            )
            spikes = self.neurons.step_batch(synaptic_input)
        self._tick_count += 1
        per_sample = spikes.sum(axis=1, dtype=np.int64)
        self._batch_spike_counts += per_sample
        self._spike_count += int(per_sample.sum())
        return spikes

    def run(self, spike_frames: np.ndarray) -> np.ndarray:
        """Run a sequence of ticks.

        Args:
            spike_frames: array of shape ``(ticks, axons)`` with one binary
                spike vector per tick.

        Returns:
            array of shape ``(ticks, neurons)`` with the output spikes.
        """
        spike_frames = np.asarray(spike_frames)
        if spike_frames.ndim != 2 or spike_frames.shape[1] != self.config.axons:
            raise ValueError(
                f"expected frames of shape (ticks, {self.config.axons}), "
                f"got {spike_frames.shape}"
            )
        outputs = np.zeros((spike_frames.shape[0], self.config.neurons), dtype=np.int8)
        for t in range(spike_frames.shape[0]):
            outputs[t] = self.tick(spike_frames[t])
        return outputs

    # ------------------------------------------------------------------
    def utilization(self) -> dict:
        """Return simple occupancy statistics for reporting."""
        used_axons = int(self.crossbar.connectivity.any(axis=1).sum())
        used_neurons = int(self.crossbar.connectivity.any(axis=0).sum())
        programmed = int(self.crossbar.connectivity.sum())
        return {
            "core_id": self.core_id,
            "used_axons": used_axons,
            "used_neurons": used_neurons,
            "programmed_synapses": programmed,
            "synapse_density": programmed / float(self.config.axons * self.config.neurons),
        }
