"""The neuro-synaptic core: crossbar + neuron array + core PRNG.

A :class:`NeurosynapticCore` receives a binary spike vector on its axons each
tick, integrates it through the crossbar (optionally re-sampling stochastic
synapses), updates its neurons, and emits a binary spike vector on its
neurons.  Cores are composed into a chip by :class:`repro.truenorth.chip.TrueNorthChip`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.truenorth import constants
from repro.truenorth.config import CoreConfig
from repro.truenorth.crossbar import SynapticCrossbar
from repro.truenorth.neuron import NeuronArray
from repro.truenorth.prng import LfsrPrng


class NeurosynapticCore:
    """One TrueNorth neuro-synaptic core.

    Args:
        config: core parameters; ``config.neuron_config.stochastic_synapses``
            selects whether the crossbar connectivity is re-sampled from the
            programmed Bernoulli probabilities at every tick.
        core_id: identifier used by the chip/router (free-form integer).
    """

    def __init__(self, config: Optional[CoreConfig] = None, core_id: int = 0):
        self.config = config or CoreConfig()
        self.core_id = core_id
        neuron_cfg = self.config.neuron_config
        self.crossbar = SynapticCrossbar(
            axons=self.config.axons,
            neurons=self.config.neurons,
            weight_table=neuron_cfg.weight_table,
        )
        self.neurons = NeuronArray(self.config.neurons, neuron_cfg)
        self.prng = LfsrPrng(seed=self.config.seed + core_id + 1)
        #: per-copy PRNGs of a multi-copy batch (``None`` outside one);
        #: copy ``c`` draws the stream the same core on copy ``c``'s own
        #: one-chip-per-copy simulation would draw.
        self.copy_prngs: Optional[List[LfsrPrng]] = None
        self._tick_count = 0
        self._spike_count = 0
        self._batch_spike_counts: Optional[np.ndarray] = None
        self._copies = 1
        #: threshold on the folded matmul result that decides a spike in
        #: the multi-copy history-free fast path (``None`` = not eligible).
        self._fused_spike_bound: Optional[int] = None

    # ------------------------------------------------------------------
    @property
    def tick_count(self) -> int:
        """Number of ticks this core has executed since the last reset."""
        return self._tick_count

    @property
    def spike_count(self) -> int:
        """Total number of output spikes produced since the last reset.

        In batch mode this is the sum over all batch samples; the per-sample
        breakdown is :attr:`batch_spike_counts`.
        """
        return self._spike_count

    @property
    def batch_size(self) -> Optional[int]:
        """Current batch size, or ``None`` in scalar mode."""
        return self.neurons.batch_size

    @property
    def batch_spike_counts(self) -> Optional[np.ndarray]:
        """Per-sample output spike counts ``(batch,)`` since ``begin_batch``.

        ``None`` in scalar mode.  For a batch of B samples, entry ``i``
        equals the :attr:`spike_count` a scalar run of sample ``i`` alone
        would report — the equivalence tests rely on this.
        """
        if self._batch_spike_counts is None:
            return None
        return self._batch_spike_counts.copy()

    @property
    def copies(self) -> int:
        """Network copies in the current batch (1 outside multi-copy mode)."""
        return self._copies

    @property
    def multicopy_spike_counts(self) -> Optional[np.ndarray]:
        """Per-(copy, sample) output spike counts ``(copies, samples)``.

        ``None`` outside batch mode.  Entry ``[c, s]`` equals the
        :attr:`spike_count` this core would report on copy ``c``'s own
        one-chip-per-copy run of sample ``s`` alone — the multi-copy
        equivalence tests pin this against the per-copy loop.
        """
        if self._batch_spike_counts is None:
            return None
        return self._batch_spike_counts.reshape(self._copies, -1).copy()

    def reset(self) -> None:
        """Reset neuron state, PRNG, and activity counters (keeps programming).

        Also leaves batch mode: the next :meth:`tick` runs scalar again.
        """
        self.neurons.reset()
        self.prng.reset()
        self.copy_prngs = None
        self._tick_count = 0
        self._spike_count = 0
        self._batch_spike_counts = None
        self._copies = 1
        self._fused_spike_bound = None

    def begin_batch(
        self,
        batch_size: int,
        copies: int = 1,
        copy_seeds: Optional[Sequence[int]] = None,
    ) -> None:
        """Reset the core and switch to lock-step batch execution.

        After this call :meth:`tick_batch` advances ``batch_size`` samples
        per tick on shared programming (crossbar) but independent neuron
        state; :meth:`reset` returns to scalar mode.

        Args:
            batch_size: total batch rows.  With ``copies > 1`` the rows are
                copy-major ``(copies, batch_size // copies)`` and the
                crossbar integrates each copy through its own programmed
                weight slice (or the shared programming when no per-copy
                stack exists).
            copies: network copies the batch rows are partitioned into.
            copy_seeds: per-copy core-PRNG seeds; copy ``c``'s stream is
                ``LfsrPrng(copy_seeds[c] + core_id + 1)``, exactly the PRNG
                a one-chip-per-copy simulation seeds when that chip's cores
                use ``CoreConfig(seed=copy_seeds[c])``.  Defaults to this
                core's own configured seed for every copy.
        """
        programmed_copies = self.crossbar.copies
        if programmed_copies is not None and programmed_copies != copies:
            raise ValueError(
                f"crossbar is programmed for {programmed_copies} copies, "
                f"cannot begin a {copies}-copy batch"
            )
        if copy_seeds is not None and len(copy_seeds) != copies:
            raise ValueError(
                f"expected {copies} copy seeds, got {len(copy_seeds)}"
            )
        self.reset()
        self.neurons.begin_batch(batch_size, copies=copies)
        self._batch_spike_counts = np.zeros(batch_size, dtype=np.int64)
        self._copies = int(copies)
        # Per-copy PRNGs mark multi-copy execution; a one-copy batch over a
        # programmed copy stack still integrates through the stack.
        if copies > 1 or programmed_copies is not None or copy_seeds is not None:
            seeds = (
                [self.config.seed] * copies if copy_seeds is None else copy_seeds
            )
            self.copy_prngs = [
                LfsrPrng(seed=int(seed) + self.core_id + 1) for seed in seeds
            ]
            self._fused_spike_bound = self._fused_bound(self.config.neuron_config)

    # ------------------------------------------------------------------
    def tick(self, axon_spikes: np.ndarray) -> np.ndarray:
        """Run one tick: integrate axon spikes and produce neuron spikes.

        In history-free (McCulloch-Pitts) mode a neuron only fires when at
        least one ON synapse received a spike this tick; a silent crossbar
        never produces a spike even though its zero weighted sum satisfies
        ``y' >= 0`` when the threshold is zero.
        """
        axon_spikes = np.asarray(axon_spikes)
        neuron_cfg = self.config.neuron_config
        if neuron_cfg.history_free:
            synaptic_input, active_counts = self.crossbar.integrate(
                axon_spikes,
                prng=self.prng,
                stochastic=neuron_cfg.stochastic_synapses,
                return_active_counts=True,
            )
            spikes = self.neurons.step(synaptic_input, active_synapses=active_counts)
        else:
            # Stateful (LIF) mode ignores the gate; skip the counts matmul.
            synaptic_input = self.crossbar.integrate(
                axon_spikes, prng=self.prng, stochastic=neuron_cfg.stochastic_synapses
            )
            spikes = self.neurons.step(synaptic_input)
        self._tick_count += 1
        self._spike_count += int(spikes.sum())
        return spikes

    def tick_batch(self, axon_spikes: np.ndarray) -> np.ndarray:
        """Run one tick for every batch sample at once.

        The crossbar integration is a single ``(batch, axons) @ (axons,
        neurons)`` matmul and the neuron update operates on ``(batch,
        neurons)`` state, so B samples advance in one numpy pass with
        exactly the spikes B scalar runs would produce.

        Args:
            axon_spikes: binary array of shape ``(batch, axons)``.

        Returns:
            binary int8 spike matrix of shape ``(batch, neurons)``.
        """
        if self.neurons.batch_size is None:
            raise RuntimeError("core is in scalar mode; call begin_batch() first")
        neuron_cfg = self.config.neuron_config
        if self.copy_prngs is not None and self._fused_spike_bound is not None:
            # History-free fused rule: the spike decision is read straight
            # off the folded matmul, no membrane update needed (the
            # history-free membrane is reset every tick regardless).
            spikes = self._tick_multicopy_fused(axon_spikes, neuron_cfg)
        else:
            if self.copy_prngs is not None:
                synaptic_input, active_counts = self._integrate_multicopy(
                    axon_spikes, neuron_cfg
                )
            elif neuron_cfg.history_free:
                synaptic_input, active_counts = self.crossbar.integrate_batch(
                    axon_spikes,
                    prng=self.prng,
                    stochastic=neuron_cfg.stochastic_synapses,
                    return_active_counts=True,
                )
            else:
                synaptic_input = self.crossbar.integrate_batch(
                    axon_spikes,
                    prng=self.prng,
                    stochastic=neuron_cfg.stochastic_synapses,
                )
                active_counts = None
            if active_counts is not None:
                spikes = self.neurons.step_batch(
                    synaptic_input, active_synapses=active_counts
                )
            else:
                spikes = self.neurons.step_batch(synaptic_input)
        self._tick_count += 1
        per_sample = spikes.sum(axis=1, dtype=np.int64)
        self._batch_spike_counts += per_sample
        self._spike_count += int(per_sample.sum())
        return spikes

    def _integrate_multicopy(self, axon_spikes: np.ndarray, neuron_cfg):
        """Crossbar integration of one multi-copy tick.

        ``axon_spikes`` is either the full copy-major ``(C*S, axons)``
        matrix or a *shared* ``(S, axons)`` matrix every copy receives
        (external input behind a splitter); the shared form is broadcast
        over the per-copy weight slices without being replicated.

        Returns ``(synaptic_input, active_counts)`` flattened back to
        ``(C*S, neurons)``; ``active_counts`` is ``None`` in stateful mode
        (the LIF update ignores the silent-crossbar gate, so the counts
        matmul is skipped exactly as on the single-copy path).
        """
        volume, total = self._multicopy_volume(axon_spikes)
        result = self.crossbar.integrate_multicopy(
            volume,
            prngs=self.copy_prngs,
            stochastic=neuron_cfg.stochastic_synapses,
            return_active_counts=neuron_cfg.history_free,
            copies=self._copies,
        )
        if neuron_cfg.history_free:
            sums, counts = result
            return sums.reshape(total, -1), counts.reshape(total, -1)
        return result.reshape(total, -1), None

    def _multicopy_volume(self, axon_spikes: np.ndarray):
        """Normalize a multi-copy tick input to what the crossbar expects.

        Returns ``(volume, total_rows)`` where ``volume`` is either the
        shared ``(S, axons)`` matrix untouched, a *grouped*
        ``(G, S, axons)`` volume untouched (block ``g`` feeds the
        consecutive copies ``[g*C/G, (g+1)*C/G)`` — the repeat-folded
        layout), or the full input reshaped to ``(C, S, axons)``.
        """
        axon_spikes = np.asarray(axon_spikes)
        total = self.neurons.batch_size
        samples = total // self._copies
        if axon_spikes.ndim == 3:
            groups = axon_spikes.shape[0]
            if (
                axon_spikes.shape[1] != samples
                or groups < 1
                or self._copies % groups != 0
            ):
                raise ValueError(
                    f"expected a grouped volume of shape (groups, {samples}, "
                    f"axons) with groups dividing {self._copies}, got "
                    f"{axon_spikes.shape}"
                )
            return axon_spikes, total
        if axon_spikes.shape[0] == samples and samples != total:
            return axon_spikes, total  # shared across copies
        if axon_spikes.shape[0] == total:
            return (
                axon_spikes.reshape(self._copies, samples, axon_spikes.shape[1]),
                total,
            )
        raise ValueError(
            f"expected {total} (copy-major) or {samples} (shared) input "
            f"rows, got {axon_spikes.shape[0]}"
        )

    def _fused_bound(self, neuron_cfg) -> Optional[int]:
        """Folded-matmul spike bound for the history-free fast path.

        A history-free tick fires iff ``reset_potential + sums - leak >=
        threshold`` with at least one active synapse, i.e. ``sums >=
        effective`` where ``effective = threshold + leak -
        reset_potential``.  On the folded result that is ``spike <=> mixed
        >= effective * base + 1``: a positive effective threshold needs
        ``sums >= effective`` (which implies an active synapse), and at
        zero the ``+ 1`` is exactly the active-synapse gate (a silent
        crossbar yields ``mixed == 0``).  Not applicable (returns
        ``None``) when the membrane clamp could override the comparison
        (threshold outside the open potential range), the effective
        threshold is negative (a silent tick would satisfy it without any
        active synapse), or the bound leaves float32's exact-integer
        range.
        """
        if not neuron_cfg.history_free:
            return None
        effective = (
            neuron_cfg.threshold + neuron_cfg.leak - neuron_cfg.reset_potential
        )
        if effective < 0:
            return None
        if not (
            constants.POTENTIAL_MIN
            < neuron_cfg.threshold
            <= constants.POTENTIAL_MAX
        ):
            return None
        bound = effective * self.crossbar._fold_base + 1
        return bound if bound < 2**24 else None

    def _tick_multicopy_fused(
        self, axon_spikes: np.ndarray, neuron_cfg
    ) -> np.ndarray:
        """One fused history-free multi-copy tick: matmul -> spikes."""
        volume, total = self._multicopy_volume(axon_spikes)
        mixed, _ = self.crossbar.integrate_multicopy_raw(
            volume,
            prngs=self.copy_prngs,
            stochastic=neuron_cfg.stochastic_synapses,
            copies=self._copies,
        )
        spikes = np.greater_equal(mixed, self._fused_spike_bound)
        # A bool array is one byte of 0/1 — reinterpreting as int8 is free.
        return spikes.view(np.int8).reshape(total, -1)

    def run(self, spike_frames: np.ndarray) -> np.ndarray:
        """Run a sequence of ticks.

        Args:
            spike_frames: array of shape ``(ticks, axons)`` with one binary
                spike vector per tick.

        Returns:
            array of shape ``(ticks, neurons)`` with the output spikes.
        """
        spike_frames = np.asarray(spike_frames)
        if spike_frames.ndim != 2 or spike_frames.shape[1] != self.config.axons:
            raise ValueError(
                f"expected frames of shape (ticks, {self.config.axons}), "
                f"got {spike_frames.shape}"
            )
        outputs = np.zeros((spike_frames.shape[0], self.config.neurons), dtype=np.int8)
        for t in range(spike_frames.shape[0]):
            outputs[t] = self.tick(spike_frames[t])
        return outputs

    # ------------------------------------------------------------------
    def utilization(self) -> dict:
        """Return simple occupancy statistics for reporting."""
        used_axons = int(self.crossbar.connectivity.any(axis=1).sum())
        used_neurons = int(self.crossbar.connectivity.any(axis=0).sum())
        programmed = int(self.crossbar.connectivity.sum())
        return {
            "core_id": self.core_id,
            "used_axons": used_axons,
            "used_neurons": used_neurons,
            "programmed_synapses": programmed,
            "synapse_density": programmed / float(self.config.axons * self.config.neurons),
        }
