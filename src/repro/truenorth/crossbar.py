"""The 256x256 synaptic crossbar of a neuro-synaptic core.

The crossbar stores, per (axon, neuron) pair, a binary connectivity bit.  The
effective synaptic weight of an ON connection is the entry of the neuron's
weight table indexed by the *axon type* of the incoming axon.  For Tea-style
stochastic deployments the crossbar additionally stores a per-connection ON
probability; at every tick each programmed connection is re-sampled by the
core PRNG (spatially static deployments sample the connectivity once at
programming time instead — that choice lives in ``repro.mapping.deploy``).

Two integration entry points are provided: :meth:`SynapticCrossbar.integrate`
evaluates one tick for a single spike vector (the scalar reference path), and
:meth:`SynapticCrossbar.integrate_batch` evaluates the same tick for a whole
batch of samples at once — one ``(batch, axons) @ (axons, neurons)`` matmul —
which is what the batched chip engine in :mod:`repro.truenorth.chip` uses.
In stochastic mode the batch path draws *one* connectivity sample per tick
from the core LFSR, shared by every sample in the batch: that is exactly the
stream each per-sample run sees after a chip reset, so batch and scalar
execution are spike-for-spike identical.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.truenorth import constants
from repro.truenorth.config import validate_axon_types
from repro.truenorth.prng import LfsrPrng


class SynapticCrossbar:
    """Binary-connectivity crossbar with axon-typed weights.

    Args:
        axons: number of rows (input axons) actually used.
        neurons: number of columns (output neurons) actually used.
        weight_table: signed weight per axon type, shared by every neuron
            unless per-neuron tables are programmed via
            :meth:`set_neuron_weight_table`.
    """

    def __init__(
        self,
        axons: int = constants.AXONS_PER_CORE,
        neurons: int = constants.NEURONS_PER_CORE,
        weight_table: Sequence[int] = constants.DEFAULT_WEIGHT_TABLE,
    ):
        if not (0 < axons <= constants.AXONS_PER_CORE):
            raise ValueError(
                f"axons must be in (0, {constants.AXONS_PER_CORE}], got {axons}"
            )
        if not (0 < neurons <= constants.NEURONS_PER_CORE):
            raise ValueError(
                f"neurons must be in (0, {constants.NEURONS_PER_CORE}], got {neurons}"
            )
        if len(weight_table) != constants.AXON_TYPES:
            raise ValueError(
                f"weight_table must have {constants.AXON_TYPES} entries"
            )
        self.axons = axons
        self.neurons = neurons
        #: connectivity[a, n] == True when the synapse from axon a to neuron n is ON
        self.connectivity = np.zeros((axons, neurons), dtype=bool)
        #: Bernoulli ON-probability per synapse, used when stochastic gating is enabled
        self.probabilities = np.zeros((axons, neurons), dtype=float)
        #: axon type per row
        self.axon_types = np.zeros(axons, dtype=np.int8)
        #: weight tables, one row per neuron (columns indexed by axon type)
        self.weight_tables = np.tile(
            np.asarray(weight_table, dtype=np.int64), (neurons, 1)
        )
        #: optional per-connection signed weight override (see
        #: :meth:`set_signed_weights`); ``None`` means axon-type weights apply
        self.signed_weights: Optional[np.ndarray] = None
        #: cached static effective-weight matrix (invalidated on programming)
        self._static_weights: Optional[np.ndarray] = None
        self._static_connectivity_f64: Optional[np.ndarray] = None

    def _invalidate_cache(self) -> None:
        self._static_weights = None
        self._static_connectivity_f64 = None

    # ------------------------------------------------------------------
    # programming interface
    # ------------------------------------------------------------------
    def set_axon_types(self, axon_types: Sequence[int]) -> None:
        """Assign the axon type of every row."""
        axon_types = np.asarray(axon_types, dtype=np.int8)
        if axon_types.shape != (self.axons,):
            raise ValueError(
                f"expected {self.axons} axon types, got shape {axon_types.shape}"
            )
        validate_axon_types(axon_types.tolist())
        self.axon_types = axon_types.copy()
        self._invalidate_cache()

    def set_neuron_weight_table(self, neuron: int, weight_table: Sequence[int]) -> None:
        """Program the 4-entry weight table of a single neuron."""
        if not (0 <= neuron < self.neurons):
            raise IndexError(f"neuron {neuron} outside [0, {self.neurons})")
        if len(weight_table) != constants.AXON_TYPES:
            raise ValueError(
                f"weight_table must have {constants.AXON_TYPES} entries"
            )
        for value in weight_table:
            if not (constants.WEIGHT_MIN <= value <= constants.WEIGHT_MAX):
                raise ValueError(f"weight {value} outside hardware range")
        self.weight_tables[neuron] = np.asarray(weight_table, dtype=np.int64)
        self._invalidate_cache()

    def set_connectivity(self, connectivity: np.ndarray) -> None:
        """Program the full binary connectivity matrix (axons x neurons)."""
        connectivity = np.asarray(connectivity, dtype=bool)
        if connectivity.shape != (self.axons, self.neurons):
            raise ValueError(
                f"expected connectivity of shape {(self.axons, self.neurons)}, "
                f"got {connectivity.shape}"
            )
        self.connectivity = connectivity.copy()
        self._invalidate_cache()

    def set_signed_weights(self, weights: np.ndarray) -> None:
        """Program an explicit signed weight per connection.

        The physical crossbar only realizes ``weight[a, n] =
        weight_table[n][axon_type[a]]``; arbitrary per-connection sign
        patterns require IBM's axon-splitting / neuron-duplication corelets.
        The paper's formulation (Eqs. 5-7) abstracts that machinery and works
        with a per-connection value ``c_i`` directly, so the simulator offers
        this programming mode as the functional equivalent.  Connectivity is
        implied by the non-zero entries.
        """
        weights = np.asarray(weights, dtype=np.int64)
        if weights.shape != (self.axons, self.neurons):
            raise ValueError(
                f"expected weights of shape {(self.axons, self.neurons)}, "
                f"got {weights.shape}"
            )
        if weights.size and (
            weights.min() < constants.WEIGHT_MIN or weights.max() > constants.WEIGHT_MAX
        ):
            raise ValueError("signed weights outside the hardware range")
        self.signed_weights = weights.copy()
        self.connectivity = weights != 0
        self._invalidate_cache()

    def set_probabilities(self, probabilities: np.ndarray) -> None:
        """Program per-synapse Bernoulli ON probabilities (stochastic mode)."""
        probabilities = np.asarray(probabilities, dtype=float)
        if probabilities.shape != (self.axons, self.neurons):
            raise ValueError(
                f"expected probabilities of shape {(self.axons, self.neurons)}, "
                f"got {probabilities.shape}"
            )
        if probabilities.size and (
            probabilities.min() < 0.0 or probabilities.max() > 1.0
        ):
            raise ValueError("probabilities must lie in [0, 1]")
        self.probabilities = probabilities.copy()

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def effective_weights(self, connectivity: Optional[np.ndarray] = None) -> np.ndarray:
        """Return the signed integer weight matrix implied by a connectivity.

        ``weights[a, n] = connectivity[a, n] * weight_tables[n, axon_types[a]]``,
        unless per-connection signed weights were programmed via
        :meth:`set_signed_weights`, in which case those are returned (masked
        by the connectivity).  When ``connectivity`` is omitted the programmed
        (static) connectivity is used.
        """
        if connectivity is None:
            connectivity = self.connectivity
        if self.signed_weights is not None:
            return np.where(connectivity, self.signed_weights, 0).astype(np.int64)
        per_pair = self.weight_tables[:, self.axon_types].T  # (axons, neurons)
        return np.where(connectivity, per_pair, 0).astype(np.int64)

    def integrate(
        self,
        axon_spikes: np.ndarray,
        prng: Optional[LfsrPrng] = None,
        stochastic: bool = False,
        return_active_counts: bool = False,
    ):
        """Compute the synaptic input of every neuron for one tick.

        Args:
            axon_spikes: binary vector of length ``axons`` (1 = spike arrived).
            prng: core PRNG used to gate synapses when ``stochastic`` is True.
            stochastic: when True, each programmed connection is re-sampled
                from its Bernoulli probability this tick; when False the
                static connectivity is used.
            return_active_counts: when True, also return the number of ON
                synapses that received a spike, per neuron — the quantity the
                neuron array uses to gate firing in history-free mode.

        Returns:
            integer vector of length ``neurons`` — the weighted sum each
            neuron receives this tick — or a ``(sums, active_counts)`` pair
            when ``return_active_counts`` is set.
        """
        axon_spikes = np.asarray(axon_spikes)
        if axon_spikes.shape != (self.axons,):
            raise ValueError(
                f"expected spikes of shape ({self.axons},), got {axon_spikes.shape}"
            )
        if stochastic:
            if prng is None:
                raise ValueError("stochastic integration requires a PRNG")
            connectivity = prng.bernoulli_array(self.probabilities)
        else:
            connectivity = self.connectivity
        weights = self.effective_weights(connectivity)
        active = axon_spikes.astype(np.int64)
        sums = active @ weights
        if not return_active_counts:
            return sums
        counts = active @ connectivity.astype(np.int64)
        return sums, counts

    def _static_tensors(self):
        """Cached (weights, connectivity) float64 pair for the static fast path.

        The scalar :meth:`integrate` recomputes the effective weights every
        tick (it is the reference path and must remain trivially auditable);
        the batch path amortizes the ``np.where`` and dtype conversions over
        the whole run instead.  The tensors are float64 so the batched
        matmul takes the BLAS path (numpy integer matmuls run a slow
        fallback loop): every product is an integer with ``|w| <= 255`` and
        at most 256 terms per sum, so all partial sums stay integers far
        below 2**53 and the float64 result casts back to int64 exactly.
        The cache is invalidated by every programming method.
        """
        if self._static_weights is None:
            self._static_weights = self.effective_weights(self.connectivity).astype(
                np.float64
            )
            self._static_connectivity_f64 = self.connectivity.astype(np.float64)
        return self._static_weights, self._static_connectivity_f64

    def integrate_batch(
        self,
        axon_spikes: np.ndarray,
        prng: Optional[LfsrPrng] = None,
        stochastic: bool = False,
        return_active_counts: bool = False,
    ):
        """Batched :meth:`integrate`: one tick for ``batch`` samples at once.

        Args:
            axon_spikes: binary array of shape ``(batch, axons)``.
            prng: core PRNG used to gate synapses when ``stochastic`` is True.
                One connectivity sample is drawn *per tick* and shared by the
                whole batch — the identical LFSR stream every per-sample run
                consumes after a chip reset, keeping batch execution
                spike-for-spike equivalent to the scalar path.
            stochastic: re-sample the connectivity from the programmed
                Bernoulli probabilities this tick.
            return_active_counts: also return the per-sample count of ON
                synapses that received a spike, per neuron.

        Returns:
            integer array of shape ``(batch, neurons)`` — or a
            ``(sums, active_counts)`` pair of such arrays when
            ``return_active_counts`` is set.
        """
        axon_spikes = np.asarray(axon_spikes)
        if axon_spikes.ndim != 2 or axon_spikes.shape[1] != self.axons:
            raise ValueError(
                f"expected spikes of shape (batch, {self.axons}), "
                f"got {axon_spikes.shape}"
            )
        if stochastic:
            if prng is None:
                raise ValueError("stochastic integration requires a PRNG")
            connectivity = prng.bernoulli_array(self.probabilities)
            weights = self.effective_weights(connectivity).astype(np.float64)
            connectivity_f64 = connectivity.astype(np.float64)
        else:
            weights, connectivity_f64 = self._static_tensors()
        # Float64 matmuls take the BLAS path and are exact for these
        # small-integer operands (see _static_tensors); cast back to int64.
        active = axon_spikes.astype(np.float64)
        sums = (active @ weights).astype(np.int64)
        if not return_active_counts:
            return sums
        counts = (active @ connectivity_f64).astype(np.int64)
        return sums, counts
