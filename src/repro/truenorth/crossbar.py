"""The 256x256 synaptic crossbar of a neuro-synaptic core.

The crossbar stores, per (axon, neuron) pair, a binary connectivity bit.  The
effective synaptic weight of an ON connection is the entry of the neuron's
weight table indexed by the *axon type* of the incoming axon.  For Tea-style
stochastic deployments the crossbar additionally stores a per-connection ON
probability; at every tick each programmed connection is re-sampled by the
core PRNG (spatially static deployments sample the connectivity once at
programming time instead — that choice lives in ``repro.mapping.deploy``).

Three integration entry points are provided: :meth:`SynapticCrossbar.integrate`
evaluates one tick for a single spike vector (the scalar reference path),
:meth:`SynapticCrossbar.integrate_batch` evaluates the same tick for a whole
batch of samples at once — one ``(batch, axons) @ (axons, neurons)`` matmul —
which is what the batched chip engine in :mod:`repro.truenorth.chip` uses,
and :meth:`SynapticCrossbar.integrate_multicopy` evaluates the tick for
``copies`` independently programmed network copies side by side: the
per-copy signed weights are stacked into one ``(copies, axons, neurons)``
tensor (:meth:`set_copy_signed_weights`) and a ``(copies, samples, axons)``
spike volume advances in one batched ``(C, S, A) @ (C, A, N)`` matmul.
In stochastic mode the batch path draws *one* connectivity sample per tick
from the core LFSR, shared by every sample in the batch: that is exactly the
stream each per-sample run sees after a chip reset, so batch and scalar
execution are spike-for-spike identical.  The multi-copy path instead takes
one PRNG *per copy* and draws one connectivity sample per (copy, tick) —
the same streams ``copies`` independent one-chip-per-copy simulations
would consume, which is what keeps multi-copy stochastic-synapse sweeps
bit-identical to the per-copy loop.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.truenorth import constants
from repro.truenorth.config import validate_axon_types
from repro.truenorth.prng import LfsrPrng


class SynapticCrossbar:
    """Binary-connectivity crossbar with axon-typed weights.

    Args:
        axons: number of rows (input axons) actually used.
        neurons: number of columns (output neurons) actually used.
        weight_table: signed weight per axon type, shared by every neuron
            unless per-neuron tables are programmed via
            :meth:`set_neuron_weight_table`.
    """

    def __init__(
        self,
        axons: int = constants.AXONS_PER_CORE,
        neurons: int = constants.NEURONS_PER_CORE,
        weight_table: Sequence[int] = constants.DEFAULT_WEIGHT_TABLE,
    ):
        if not (0 < axons <= constants.AXONS_PER_CORE):
            raise ValueError(
                f"axons must be in (0, {constants.AXONS_PER_CORE}], got {axons}"
            )
        if not (0 < neurons <= constants.NEURONS_PER_CORE):
            raise ValueError(
                f"neurons must be in (0, {constants.NEURONS_PER_CORE}], got {neurons}"
            )
        if len(weight_table) != constants.AXON_TYPES:
            raise ValueError(
                f"weight_table must have {constants.AXON_TYPES} entries"
            )
        self.axons = axons
        self.neurons = neurons
        #: connectivity[a, n] == True when the synapse from axon a to neuron n is ON
        self.connectivity = np.zeros((axons, neurons), dtype=np.bool_)
        #: Bernoulli ON-probability per synapse, used when stochastic gating is enabled
        self.probabilities = np.zeros((axons, neurons), dtype=np.float64)
        #: axon type per row
        self.axon_types = np.zeros(axons, dtype=np.int8)
        #: weight tables, one row per neuron (columns indexed by axon type)
        self.weight_tables = np.tile(
            np.asarray(weight_table, dtype=np.int64), (neurons, 1)
        )
        #: optional per-connection signed weight override (see
        #: :meth:`set_signed_weights`); ``None`` means axon-type weights apply
        self.signed_weights: Optional[np.ndarray] = None
        #: stacked per-copy programming for the multi-copy engine; ``None``
        #: means the crossbar holds a single copy (see
        #: :meth:`set_copy_signed_weights` / :meth:`set_copy_probabilities`)
        self.copies: Optional[int] = None
        self.copy_signed_weights: Optional[np.ndarray] = None
        self.copy_connectivity: Optional[np.ndarray] = None
        self.copy_probabilities: Optional[np.ndarray] = None
        #: largest |weight| of the copy stack, recorded at programming time
        #: (a by-product of the hardware-range check)
        self._copy_magnitude: Optional[int] = None
        #: cached static effective-weight matrix (invalidated on programming)
        self._static_weights: Optional[np.ndarray] = None
        self._static_connectivity_f64: Optional[np.ndarray] = None
        self._static_copy_weights: Optional[np.ndarray] = None
        self._static_copy_folded: Optional[np.ndarray] = None
        #: grouped-input GEMM layouts derived from the static stacks, keyed
        #: by (folded, groups, copies) — see :meth:`_grouped_layout`
        self._static_grouped: Dict[Tuple[bool, int, int], np.ndarray] = {}
        #: power-of-two fold base: folded = weight * base + connectivity,
        #: decodable because active-synapse counts are < base (<= axons).
        self._fold_base = 1 << int(np.ceil(np.log2(self.axons + 1)))

    def _invalidate_cache(self) -> None:
        self._static_weights = None
        self._static_connectivity_f64 = None
        self._static_copy_weights = None
        self._static_copy_folded = None
        self._static_grouped = {}

    def _exact_dtype(self, max_abs_entry: int) -> type:
        """Smallest float dtype whose matmuls stay exact for this crossbar.

        Every operand is an integer, so a float matmul is exact as long as
        every partial sum (at most ``axons`` addends of magnitude
        ``max_abs_entry``) stays below the mantissa bound — 2**24 for
        float32, 2**53 for float64.  Float32 halves the GEMM time and the
        cast back to int64 recovers the exact integers either way.
        """
        return (
            np.float32
            if max_abs_entry * self.axons < 2**24
            else np.float64
        )

    def _max_magnitude(self) -> int:
        """Largest |weight| the programmed synapses can produce.

        Tightens the :meth:`_exact_dtype` bound from the hardware ceiling
        (``WEIGHT_MAX``) to what this crossbar actually holds, which is what
        keeps the *folded* stacks (entries up to ``magnitude * base + 1``)
        on the float32 GEMM path for realistically quantized weights.
        """
        if self.copy_signed_weights is not None:
            if self._copy_magnitude is not None:
                return self._copy_magnitude
            return int(np.abs(self.copy_signed_weights).max(initial=0))
        if self.signed_weights is not None:
            return int(np.abs(self.signed_weights).max(initial=0))
        return int(np.abs(self.weight_tables).max(initial=0))

    # ------------------------------------------------------------------
    # programming interface
    # ------------------------------------------------------------------
    def set_axon_types(self, axon_types: Sequence[int]) -> None:
        """Assign the axon type of every row."""
        axon_types = np.asarray(axon_types, dtype=np.int8)
        if axon_types.shape != (self.axons,):
            raise ValueError(
                f"expected {self.axons} axon types, got shape {axon_types.shape}"
            )
        validate_axon_types(axon_types.tolist())
        self.axon_types = axon_types.copy()
        self._invalidate_cache()

    def set_neuron_weight_table(self, neuron: int, weight_table: Sequence[int]) -> None:
        """Program the 4-entry weight table of a single neuron."""
        if not (0 <= neuron < self.neurons):
            raise IndexError(f"neuron {neuron} outside [0, {self.neurons})")
        if len(weight_table) != constants.AXON_TYPES:
            raise ValueError(
                f"weight_table must have {constants.AXON_TYPES} entries"
            )
        for value in weight_table:
            if not (constants.WEIGHT_MIN <= value <= constants.WEIGHT_MAX):
                raise ValueError(f"weight {value} outside hardware range")
        self.weight_tables[neuron] = np.asarray(weight_table, dtype=np.int64)
        self._invalidate_cache()

    def set_connectivity(self, connectivity: np.ndarray) -> None:
        """Program the full binary connectivity matrix (axons x neurons)."""
        connectivity = np.asarray(connectivity, dtype=np.bool_)
        if connectivity.shape != (self.axons, self.neurons):
            raise ValueError(
                f"expected connectivity of shape {(self.axons, self.neurons)}, "
                f"got {connectivity.shape}"
            )
        self.connectivity = connectivity.copy()
        self._invalidate_cache()

    def set_signed_weights(self, weights: np.ndarray) -> None:
        """Program an explicit signed weight per connection.

        The physical crossbar only realizes ``weight[a, n] =
        weight_table[n][axon_type[a]]``; arbitrary per-connection sign
        patterns require IBM's axon-splitting / neuron-duplication corelets.
        The paper's formulation (Eqs. 5-7) abstracts that machinery and works
        with a per-connection value ``c_i`` directly, so the simulator offers
        this programming mode as the functional equivalent.  Connectivity is
        implied by the non-zero entries.
        """
        weights = np.asarray(weights, dtype=np.int64)
        if weights.shape != (self.axons, self.neurons):
            raise ValueError(
                f"expected weights of shape {(self.axons, self.neurons)}, "
                f"got {weights.shape}"
            )
        if weights.size and (
            weights.min() < constants.WEIGHT_MIN or weights.max() > constants.WEIGHT_MAX
        ):
            raise ValueError("signed weights outside the hardware range")
        self.signed_weights = weights.copy()
        self.connectivity = weights != 0
        self._invalidate_cache()

    def set_probabilities(self, probabilities: np.ndarray) -> None:
        """Program per-synapse Bernoulli ON probabilities (stochastic mode)."""
        probabilities = np.asarray(probabilities, dtype=np.float64)
        if probabilities.shape != (self.axons, self.neurons):
            raise ValueError(
                f"expected probabilities of shape {(self.axons, self.neurons)}, "
                f"got {probabilities.shape}"
            )
        if probabilities.size and (
            probabilities.min() < 0.0 or probabilities.max() > 1.0
        ):
            raise ValueError("probabilities must lie in [0, 1]")
        self.probabilities = probabilities.copy()

    def set_copy_signed_weights(self, weights: np.ndarray) -> None:
        """Program a stack of per-copy signed weight matrices.

        ``weights[c]`` is the per-connection signed weight matrix of network
        copy ``c`` (the multi-copy analogue of :meth:`set_signed_weights`,
        same hardware-range validation).  The stack is what lets one
        physical crossbar simulate ``copies`` independently sampled copies
        side by side through :meth:`integrate_multicopy`.

        The stack is adopted, not defensively copied — a repeat-folded image
        programs ``repeats * copies`` matrices per core and the extra pass
        over the stack is pure programming traffic — so the caller must not
        mutate it afterwards.
        """
        weights = np.asarray(weights, dtype=np.int64)
        if weights.ndim != 3 or weights.shape[1:] != (self.axons, self.neurons):
            raise ValueError(
                f"expected weights of shape (copies, {self.axons}, "
                f"{self.neurons}), got {weights.shape}"
            )
        if weights.shape[0] < 1:
            raise ValueError("at least one copy is required")
        magnitude = 0
        if weights.size:
            low, high = int(weights.min()), int(weights.max())
            if low < constants.WEIGHT_MIN or high > constants.WEIGHT_MAX:
                raise ValueError("signed weights outside the hardware range")
            magnitude = max(-low, high, 0)
        if self.copy_probabilities is not None and self.copy_probabilities.shape[
            0
        ] != weights.shape[0]:
            raise ValueError(
                f"copy count {weights.shape[0]} does not match the programmed "
                f"probability stack ({self.copy_probabilities.shape[0]} copies)"
            )
        self.copies = int(weights.shape[0])
        self.copy_signed_weights = weights
        self.copy_connectivity = weights != 0
        # The range check above already visited every entry, so the stack's
        # magnitude (which picks the GEMM dtype) is free here.
        self._copy_magnitude = magnitude
        self._invalidate_cache()

    def set_copy_probabilities(self, probabilities: np.ndarray) -> None:
        """Program per-copy Bernoulli ON-probability stacks (stochastic mode)."""
        probabilities = np.asarray(probabilities, dtype=np.float64)
        if probabilities.ndim != 3 or probabilities.shape[1:] != (
            self.axons,
            self.neurons,
        ):
            raise ValueError(
                f"expected probabilities of shape (copies, {self.axons}, "
                f"{self.neurons}), got {probabilities.shape}"
            )
        if probabilities.shape[0] < 1:
            raise ValueError("at least one copy is required")
        if probabilities.size and (
            probabilities.min() < 0.0 or probabilities.max() > 1.0
        ):
            raise ValueError("probabilities must lie in [0, 1]")
        if self.copy_signed_weights is not None and self.copy_signed_weights.shape[
            0
        ] != probabilities.shape[0]:
            raise ValueError(
                f"copy count {probabilities.shape[0]} does not match the "
                f"programmed weight stack "
                f"({self.copy_signed_weights.shape[0]} copies)"
            )
        self.copies = int(probabilities.shape[0])
        self.copy_probabilities = probabilities.copy()

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def _reject_multicopy_programming(self) -> None:
        """Single-copy integration on a copy stack would silently read the
        (empty) single-copy programming and return well-shaped zeros."""
        if self.copies is not None:
            raise ValueError(
                f"crossbar carries {self.copies}-copy programming; use "
                "integrate_multicopy (a multi-copy chip image has no "
                "single-copy connectivity to integrate through)"
            )

    def effective_weights(self, connectivity: Optional[np.ndarray] = None) -> np.ndarray:
        """Return the signed integer weight matrix implied by a connectivity.

        ``weights[a, n] = connectivity[a, n] * weight_tables[n, axon_types[a]]``,
        unless per-connection signed weights were programmed via
        :meth:`set_signed_weights`, in which case those are returned (masked
        by the connectivity).  When ``connectivity`` is omitted the programmed
        (static) connectivity is used.
        """
        if connectivity is None:
            connectivity = self.connectivity
        if self.signed_weights is not None:
            return np.where(connectivity, self.signed_weights, 0).astype(np.int64)
        per_pair = self.weight_tables[:, self.axon_types].T  # (axons, neurons)
        return np.where(connectivity, per_pair, 0).astype(np.int64)

    def integrate(
        self,
        axon_spikes: np.ndarray,
        prng: Optional[LfsrPrng] = None,
        stochastic: bool = False,
        return_active_counts: bool = False,
    ):
        """Compute the synaptic input of every neuron for one tick.

        Args:
            axon_spikes: binary vector of length ``axons`` (1 = spike arrived).
            prng: core PRNG used to gate synapses when ``stochastic`` is True.
            stochastic: when True, each programmed connection is re-sampled
                from its Bernoulli probability this tick; when False the
                static connectivity is used.
            return_active_counts: when True, also return the number of ON
                synapses that received a spike, per neuron — the quantity the
                neuron array uses to gate firing in history-free mode.

        Returns:
            integer vector of length ``neurons`` — the weighted sum each
            neuron receives this tick — or a ``(sums, active_counts)`` pair
            when ``return_active_counts`` is set.
        """
        axon_spikes = np.asarray(axon_spikes)
        if axon_spikes.shape != (self.axons,):
            raise ValueError(
                f"expected spikes of shape ({self.axons},), got {axon_spikes.shape}"
            )
        self._reject_multicopy_programming()
        if stochastic:
            if prng is None:
                raise ValueError("stochastic integration requires a PRNG")
            connectivity = prng.bernoulli_array(self.probabilities)
        else:
            connectivity = self.connectivity
        weights = self.effective_weights(connectivity)
        active = axon_spikes.astype(np.int64)
        sums = active @ weights
        if not return_active_counts:
            return sums
        counts = active @ connectivity.astype(np.int64)
        return sums, counts

    def _static_tensors(self):
        """Cached (weights, connectivity) float64 pair for the static fast path.

        The scalar :meth:`integrate` recomputes the effective weights every
        tick (it is the reference path and must remain trivially auditable);
        the batch path amortizes the ``np.where`` and dtype conversions over
        the whole run instead.  The tensors are float64 so the batched
        matmul takes the BLAS path (numpy integer matmuls run a slow
        fallback loop): every product is an integer with ``|w| <= 255`` and
        at most 256 terms per sum, so all partial sums stay integers far
        below 2**53 and the float64 result casts back to int64 exactly.
        The cache is invalidated by every programming method.
        """
        if self._static_weights is None:
            self._static_weights = self.effective_weights(self.connectivity).astype(
                np.float64
            )
            self._static_connectivity_f64 = self.connectivity.astype(np.float64)
        return self._static_weights, self._static_connectivity_f64

    def integrate_batch(
        self,
        axon_spikes: np.ndarray,
        prng: Optional[LfsrPrng] = None,
        stochastic: bool = False,
        return_active_counts: bool = False,
    ):
        """Batched :meth:`integrate`: one tick for ``batch`` samples at once.

        Args:
            axon_spikes: binary array of shape ``(batch, axons)``.
            prng: core PRNG used to gate synapses when ``stochastic`` is True.
                One connectivity sample is drawn *per tick* and shared by the
                whole batch — the identical LFSR stream every per-sample run
                consumes after a chip reset, keeping batch execution
                spike-for-spike equivalent to the scalar path.
            stochastic: re-sample the connectivity from the programmed
                Bernoulli probabilities this tick.
            return_active_counts: also return the per-sample count of ON
                synapses that received a spike, per neuron.

        Returns:
            integer array of shape ``(batch, neurons)`` — or a
            ``(sums, active_counts)`` pair of such arrays when
            ``return_active_counts`` is set.
        """
        axon_spikes = np.asarray(axon_spikes)
        if axon_spikes.ndim != 2 or axon_spikes.shape[1] != self.axons:
            raise ValueError(
                f"expected spikes of shape (batch, {self.axons}), "
                f"got {axon_spikes.shape}"
            )
        self._reject_multicopy_programming()
        if stochastic:
            if prng is None:
                raise ValueError("stochastic integration requires a PRNG")
            connectivity = prng.bernoulli_array(self.probabilities)
            weights = self.effective_weights(connectivity).astype(np.float64)
            connectivity_f64 = connectivity.astype(np.float64)
        else:
            weights, connectivity_f64 = self._static_tensors()
        # Float64 matmuls take the BLAS path and are exact for these
        # small-integer operands (see _static_tensors); cast back to int64.
        active = axon_spikes.astype(np.float64)
        sums = (active @ weights).astype(np.int64)
        if not return_active_counts:
            return sums
        counts = (active @ connectivity_f64).astype(np.int64)
        return sums, counts

    def _copy_effective_weights(self, copy: int, connectivity: np.ndarray) -> np.ndarray:
        """Signed weights of one programmed copy under a given connectivity."""
        if self.copy_signed_weights is not None:
            return np.where(connectivity, self.copy_signed_weights[copy], 0).astype(
                np.int64
            )
        # No per-copy weight stack: every copy shares the single-copy
        # programming (the stochastic-synapse deployment case, where copies
        # differ only by their PRNG streams).
        return self.effective_weights(connectivity)

    def _static_plain_stack(self, copies: int) -> np.ndarray:
        """Cached ``(copies, axons, neurons)`` static weight stack.

        The stack's float dtype is the smallest exact one
        (:meth:`_exact_dtype` with ``|weight| <= 255``, which always admits
        float32).  Shared single-copy programming is broadcast, not copied.
        """
        if (
            self._static_copy_weights is not None
            and self._static_copy_weights.shape[0] != copies
        ):
            # Shared-programming runs may restart with a different copy
            # count; the cache keys on it.
            self._static_copy_weights = None
        if self._static_copy_weights is None:
            dtype = self._exact_dtype(constants.WEIGHT_MAX)
            if self.copy_signed_weights is not None:
                # The static connectivity is derived from the weight stack
                # (weights != 0), so masking is a no-op: the stack is its
                # own effective-weight tensor.
                self._static_copy_weights = self.copy_signed_weights.astype(dtype)
            else:
                weights = self.effective_weights(self.connectivity).astype(dtype)
                self._static_copy_weights = np.broadcast_to(
                    weights, (copies,) + weights.shape
                )
        return self._static_copy_weights

    def _static_folded_stack(self, copies: int) -> np.ndarray:
        """Cached ``weights * fold_base + connectivity`` stack.

        One matmul against this folded stack yields both the weighted sums
        and the active-synapse counts (``mixed = sums * base + counts``,
        ``counts < base``), halving the multi-copy GEMM work of the
        history-free path.  The dtype is the smallest exact one for entries
        up to ``magnitude * base + 1`` (the *programmed* magnitude, see
        :meth:`_max_magnitude`) — float32 whenever the partial sums stay
        below 2**24, float64 otherwise.
        """
        if (
            self._static_copy_folded is not None
            and self._static_copy_folded.shape[0] != copies
        ):
            self._static_copy_folded = None
        if self._static_copy_folded is None:
            base = self._fold_base
            dtype = self._exact_dtype(self._max_magnitude() * base + 1)
            if self.copy_signed_weights is not None:
                # Build in the target float dtype (exact: every intermediate
                # is an integer below the mantissa bound) rather than via an
                # int64 temporary twice the stack's size.
                folded = self.copy_signed_weights.astype(dtype)
                folded *= base
                folded += self.copy_connectivity
                self._static_copy_folded = folded
            else:
                weights = self.effective_weights(self.connectivity)
                folded = (weights * base + self.connectivity).astype(dtype)
                self._static_copy_folded = np.broadcast_to(
                    folded, (copies,) + folded.shape
                )
        return self._static_copy_folded

    def integrate_multicopy(
        self,
        axon_spikes: np.ndarray,
        prngs: Optional[Sequence[LfsrPrng]] = None,
        stochastic: bool = False,
        return_active_counts: bool = False,
        copies: Optional[int] = None,
    ):
        """One tick for ``copies`` programmed copies × ``samples`` each.

        Args:
            axon_spikes: binary array of shape ``(copies, samples, axons)``,
                or ``(samples, axons)`` for *shared* input — the same spikes
                fanned out to every copy (a hardware splitter), which skips
                materializing ``copies`` replicas: the batched matmul
                broadcasts the one input block over the per-copy weight
                slices.  A ``(groups, samples, axons)`` volume with
                ``copies % groups == 0`` is *grouped* shared input: block
                ``g`` is fanned out to the consecutive copies
                ``[g * copies/groups, (g+1) * copies/groups)`` — the layout
                the repeat-folded sweep engine uses, one input block per
                folded repeat.  Copy ``c`` integrates through its own
                programmed weight slice (:meth:`set_copy_signed_weights`),
                or through the shared single-copy programming when no stack
                was programmed.
            prngs: one PRNG per copy, required when ``stochastic`` — copy
                ``c`` draws its connectivity sample from ``prngs[c]`` exactly
                as a one-chip-per-copy simulation would from that chip's core
                PRNG, keeping the per-copy LFSR streams bit-identical.
            stochastic: re-sample each copy's connectivity this tick.
            return_active_counts: also return per-(copy, sample) counts of ON
                synapses that received a spike.
            copies: number of copies; required with shared 2-D input,
                otherwise inferred from (and checked against) the volume.

        Returns:
            integer array of shape ``(copies, samples, neurons)`` — or a
            ``(sums, active_counts)`` pair when ``return_active_counts``.
        """
        axon_spikes = np.asarray(axon_spikes)
        groups, copies = self._validate_multicopy_volume(axon_spikes, copies)
        mixed = self._multicopy_matmul(
            axon_spikes,
            groups,
            copies,
            prngs,
            stochastic,
            folded=return_active_counts,
        )
        mixed = mixed.astype(np.int64)
        if not return_active_counts:
            return mixed
        # mixed = sums * base + counts with counts in [0, base); the
        # arithmetic shift floors correctly for negative sums.
        base = self._fold_base
        shift = base.bit_length() - 1
        return mixed >> shift, mixed & (base - 1)

    def integrate_multicopy_raw(
        self,
        axon_spikes: np.ndarray,
        prngs: Optional[Sequence[LfsrPrng]] = None,
        stochastic: bool = False,
        copies: Optional[int] = None,
    ) -> Tuple[np.ndarray, int]:
        """Folded multi-copy tick without the integer decode.

        Returns ``(mixed, base)`` where ``mixed`` is the float
        ``(copies, samples, neurons)`` result of the folded matmul —
        integer-valued and exact, ``mixed = sums * base + counts`` — for
        callers that can act on it directly (the history-free fused spike
        rule ``spike <=> mixed >= (threshold + leak - reset_potential) *
        base + 1`` in :meth:`NeurosynapticCore._fused_bound`, valid because
        a silent crossbar always yields ``mixed == 0``).
        """
        axon_spikes = np.asarray(axon_spikes)
        groups, copies = self._validate_multicopy_volume(axon_spikes, copies)
        mixed = self._multicopy_matmul(
            axon_spikes, groups, copies, prngs, stochastic, folded=True
        )
        return mixed, self._fold_base

    def _validate_multicopy_volume(
        self, axon_spikes: np.ndarray, copies: Optional[int]
    ) -> Tuple[Optional[int], int]:
        """Check a multi-copy tick volume and return ``(groups, copies)``.

        ``groups`` encodes how the volume maps onto the copy axis: ``None``
        for a full per-copy ``(copies, samples, axons)`` volume, ``1`` for
        shared ``(samples, axons)`` input fanned out to every copy, and
        ``G`` for *grouped* shared input ``(G, samples, axons)`` where each
        of the ``G`` blocks is fanned out to a consecutive run of
        ``copies // G`` copies (the layout the repeat-folded sweep engine
        uses: repeat ``r`` owns copies ``[r*C, (r+1)*C)`` and contributes
        input block ``r``).  Shared and grouped input need an explicit copy
        count; a full volume carries its own, which an explicit ``copies``
        must match.  Anything else is a typed error rather than an opaque
        downstream matmul failure.
        """
        if axon_spikes.ndim == 2:
            if copies is None:
                raise ValueError(
                    "shared (samples, axons) input requires an explicit "
                    "copies count"
                )
            if axon_spikes.shape[1] != self.axons:
                raise ValueError(
                    f"expected spikes of shape (samples, {self.axons}), "
                    f"got {axon_spikes.shape}"
                )
            return 1, int(copies)
        if axon_spikes.ndim == 3 and axon_spikes.shape[2] == self.axons:
            if copies is None:
                copies = axon_spikes.shape[0]
            groups = int(axon_spikes.shape[0])
            if groups == copies:
                return None, int(copies)
            if groups >= 1 and copies % groups == 0:
                return groups, int(copies)
            raise ValueError(
                f"volume carries {groups} input groups, which neither "
                f"matches nor divides the copy count {copies}"
            )
        raise ValueError(
            f"expected spikes of shape (copies, samples, {self.axons}), "
            f"got {axon_spikes.shape}"
        )

    def _multicopy_matmul(
        self,
        axon_spikes: np.ndarray,
        groups: Optional[int],
        copies: int,
        prngs: Optional[Sequence[LfsrPrng]],
        stochastic: bool,
        folded: bool,
    ) -> np.ndarray:
        """The one batched ``(C, S, A) @ (C, A, N)`` matmul of a tick.

        Exact for these small-integer operands (see :meth:`_exact_dtype`).
        Shared input (``groups == 1``) is converted once and broadcast over
        the copy axis; grouped input (``1 < groups < copies``) broadcasts
        each block over its run of ``copies // groups`` weight slices.
        Every layout decomposes into the identical per-copy
        ``(S, A) @ (A, N)`` GEMMs, so all three are bit-identical — grouped
        and shared input merely skip materializing input replicas.
        """
        if self.copies is not None and self.copies != copies:
            raise ValueError(
                f"crossbar is programmed for {self.copies} copies, "
                f"got a {copies}-copy spike volume"
            )
        base = self._fold_base
        if stochastic:
            if prngs is None or len(prngs) != copies:
                raise ValueError(
                    f"stochastic multi-copy integration requires one PRNG per "
                    f"copy ({copies}), got "
                    f"{None if prngs is None else len(prngs)}"
                )
            magnitude = self._max_magnitude()
            dtype = self._exact_dtype(
                magnitude * base + 1 if folded else magnitude
            )
            stacked = np.empty((copies, self.axons, self.neurons), dtype=dtype)
            for c in range(copies):
                if self.copy_probabilities is not None:
                    probabilities = self.copy_probabilities[c]
                else:
                    probabilities = self.probabilities
                sample = prngs[c].bernoulli_array(probabilities)
                weights_c = self._copy_effective_weights(c, sample)
                if folded:
                    stacked[c] = weights_c * base + sample
                else:
                    stacked[c] = weights_c
        elif folded:
            stacked = self._static_folded_stack(copies)
        else:
            stacked = self._static_plain_stack(copies)
        active = axon_spikes.astype(stacked.dtype)
        if groups is None:
            return np.matmul(active, stacked)
        if groups == 1:
            if active.ndim == 2:
                active = active[None]
            return np.matmul(active, stacked)
        # Grouped shared input: block g feeds the consecutive copies
        # [g * per_group, (g + 1) * per_group).
        per_group = copies // groups
        samples = active.shape[1]
        neurons = stacked.shape[-1]
        if stacked.ndim == 3 and stacked.strides[0] == 0:
            # Broadcast static stack (shared single-copy programming):
            # reshaping it would materialize `copies` weight replicas, so
            # matmul one slice per group and broadcast the small output.
            out = np.matmul(active[:, None], stacked[:1])  # (G, 1, S, N)
            out = np.broadcast_to(out, (groups, per_group) + out.shape[2:])
            return out.reshape(copies, samples, neurons)
        # Fold each group's run of copies into the GEMM's output axis:
        # one (S, A) @ (A, K * N) slice per group instead of K tiny
        # (S, A) @ (A, N) slices per group, which is what keeps BLAS fed
        # when repeats are stacked onto the copy axis (G = repeats).
        layout = self._grouped_layout(
            stacked, groups, cache_key=None if stochastic else folded
        )
        out = np.matmul(active, layout)  # (G, S, K * N)
        out = out.reshape(groups, samples, per_group, neurons)
        return out.transpose(0, 2, 1, 3).reshape(copies, samples, neurons)

    def _grouped_layout(
        self, stacked: np.ndarray, groups: int, cache_key: Optional[bool]
    ) -> np.ndarray:
        """``(G, A, K * N)`` GEMM layout of a ``(G * K, A, N)`` stack.

        ``layout[g, a, k * N + n] == stacked[g * K + k, a, n]`` — the same
        per-copy dot products, so grouped results stay bit-identical — with
        each group's ``K`` weight slices side by side so the grouped matmul
        runs ``G`` well-shaped GEMMs.  Static stacks cache their layout
        under ``cache_key`` (their folded flag; dropped on reprogramming);
        stochastic per-tick stacks pass ``None`` and rebuild each call.
        """
        copies, axons, neurons = stacked.shape
        per_group = copies // groups
        if cache_key is not None:
            key = (cache_key, groups, copies)
            cached = self._static_grouped.get(key)
            if cached is not None:
                return cached
        layout = stacked.reshape(groups, per_group, axons, neurons).transpose(
            0, 2, 1, 3
        ).reshape(groups, axons, per_group * neurons)
        if cache_key is not None:
            self._static_grouped[key] = layout
        return layout
