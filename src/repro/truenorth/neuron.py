"""Digital neuron models of the TrueNorth core.

Two models are provided:

* :class:`McCullochPittsNeuron` — the history-free special case used
  throughout the paper (Eqs. 3-4): the membrane potential is recomputed from
  scratch every tick, compared against a threshold, and always reset.
* :class:`LifNeuron` — a configurable leaky integrate-and-fire neuron that
  keeps its membrane potential across ticks, supporting the more general
  deployments TrueNorth allows (rate-code accumulation over long windows).

Both operate on integer arithmetic with saturation at the architectural
membrane-potential range, matching the digital hardware.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.truenorth import constants
from repro.truenorth.config import NeuronConfig


def _saturate(value: int) -> int:
    """Clamp a membrane potential to the hardware register range."""
    return int(
        min(max(value, constants.POTENTIAL_MIN), constants.POTENTIAL_MAX)
    )


class McCullochPittsNeuron:
    """History-free threshold neuron (paper Eqs. 3-4).

    Each call to :meth:`step` receives the synaptic input already summed by
    the crossbar, subtracts the leak, thresholds, and resets.  The neuron
    keeps no state between ticks, which is exactly the simplification the
    paper adopts to make the stochastic analysis tractable.
    """

    def __init__(self, config: Optional[NeuronConfig] = None):
        self.config = config or NeuronConfig()
        self._potential = 0

    @property
    def potential(self) -> int:
        """Membrane potential after the most recent evaluation (always reset)."""
        return self._potential

    def reset(self) -> None:
        """Clear the membrane potential."""
        self._potential = self.config.reset_potential

    def step(self, synaptic_input: int, active_synapses: Optional[int] = None) -> int:
        """Evaluate one tick and return 1 if the neuron spikes, else 0.

        Args:
            synaptic_input: crossbar-summed input for this tick.
            active_synapses: number of ON synapses whose axon spiked this
                tick.  When provided, a tick with zero active synapses never
                fires — the hardware rule for the history-free mode, where a
                silent crossbar must not be mistaken for a zero-valued
                weighted sum that satisfies ``y' >= 0``.
        """
        y = _saturate(int(synaptic_input) - self.config.leak)
        spike = 1 if y >= self.config.threshold else 0
        if active_synapses is not None and int(active_synapses) == 0:
            spike = 0
        self._potential = self.config.reset_potential
        return spike


class LifNeuron:
    """Leaky integrate-and-fire neuron with persistent membrane potential.

    The update per tick is::

        V <- V + synaptic_input - leak
        if V >= threshold: spike, V <- reset_potential
        elif V < floor:    V <- floor          (negative saturation)

    With ``history_free=True`` in the config this collapses to the
    McCulloch-Pitts behaviour (potential cleared every tick), which lets the
    same class back both neuron modes in the core simulator.
    """

    def __init__(self, config: Optional[NeuronConfig] = None):
        self.config = config or NeuronConfig()
        self._potential = int(self.config.reset_potential)

    @property
    def potential(self) -> int:
        """Current membrane potential."""
        return self._potential

    def reset(self) -> None:
        """Reset the membrane potential to the configured reset value."""
        self._potential = int(self.config.reset_potential)

    def step(self, synaptic_input: int, active_synapses: Optional[int] = None) -> int:
        """Advance one tick; return 1 if the neuron fires, else 0.

        ``active_synapses`` gates firing exactly as in
        :meth:`McCullochPittsNeuron.step`, but only in the history-free mode:
        a stateful LIF neuron may legitimately cross threshold on a silent
        tick from potential accumulated earlier.
        """
        cfg = self.config
        potential = _saturate(self._potential + int(synaptic_input) - cfg.leak)
        if potential >= cfg.threshold:
            spike = 1
            potential = int(cfg.reset_potential)
        else:
            spike = 0
        if (
            cfg.history_free
            and active_synapses is not None
            and int(active_synapses) == 0
        ):
            spike = 0
        if cfg.history_free:
            potential = int(cfg.reset_potential)
        self._potential = potential
        return spike


class NeuronArray:
    """Vectorized bank of identical neurons (one per crossbar column).

    The per-core simulation is performed on integer numpy vectors for speed;
    the scalar classes above remain the reference implementations and are
    cross-checked against this array in the test suite.

    The array supports two execution modes.  In scalar mode (the default)
    the membrane state is one ``(count,)`` vector and :meth:`step` advances a
    single sample per tick.  :meth:`begin_batch` switches to batch mode, in
    which the state becomes a ``(batch, count)`` matrix — one independent
    membrane potential per (sample, neuron) pair — and :meth:`step_batch`
    advances every sample in lock-step.  Batch mode is how the batched chip
    engine runs B copies of the same programmed network simultaneously.
    """

    def __init__(self, count: int, config: Optional[NeuronConfig] = None):
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        self.count = count
        self.config = config or NeuronConfig()
        self._potentials = np.full(count, self.config.reset_potential, dtype=np.int64)
        self._batch_size: Optional[int] = None
        self._copies: int = 1

    @property
    def potentials(self) -> np.ndarray:
        """Copy of the current membrane potentials.

        Shape ``(count,)`` in scalar mode, ``(batch, count)`` in batch mode.
        In multi-copy batch mode the rows are copy-major: row ``c *
        samples_per_copy + s`` holds copy ``c``'s sample ``s``.
        """
        return self._potentials.copy()

    @property
    def batch_size(self) -> Optional[int]:
        """Current batch size (total rows, copies x samples), or ``None``."""
        return self._batch_size

    @property
    def copies(self) -> int:
        """Network copies sharing this array's batch rows (1 in scalar mode)."""
        return self._copies

    def reset(self) -> None:
        """Reset all membrane potentials and return to scalar mode."""
        self._batch_size = None
        self._copies = 1
        self._potentials = np.full(
            self.count, self.config.reset_potential, dtype=np.int64
        )

    def begin_batch(self, batch_size: int, copies: int = 1) -> None:
        """Switch to batch mode with freshly reset ``(batch, count)`` state.

        Args:
            batch_size: total batch rows.  In multi-copy mode this is
                ``copies * samples_per_copy`` with copy-major row layout.
            copies: network copies the rows are partitioned into; must
                divide ``batch_size`` so every copy advances the same number
                of samples in lock-step.
        """
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if copies <= 0:
            raise ValueError(f"copies must be positive, got {copies}")
        if batch_size % copies != 0:
            raise ValueError(
                f"batch_size {batch_size} is not divisible by copies {copies}"
            )
        self._batch_size = int(batch_size)
        self._copies = int(copies)
        self._potentials = np.full(
            (self._batch_size, self.count),
            self.config.reset_potential,
            dtype=np.int64,
        )

    def step(
        self,
        synaptic_inputs: np.ndarray,
        active_synapses: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Advance all neurons one tick; returns a binary spike vector.

        Args:
            synaptic_inputs: crossbar-summed input per neuron.
            active_synapses: optional per-neuron count of ON synapses whose
                axon spiked this tick.  In history-free mode a neuron with
                zero active synapses never fires (the hardware never emits a
                spike from a silent crossbar even though ``0 >= 0`` satisfies
                the threshold rule).
        """
        if self._batch_size is not None:
            raise RuntimeError(
                "NeuronArray is in batch mode; use step_batch() or reset()"
            )
        synaptic_inputs = np.asarray(synaptic_inputs, dtype=np.int64)
        if synaptic_inputs.shape != (self.count,):
            raise ValueError(
                f"expected input of shape ({self.count},), got {synaptic_inputs.shape}"
            )
        cfg = self.config
        potentials = self._potentials + synaptic_inputs - cfg.leak
        np.clip(
            potentials,
            constants.POTENTIAL_MIN,
            constants.POTENTIAL_MAX,
            out=potentials,
        )
        spikes = (potentials >= cfg.threshold).astype(np.int8)
        if cfg.history_free and active_synapses is not None:
            active_synapses = np.asarray(active_synapses, dtype=np.int64)
            if active_synapses.shape != (self.count,):
                raise ValueError(
                    f"expected active counts of shape ({self.count},), "
                    f"got {active_synapses.shape}"
                )
            spikes = np.where(active_synapses > 0, spikes, 0).astype(np.int8)
        potentials = np.where(spikes == 1, cfg.reset_potential, potentials)
        if cfg.history_free:
            potentials = np.full(self.count, cfg.reset_potential, dtype=np.int64)
        self._potentials = potentials
        return spikes

    def step_batch(
        self,
        synaptic_inputs: np.ndarray,
        active_synapses: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Advance all neurons of every batch sample one tick.

        The update rule is identical to :meth:`step`, applied element-wise on
        ``(batch, count)`` state, so a batch of B samples produces exactly
        the spikes B independent scalar runs would.

        Args:
            synaptic_inputs: crossbar-summed input, shape ``(batch, count)``.
            active_synapses: optional per-sample ON-synapse counts, same
                shape; gates firing in history-free mode exactly as in
                :meth:`step`.

        Returns:
            binary int8 spike matrix of shape ``(batch, count)``.
        """
        if self._batch_size is None:
            raise RuntimeError(
                "NeuronArray is in scalar mode; call begin_batch() first"
            )
        synaptic_inputs = np.asarray(synaptic_inputs, dtype=np.int64)
        expected = (self._batch_size, self.count)
        if synaptic_inputs.shape != expected:
            raise ValueError(
                f"expected input of shape {expected}, got {synaptic_inputs.shape}"
            )
        cfg = self.config
        potentials = self._potentials + synaptic_inputs - cfg.leak
        np.clip(
            potentials,
            constants.POTENTIAL_MIN,
            constants.POTENTIAL_MAX,
            out=potentials,
        )
        spikes = (potentials >= cfg.threshold).astype(np.int8)
        if cfg.history_free and active_synapses is not None:
            active_synapses = np.asarray(active_synapses, dtype=np.int64)
            if active_synapses.shape != expected:
                raise ValueError(
                    f"expected active counts of shape {expected}, "
                    f"got {active_synapses.shape}"
                )
            spikes = np.where(active_synapses > 0, spikes, 0).astype(np.int8)
        if cfg.history_free:
            potentials.fill(cfg.reset_potential)
        else:
            potentials = np.where(spikes == 1, cfg.reset_potential, potentials)
        self._potentials = potentials
        return spikes
