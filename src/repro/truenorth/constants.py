"""Architectural constants of the TrueNorth chip.

Values follow the published architecture (Akopyan et al., TCAD 2015;
Cassidy et al., IJCNN 2013): 4096 cores arranged in a 64x64 grid, each core a
256x256 crossbar connecting 256 axons to 256 neurons, with 4 axon types per
core indexing a per-neuron signed 9-bit weight table.
"""

from __future__ import annotations

#: Number of axons (crossbar rows / inputs) per neuro-synaptic core.
AXONS_PER_CORE: int = 256

#: Number of neurons (crossbar columns / outputs) per neuro-synaptic core.
NEURONS_PER_CORE: int = 256

#: Number of distinct axon types; each neuron holds one signed weight per type.
AXON_TYPES: int = 4

#: Cores on one TrueNorth chip.
CORES_PER_CHIP: int = 4096

#: Physical layout of the cores on the chip (rows, columns).
CHIP_GRID_SHAPE = (64, 64)

#: Signed-weight range representable by a TrueNorth synaptic weight entry.
WEIGHT_MIN: int = -255
WEIGHT_MAX: int = 255

#: Membrane-potential register range (signed 20-bit in hardware).
POTENTIAL_MIN: int = -(2**19)
POTENTIAL_MAX: int = 2**19 - 1

#: Default per-neuron weight table used when a corelet does not specify one.
#: One signed integer per axon type; index 0 is the "excitatory unit" type
#: used by the paper's single-integer-per-connection deployments.
DEFAULT_WEIGHT_TABLE = (1, -1, 2, -2)

#: Nominal tick frequency of the chip in Hz (1 kHz); used only to convert
#: spikes-per-frame counts into latency estimates for the performance tables.
TICK_FREQUENCY_HZ: float = 1000.0
