"""Neuro Synaptic Chip Simulator (NSCS) facade.

The paper extracts synaptic-weight deviation maps from IBM's NSCS to show how
far the deployed (sampled) synaptic weights stray from the desired
floating-point weights (Figure 4).  This module provides the equivalent
facility for our simulator: given a programmed core and the desired
real-valued weight matrix it was derived from, it computes the normalized
per-synapse deviation map and summary statistics.

It also offers a convenience entry point for running a whole chip on a spike
stream and collecting output spike counts, which is what the evaluation
harness uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.truenorth.chip import TrueNorthChip
from repro.truenorth.core import NeurosynapticCore


@dataclass(frozen=True)
class DeviationReport:
    """Summary of a synaptic-weight deviation map (paper Figure 4).

    Attributes:
        deviation_map: absolute normalized deviation per synapse, shape
            (axons, neurons); deviations are normalized by the maximum
            possible synaptic weight so values lie in [0, 1].
        zero_fraction: fraction of synapses with exactly zero deviation.
        above_half_fraction: fraction of synapses whose deviation exceeds 0.5
            (the paper reports 24.01% for Tea learning and <0.02% for the
            probability-biased model).
        mean_deviation: mean absolute normalized deviation.
        max_deviation: largest absolute normalized deviation.
    """

    deviation_map: np.ndarray
    zero_fraction: float
    above_half_fraction: float
    mean_deviation: float
    max_deviation: float

    def summary(self) -> Dict[str, float]:
        """Return the scalar statistics as a plain dict (for JSON reports)."""
        return {
            "zero_fraction": self.zero_fraction,
            "above_half_fraction": self.above_half_fraction,
            "mean_deviation": self.mean_deviation,
            "max_deviation": self.max_deviation,
        }


class NeuroSynapticChipSimulator:
    """Facade combining chip simulation with deployment-introspection tools."""

    def __init__(self, chip: Optional[TrueNorthChip] = None):
        self.chip = chip or TrueNorthChip()

    # ------------------------------------------------------------------
    # deviation analysis (Figure 4)
    # ------------------------------------------------------------------
    @staticmethod
    def deviation_report(
        core: NeurosynapticCore,
        desired_weights: np.ndarray,
        normalization: Optional[float] = None,
    ) -> DeviationReport:
        """Compute the deviation of a core's deployed weights from a target.

        Args:
            core: a programmed neuro-synaptic core.
            desired_weights: real-valued target weight matrix of shape
                (axons, neurons) — the weights the training produced, before
                Bernoulli sampling.
            normalization: value used to normalize deviations; defaults to the
                largest absolute entry of the core's weight tables (the
                maximum possible synaptic weight).

        Returns:
            a :class:`DeviationReport` with the per-synapse map and statistics.
        """
        desired_weights = np.asarray(desired_weights, dtype=np.float64)
        crossbar = core.crossbar
        expected_shape = (crossbar.axons, crossbar.neurons)
        if desired_weights.shape != expected_shape:
            raise ValueError(
                f"desired_weights must have shape {expected_shape}, "
                f"got {desired_weights.shape}"
            )
        deployed = crossbar.effective_weights().astype(np.float64)
        if normalization is None:
            normalization = float(np.abs(crossbar.weight_tables).max())
        if normalization <= 0:
            raise ValueError("normalization must be positive")
        deviation = np.abs(deployed - desired_weights) / normalization
        total = deviation.size
        return DeviationReport(
            deviation_map=deviation,
            zero_fraction=float(np.count_nonzero(deviation == 0.0)) / total,
            above_half_fraction=float(np.count_nonzero(deviation > 0.5)) / total,
            mean_deviation=float(deviation.mean()),
            max_deviation=float(deviation.max()),
        )

    # ------------------------------------------------------------------
    # chip execution helpers
    # ------------------------------------------------------------------
    def run_frames(
        self,
        input_channel: str,
        frames_per_binding: Dict[int, np.ndarray],
        output_channel: str,
        ticks: Optional[int] = None,
        drain_ticks: int = 2,
    ) -> Dict[int, np.ndarray]:
        """Drive the chip with spike frames and accumulate output spike counts.

        Given a *batch* of samples — 3-D per-binding arrays of shape
        ``(batch, ticks, axons_in_binding)`` — the facade delegates to the
        chip's batched lock-step engine (one crossbar matmul per core per
        tick for the whole batch) instead of looping samples through the
        scalar path; the returned counts are spike-for-spike identical to
        running each sample separately (the test suite asserts it).

        Args:
            input_channel: name of the bound external input channel.
            frames_per_binding: mapping ``binding_index -> frames`` where
                frames has shape (ticks, axons_in_binding) for a single
                sample, or (batch, ticks, axons_in_binding) for a batch
                (all bindings must agree on which).
            output_channel: name of the bound external output channel.
            ticks: number of input ticks to run; defaults to the common frame
                count of the inputs.
            drain_ticks: extra ticks run with no input so spikes still in the
                router (one tick of delay per hop) reach the outputs.

        Returns:
            mapping ``binding_index -> spike counts`` accumulated per output
            neuron over the whole run: shape ``(neurons,)`` for a single
            sample, ``(batch, neurons)`` for a batch.
        """
        if not frames_per_binding:
            raise ValueError("frames_per_binding must not be empty")
        arrays = {k: np.asarray(v) for k, v in frames_per_binding.items()}
        dims = {array.ndim for array in arrays.values()}
        if dims == {3}:
            return self._run_frames_batch(
                input_channel, arrays, output_channel, ticks, drain_ticks
            )
        if dims != {2}:
            raise ValueError(
                "frames must all be 2-D (ticks, axons) or all 3-D "
                f"(batch, ticks, axons); got dimensions {sorted(dims)}"
            )
        if ticks is None:
            ticks = max(array.shape[0] for array in arrays.values())
        counts: Dict[int, np.ndarray] = {}
        self.chip.reset()
        for t in range(ticks + drain_ticks):
            inputs = {}
            per_binding = {}
            for binding_index, frames in arrays.items():
                if t < frames.shape[0]:
                    per_binding[binding_index] = frames[t]
            if per_binding:
                inputs[input_channel] = per_binding
            outputs = self.chip.step(inputs if inputs else None)
            for binding_index, spikes in outputs.get(output_channel, {}).items():
                if binding_index not in counts:
                    counts[binding_index] = np.zeros_like(spikes, dtype=np.int64)
                counts[binding_index] += spikes
        return counts

    def _run_frames_batch(
        self,
        input_channel: str,
        volumes_per_binding: Dict[int, np.ndarray],
        output_channel: str,
        ticks: Optional[int],
        drain_ticks: int,
    ) -> Dict[int, np.ndarray]:
        """Batched :meth:`run_frames`: all samples advance in lock-step.

        Every tick performs one ``(batch, axons) @ (axons, neurons)``
        crossbar matmul per core via :meth:`TrueNorthChip.step_batch`.
        Inputs shorter than ``ticks`` inject nothing on their remaining
        ticks, mirroring the scalar path's behaviour for ragged bindings.
        """
        batch_sizes = {array.shape[0] for array in volumes_per_binding.values()}
        if len(batch_sizes) != 1:
            raise ValueError(
                f"all bindings must share one batch size, got {sorted(batch_sizes)}"
            )
        batch = batch_sizes.pop()
        if ticks is None:
            ticks = max(array.shape[1] for array in volumes_per_binding.values())
        counts: Dict[int, np.ndarray] = {}
        self.chip.begin_batch(batch)
        for t in range(ticks + drain_ticks):
            per_binding = {}
            for binding_index, volumes in volumes_per_binding.items():
                if t < volumes.shape[1]:
                    per_binding[binding_index] = volumes[:, t]
            inputs = {input_channel: per_binding} if per_binding else None
            outputs = self.chip.step_batch(inputs)
            for binding_index, spikes in outputs.get(output_channel, {}).items():
                if binding_index not in counts:
                    counts[binding_index] = np.zeros_like(spikes, dtype=np.int64)
                counts[binding_index] += spikes
        return counts
