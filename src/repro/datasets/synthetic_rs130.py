"""Synthetic protein secondary-structure dataset (RS130 stand-in).

The RS130 benchmark classifies the secondary structure at the centre of a
sliding window of amino-acid profiles into three classes: alpha-helix,
beta-sheet, and coil.  The original data uses windows of 17 residues encoded
over a 21-symbol alphabet (17 x 21 = 357 features).

The synthetic generator reproduces that structure: each sample is a 17x21
position-specific profile whose statistics depend on the class —

* helices favour a small set of "helix-former" residues with a periodic
  (period ~3.6) emphasis,
* sheets favour "sheet-former" residues with an alternating (period 2)
  emphasis,
* coil windows are close to the background distribution with higher entropy.

Two properties matter for the reproduction and are controlled explicitly:

* the class-conditional signal is weak (``signal_strength``), so achievable
  accuracy lands in the modest regime the paper reports (~69% in Caffe)
  rather than saturating;
* each position's profile is max-normalized and contrast-sharpened
  (``contrast``), so most feature values sit near 0 or 1.  As with the digit
  images, near-binary inputs keep the stochastic spike-encoding variance
  small, which is the regime in which the paper's synaptic-sampling analysis
  applies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.datasets.base import Dataset, DatasetSplits
from repro.utils.rng import RngLike, new_rng

#: Sliding-window length in residues.
WINDOW_LENGTH = 17
#: Alphabet size (20 amino acids + terminator), matching RS130's 357 = 17*21.
ALPHABET_SIZE = 21
#: Total features per sample.
FEATURE_COUNT = WINDOW_LENGTH * ALPHABET_SIZE

#: Class labels.
CLASS_HELIX, CLASS_SHEET, CLASS_COIL = 0, 1, 2
CLASS_NAMES = ("helix", "sheet", "coil")

# Residue groups driving the class-conditional signal (indices into the
# 21-symbol alphabet; the specific identities are immaterial).
_HELIX_FORMERS = np.array([0, 3, 5, 8, 10, 12])
_SHEET_FORMERS = np.array([1, 4, 6, 9, 13, 16])


@dataclass(frozen=True)
class SyntheticRs130Config:
    """Generation parameters for the synthetic protein dataset.

    Attributes:
        train_size: number of training samples.
        test_size: number of test samples.
        signal_strength: how strongly class-specific residues are boosted
            (larger = easier problem).
        noise_scale: Dirichlet concentration of the per-position noise
            (smaller = noisier profiles).
        contrast: exponent applied after per-position max-normalization;
            larger values push profile entries toward 0/1 (near-binary
            features).
        seed: root seed.
    """

    train_size: int = 3000
    test_size: int = 1000
    signal_strength: float = 0.5
    noise_scale: float = 3.0
    contrast: float = 8.0
    seed: int = 0

    def __post_init__(self):
        if self.train_size <= 0 or self.test_size <= 0:
            raise ValueError("train_size and test_size must be positive")
        if self.signal_strength <= 0:
            raise ValueError("signal_strength must be positive")
        if self.noise_scale <= 0:
            raise ValueError("noise_scale must be positive")
        if self.contrast <= 0:
            raise ValueError("contrast must be positive")


def _class_profile(label: int, config: SyntheticRs130Config) -> np.ndarray:
    """Return the (window, alphabet) concentration template for a class."""
    base = np.ones((WINDOW_LENGTH, ALPHABET_SIZE))
    positions = np.arange(WINDOW_LENGTH)
    if label == CLASS_HELIX:
        # Helical periodicity: boost helix formers every ~3.6 residues.
        phase = np.cos(2.0 * np.pi * positions / 3.6) * 0.5 + 0.5
        base[:, _HELIX_FORMERS] += config.signal_strength * phase[:, None]
    elif label == CLASS_SHEET:
        # Beta strands alternate side chains: boost sheet formers every 2.
        phase = (positions % 2).astype(float)
        base[:, _SHEET_FORMERS] += config.signal_strength * phase[:, None]
    elif label == CLASS_COIL:
        # Coil: near-uniform with a mild boost of everything (higher entropy).
        base += 0.15 * config.signal_strength
    else:
        raise ValueError(f"unknown class label {label}")
    return base


def _generate_split(
    count: int, config: SyntheticRs130Config, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray]:
    features = np.zeros((count, FEATURE_COUNT))
    labels = rng.integers(0, 3, size=count)
    templates = {label: _class_profile(label, config) for label in range(3)}
    for i in range(count):
        concentration = templates[int(labels[i])] * config.noise_scale
        profile = np.stack(
            [rng.dirichlet(concentration[p]) for p in range(WINDOW_LENGTH)]
        )
        # Normalize each position's profile by its own maximum so every
        # position has a dominant residue at 1.0, then sharpen the contrast
        # so most entries sit near 0 or 1 (near-binary features keep the
        # spike-encoding variance small, matching the regime of the paper).
        profile = profile / profile.max(axis=1, keepdims=True)
        profile = profile**config.contrast
        features[i] = profile.ravel()
    return np.clip(features, 0.0, 1.0), labels


def generate_synthetic_rs130(
    config: SyntheticRs130Config = SyntheticRs130Config(), rng: RngLike = None
) -> DatasetSplits:
    """Generate train/test splits of the synthetic protein dataset.

    The 357 features can be reshaped to 19x19 (padding the last 4 entries
    with zeros) by the mapping layer, mirroring how the paper feeds RS130
    into neuro-synaptic cores.
    """
    rng = new_rng(config.seed if rng is None else rng)
    train_features, train_labels = _generate_split(config.train_size, config, rng)
    test_features, test_labels = _generate_split(config.test_size, config, rng)
    return DatasetSplits(
        train=Dataset(
            features=train_features,
            labels=train_labels,
            num_classes=3,
            name="synthetic-rs130-train",
            image_shape=(0, 0),
        ),
        test=Dataset(
            features=test_features,
            labels=test_labels,
            num_classes=3,
            name="synthetic-rs130-test",
            image_shape=(0, 0),
        ),
    )


def reshape_to_grid(features: np.ndarray, grid_size: int = 19) -> np.ndarray:
    """Reshape 357-feature rows into (grid_size x grid_size) images.

    The paper reshapes RS130's 357 one-dimensional features to 19x19 before
    sending them to cores; 19*19 = 361, so the last 4 entries are zero-padded.
    """
    features = np.asarray(features, dtype=float)
    if features.ndim == 1:
        features = features[None, :]
    target = grid_size * grid_size
    if features.shape[1] > target:
        raise ValueError(
            f"cannot reshape {features.shape[1]} features into a "
            f"{grid_size}x{grid_size} grid"
        )
    padded = np.zeros((features.shape[0], target))
    padded[:, : features.shape[1]] = features
    return padded
