"""Dataset registry and Table 1 metadata.

Maps the paper's dataset names to the synthetic generators and records the
statistics the paper lists in Table 1 so the corresponding benchmark can print
both the paper's numbers and the reproduction's numbers side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.datasets.base import DatasetSplits
from repro.datasets.synthetic_mnist import SyntheticMnistConfig, generate_synthetic_mnist
from repro.datasets.synthetic_rs130 import SyntheticRs130Config, generate_synthetic_rs130


@dataclass(frozen=True)
class DatasetInfo:
    """Registry entry: paper statistics plus the synthetic generator."""

    name: str
    description: str
    area: str
    paper_train_size: int
    paper_test_size: int
    feature_count: int
    num_classes: int
    generator: Callable[..., DatasetSplits]


DATASET_REGISTRY: Dict[str, DatasetInfo] = {
    "mnist": DatasetInfo(
        name="MNIST",
        description="Handwritten digits (synthetic stand-in)",
        area="Computer Engineering",
        paper_train_size=60000,
        paper_test_size=10000,
        feature_count=784,
        num_classes=10,
        generator=generate_synthetic_mnist,
    ),
    "rs130": DatasetInfo(
        name="RS130",
        description="Protein secondary structure (synthetic stand-in)",
        area="Life Science",
        paper_train_size=17766,
        paper_test_size=6621,
        feature_count=357,
        num_classes=3,
        generator=generate_synthetic_rs130,
    ),
}


def load_dataset(
    name: str,
    train_size: Optional[int] = None,
    test_size: Optional[int] = None,
    seed: int = 0,
) -> DatasetSplits:
    """Generate the synthetic stand-in for a registered dataset.

    Args:
        name: ``"mnist"`` or ``"rs130"`` (case-insensitive).
        train_size: optional override of the generated training-set size
            (defaults to the generator's laptop-scale default, not the paper's
            full corpus size).
        test_size: optional override of the generated test-set size.
        seed: generation seed.
    """
    key = name.lower()
    if key not in DATASET_REGISTRY:
        raise KeyError(f"unknown dataset {name!r}; known: {sorted(DATASET_REGISTRY)}")
    if key == "mnist":
        config = SyntheticMnistConfig(
            train_size=train_size or SyntheticMnistConfig().train_size,
            test_size=test_size or SyntheticMnistConfig().test_size,
            seed=seed,
        )
        return generate_synthetic_mnist(config)
    config = SyntheticRs130Config(
        train_size=train_size or SyntheticRs130Config().train_size,
        test_size=test_size or SyntheticRs130Config().test_size,
        seed=seed,
    )
    return generate_synthetic_rs130(config)


def dataset_summary(name: str, splits: Optional[DatasetSplits] = None) -> Dict[str, object]:
    """Return a Table 1 style row for a registered dataset.

    When ``splits`` is provided the generated sizes are reported alongside the
    paper's corpus sizes.
    """
    info = DATASET_REGISTRY[name.lower()]
    row: Dict[str, object] = {
        "dataset": info.name,
        "description": info.description,
        "area": info.area,
        "paper_training_size": info.paper_train_size,
        "paper_testing_size": info.paper_test_size,
        "feature_count": info.feature_count,
        "class_count": info.num_classes,
    }
    if splits is not None:
        row["generated_training_size"] = splits.train.sample_count
        row["generated_testing_size"] = splits.test.sample_count
    return row
