"""Synthetic handwritten-digit dataset (MNIST stand-in).

Images are produced by rasterizing per-digit stroke templates (polylines on a
28x28 canvas) and perturbing them per sample with random vertex jitter,
translation, rotation, scaling, and stroke thickness, followed by a contrast
sharpening step and sparse salt noise.  The design targets two properties of
real MNIST that the paper's analysis depends on:

* pixels are close to binary (strokes saturate to 1, background stays at 0),
  so the stochastic spike encoding of the inputs introduces little variance
  and the deployment error is dominated by the synaptic sampling the paper's
  method addresses;
* class difficulty comes from geometric variability (jittered, rotated,
  shifted glyphs), so trained models have realistic decision margins and the
  deployment variance visibly costs accuracy at low duplication levels.

The generator is fully self-contained and deterministic given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.datasets.base import Dataset, DatasetSplits
from repro.utils.rng import RngLike, new_rng

#: Canvas edge length (MNIST uses 28x28 images).
IMAGE_SIZE = 28

# Stroke templates per digit: lists of polylines with vertices in a unit
# square ((0,0) = top-left, (1,1) = bottom-right).  The glyphs are deliberately
# simple; class separability comes from their distinct topologies.
_DIGIT_STROKES: Dict[int, List[List[Tuple[float, float]]]] = {
    0: [[(0.5, 0.15), (0.75, 0.3), (0.75, 0.7), (0.5, 0.85), (0.25, 0.7), (0.25, 0.3), (0.5, 0.15)]],
    1: [[(0.45, 0.2), (0.55, 0.15), (0.55, 0.85)], [(0.4, 0.85), (0.7, 0.85)]],
    2: [[(0.3, 0.3), (0.5, 0.15), (0.7, 0.3), (0.7, 0.45), (0.3, 0.85), (0.7, 0.85)]],
    3: [[(0.3, 0.2), (0.7, 0.2), (0.5, 0.5), (0.7, 0.65), (0.6, 0.85), (0.3, 0.8)]],
    4: [[(0.65, 0.85), (0.65, 0.15), (0.3, 0.6), (0.75, 0.6)]],
    5: [[(0.7, 0.15), (0.35, 0.15), (0.35, 0.5), (0.65, 0.5), (0.7, 0.7), (0.55, 0.85), (0.3, 0.8)]],
    6: [[(0.65, 0.15), (0.4, 0.4), (0.3, 0.65), (0.45, 0.85), (0.65, 0.75), (0.65, 0.55), (0.35, 0.55)]],
    7: [[(0.3, 0.15), (0.7, 0.15), (0.45, 0.85)], [(0.4, 0.5), (0.65, 0.5)]],
    8: [[(0.5, 0.15), (0.7, 0.3), (0.5, 0.5), (0.3, 0.3), (0.5, 0.15)],
        [(0.5, 0.5), (0.7, 0.68), (0.5, 0.85), (0.3, 0.68), (0.5, 0.5)]],
    9: [[(0.65, 0.45), (0.45, 0.45), (0.35, 0.3), (0.5, 0.15), (0.65, 0.25), (0.65, 0.45), (0.6, 0.85)]],
}


@dataclass(frozen=True)
class SyntheticMnistConfig:
    """Generation parameters for the synthetic digit dataset.

    Attributes:
        train_size: number of training samples.
        test_size: number of test samples.
        vertex_jitter: per-vertex positional jitter (in unit-square units)
            applied to the glyph templates — the main source of within-class
            variability.
        max_shift: maximum translation in pixels (per axis).
        max_rotation: maximum rotation in radians.
        scale_range: (low, high) uniform range of the glyph scale factor.
        thickness: nominal Gaussian stroke radius in pixels.
        salt_noise: probability of flipping a pixel's intensity (salt/pepper).
        sharpness: slope of the logistic contrast sharpening; larger values
            produce more nearly binary pixels.
        seed: root seed.
    """

    train_size: int = 2500
    test_size: int = 500
    vertex_jitter: float = 0.03
    max_shift: float = 2.5
    max_rotation: float = 0.4
    scale_range: Tuple[float, float] = (0.75, 1.15)
    thickness: float = 1.2
    salt_noise: float = 0.015
    sharpness: float = 14.0
    seed: int = 0

    def __post_init__(self):
        if self.train_size <= 0 or self.test_size <= 0:
            raise ValueError("train_size and test_size must be positive")
        if self.vertex_jitter < 0:
            raise ValueError("vertex_jitter must be non-negative")
        if not (0.0 <= self.salt_noise < 1.0):
            raise ValueError("salt_noise must lie in [0, 1)")
        if self.thickness <= 0:
            raise ValueError("thickness must be positive")
        if self.sharpness <= 0:
            raise ValueError("sharpness must be positive")
        if not (0 < self.scale_range[0] <= self.scale_range[1]):
            raise ValueError("scale_range must be positive and ordered")


def _rasterize_strokes(
    strokes: Sequence[Sequence[Tuple[float, float]]],
    shift: Tuple[float, float],
    rotation: float,
    scale: float,
    thickness: float,
) -> np.ndarray:
    """Render a glyph's strokes to a 28x28 intensity image in [0, 1]."""
    size = IMAGE_SIZE
    image = np.zeros((size, size))
    yy, xx = np.mgrid[0:size, 0:size]
    cos_r, sin_r = np.cos(rotation), np.sin(rotation)
    center = (size - 1) / 2.0

    for stroke in strokes:
        points = np.asarray(stroke, dtype=float) * (size - 1)
        # Apply scale and rotation about the canvas center, then shift.
        points = (points - center) * scale
        rotated = np.empty_like(points)
        rotated[:, 0] = cos_r * points[:, 0] - sin_r * points[:, 1]
        rotated[:, 1] = sin_r * points[:, 0] + cos_r * points[:, 1]
        points = rotated + center + np.asarray(shift)
        # Sample points densely along each segment and splat gaussians.
        for start, end in zip(points[:-1], points[1:]):
            length = float(np.hypot(*(end - start)))
            steps = max(2, int(length * 2))
            for t in np.linspace(0.0, 1.0, steps):
                px, py = start + t * (end - start)
                dist_sq = (xx - px) ** 2 + (yy - py) ** 2
                image = np.maximum(
                    image, np.exp(-dist_sq / (2.0 * thickness**2))
                )
    return image


def _render_sample(
    digit: int, config: SyntheticMnistConfig, rng: np.random.Generator
) -> np.ndarray:
    """Render one perturbed, sharpened digit image (flattened)."""
    jitter = config.vertex_jitter
    strokes = [
        [
            (x + rng.uniform(-jitter, jitter), y + rng.uniform(-jitter, jitter))
            for x, y in polyline
        ]
        for polyline in _DIGIT_STROKES[digit]
    ]
    shift = tuple(rng.uniform(-config.max_shift, config.max_shift, size=2))
    rotation = rng.uniform(-config.max_rotation, config.max_rotation)
    scale = rng.uniform(*config.scale_range)
    thickness = config.thickness * rng.uniform(0.85, 1.2)
    image = _rasterize_strokes(strokes, shift, rotation, scale, thickness)
    # Contrast sharpening pushes stroke pixels toward 1 and background toward 0.
    image = 1.0 / (1.0 + np.exp(-config.sharpness * (image - 0.5)))
    if config.salt_noise > 0:
        flip = rng.random(image.shape) < config.salt_noise
        image = np.where(flip, 1.0 - image, image)
    return np.clip(image, 0.0, 1.0).ravel()


def _generate_split(
    count: int, config: SyntheticMnistConfig, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray]:
    features = np.zeros((count, IMAGE_SIZE * IMAGE_SIZE))
    labels = rng.integers(0, 10, size=count)
    for i in range(count):
        features[i] = _render_sample(int(labels[i]), config, rng)
    return features, labels


def generate_synthetic_mnist(
    config: SyntheticMnistConfig = SyntheticMnistConfig(), rng: RngLike = None
) -> DatasetSplits:
    """Generate train/test splits of the synthetic digit dataset.

    The function is deterministic given ``config.seed`` (or an explicit
    ``rng``): the same configuration always produces the same pixels.
    """
    rng = new_rng(config.seed if rng is None else rng)
    train_features, train_labels = _generate_split(config.train_size, config, rng)
    test_features, test_labels = _generate_split(config.test_size, config, rng)
    image_shape = (IMAGE_SIZE, IMAGE_SIZE)
    return DatasetSplits(
        train=Dataset(
            features=train_features,
            labels=train_labels,
            num_classes=10,
            name="synthetic-mnist-train",
            image_shape=image_shape,
        ),
        test=Dataset(
            features=test_features,
            labels=test_labels,
            num_classes=10,
            name="synthetic-mnist-test",
            image_shape=image_shape,
        ),
    )
