"""Dataset containers and iteration helpers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from repro.utils.rng import RngLike, new_rng


@dataclass(frozen=True)
class Dataset:
    """An in-memory classification dataset.

    Attributes:
        features: array of shape (samples, feature_count), values in [0, 1]
            (the range TrueNorth spike encodings expect).
        labels: integer class labels of shape (samples,).
        num_classes: number of classes.
        name: human-readable dataset name.
        image_shape: optional (height, width) when features are flattened
            images (used by the block-partitioning mapping).
    """

    features: np.ndarray
    labels: np.ndarray
    num_classes: int
    name: str = "dataset"
    image_shape: Tuple[int, int] = (0, 0)

    def __post_init__(self):
        features = np.asarray(self.features, dtype=float)
        labels = np.asarray(self.labels, dtype=int)
        if features.ndim != 2:
            raise ValueError(f"features must be 2-D, got shape {features.shape}")
        if labels.ndim != 1 or labels.shape[0] != features.shape[0]:
            raise ValueError(
                "labels must be 1-D with one entry per feature row; got "
                f"{labels.shape} for {features.shape[0]} rows"
            )
        if self.num_classes <= 0:
            raise ValueError(f"num_classes must be positive, got {self.num_classes}")
        if labels.size and (labels.min() < 0 or labels.max() >= self.num_classes):
            raise ValueError("labels outside [0, num_classes)")
        object.__setattr__(self, "features", features)
        object.__setattr__(self, "labels", labels)

    @property
    def sample_count(self) -> int:
        """Number of samples."""
        return self.features.shape[0]

    @property
    def feature_count(self) -> int:
        """Number of features per sample."""
        return self.features.shape[1]

    def subset(self, indices: np.ndarray) -> "Dataset":
        """Return a new dataset restricted to ``indices``."""
        indices = np.asarray(indices, dtype=int)
        return Dataset(
            features=self.features[indices],
            labels=self.labels[indices],
            num_classes=self.num_classes,
            name=self.name,
            image_shape=self.image_shape,
        )

    def take(self, count: int) -> "Dataset":
        """Return the first ``count`` samples."""
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        return self.subset(np.arange(min(count, self.sample_count)))

    def class_counts(self) -> np.ndarray:
        """Number of samples per class."""
        return np.bincount(self.labels, minlength=self.num_classes)


@dataclass(frozen=True)
class DatasetSplits:
    """A train/test pair of datasets (matching Table 1's structure)."""

    train: Dataset
    test: Dataset

    def __post_init__(self):
        if self.train.num_classes != self.test.num_classes:
            raise ValueError("train and test splits must share num_classes")
        if self.train.feature_count != self.test.feature_count:
            raise ValueError("train and test splits must share feature_count")

    @property
    def num_classes(self) -> int:
        """Number of classes (same for both splits)."""
        return self.train.num_classes

    @property
    def feature_count(self) -> int:
        """Features per sample (same for both splits)."""
        return self.train.feature_count


def train_test_split(
    dataset: Dataset, test_fraction: float = 0.2, rng: RngLike = None
) -> DatasetSplits:
    """Randomly split a dataset into train/test portions."""
    if not (0.0 < test_fraction < 1.0):
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = new_rng(rng)
    order = rng.permutation(dataset.sample_count)
    test_count = max(1, int(round(dataset.sample_count * test_fraction)))
    test_idx = order[:test_count]
    train_idx = order[test_count:]
    return DatasetSplits(train=dataset.subset(train_idx), test=dataset.subset(test_idx))


def iterate_minibatches(
    dataset: Dataset,
    batch_size: int,
    rng: RngLike = None,
    shuffle: bool = True,
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield (features, labels) mini-batches covering the dataset once."""
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    order = (
        new_rng(rng).permutation(dataset.sample_count)
        if shuffle
        else np.arange(dataset.sample_count)
    )
    for start in range(0, dataset.sample_count, batch_size):
        index = order[start : start + batch_size]
        yield dataset.features[index], dataset.labels[index]
