"""Synthetic datasets standing in for the paper's MNIST and RS130 corpora.

The reproduction has no network access, so the two datasets of Table 1 are
replaced by programmatic generators with the same dimensionality, class
structure, and value range:

* :mod:`repro.datasets.synthetic_mnist` — 28x28 grey-scale digit images drawn
  by rendering stroke-based glyph templates with random geometric and
  intensity perturbations (10 classes).
* :mod:`repro.datasets.synthetic_rs130` — 357-feature sliding-window
  amino-acid profiles with class-conditional motifs (3 classes:
  helix / sheet / coil).

Both generators are deterministic given a seed and expose the common
:class:`repro.datasets.base.Dataset` container used by the rest of the
package.
"""

from repro.datasets.base import Dataset, DatasetSplits, iterate_minibatches, train_test_split
from repro.datasets.synthetic_mnist import SyntheticMnistConfig, generate_synthetic_mnist
from repro.datasets.synthetic_rs130 import SyntheticRs130Config, generate_synthetic_rs130
from repro.datasets.registry import DATASET_REGISTRY, load_dataset, dataset_summary

__all__ = [
    "Dataset",
    "DatasetSplits",
    "iterate_minibatches",
    "train_test_split",
    "SyntheticMnistConfig",
    "generate_synthetic_mnist",
    "SyntheticRs130Config",
    "generate_synthetic_rs130",
    "DATASET_REGISTRY",
    "load_dataset",
    "dataset_summary",
]
