"""Core-occupation accounting.

TrueNorth resources are counted in neuro-synaptic cores.  One copy of a
network occupies ``cores_per_copy`` cores (4 for the paper's test bench 1)
and the official accuracy workaround multiplies that by the number of spatial
copies; the savings the paper reports in Table 2(a) and Figure 9 are
reductions of this count at matched accuracy.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.model import TrueNorthModel


def core_occupation(model: TrueNorthModel, copies: int = 1) -> int:
    """Total cores occupied by ``copies`` instances of a model."""
    if copies <= 0:
        raise ValueError(f"copies must be positive, got {copies}")
    return model.cores_per_copy * copies


def occupation_table(
    model: TrueNorthModel, copy_levels: Sequence[int]
) -> List[Dict[str, int]]:
    """Occupation rows (copies, cores) for a list of duplication levels."""
    rows = []
    for copies in copy_levels:
        rows.append({"copies": int(copies), "cores": core_occupation(model, copies)})
    return rows


def chip_utilization(model: TrueNorthModel, copies: int, chip_cores: int = 4096) -> float:
    """Fraction of one chip's cores consumed by a deployment."""
    if chip_cores <= 0:
        raise ValueError(f"chip_cores must be positive, got {chip_cores}")
    return core_occupation(model, copies) / float(chip_cores)


def max_copies_on_chip(model: TrueNorthModel, chip_cores: int = 4096) -> int:
    """Largest number of copies of a model that fit on one chip."""
    if chip_cores <= 0:
        raise ValueError(f"chip_cores must be positive, got {chip_cores}")
    return chip_cores // model.cores_per_copy
