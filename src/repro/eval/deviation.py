"""Synaptic-weight deviation analysis (Figure 4).

The paper visualizes, for a randomly selected core, how far every deployed
(sampled) synaptic weight deviates from the desired trained weight,
normalized by the maximum possible synaptic weight.  A Tea-trained model
shows large deviations (24.01% of synapses deviate by more than 50%) while a
probability-biased model is almost deviation-free (98.45% of synapses have
exactly zero deviation).

This module computes the same statistics directly from a trained model: it
deploys one copy, picks a core, and compares its sampled signed weights to
the expected weights ``p * c``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.model import TrueNorthModel
from repro.mapping.corelet import build_corelets
from repro.mapping.deploy import deploy_model
from repro.truenorth.nscs import DeviationReport
from repro.utils.rng import RngLike, new_rng


def model_deviation_report(
    model: TrueNorthModel,
    layer: int = 0,
    core_index: Optional[int] = None,
    rng: RngLike = None,
    zero_tolerance: float = 0.01,
) -> DeviationReport:
    """Deviation map of one deployed core of a trained model.

    Args:
        model: the trained model.
        layer: hidden layer to inspect.
        core_index: which core of that layer; a random one is selected when
            omitted (matching the paper's "randomly selected neuro-synaptic
            core").
        rng: randomness for the deployment sampling and the core selection.
        zero_tolerance: deviations at or below this fraction of the maximum
            synaptic weight are counted as "zero deviation".  Trained
            probabilities approach but never exactly reach the poles, so a
            strict equality would undercount the deterministic synapses the
            paper's 98.45% figure refers to.

    Returns:
        a :class:`~repro.truenorth.nscs.DeviationReport` whose map has one
        entry per (axon, neuron) pair of the selected core, normalized by the
        synaptic value.
    """
    rng = new_rng(rng)
    network = build_corelets(model)
    if not (0 <= layer < len(network.corelets)):
        raise IndexError(f"layer {layer} outside [0, {len(network.corelets)})")
    layer_corelets = network.corelets[layer]
    if core_index is None:
        core_index = int(rng.integers(0, len(layer_corelets)))
    if not (0 <= core_index < len(layer_corelets)):
        raise IndexError(
            f"core_index {core_index} outside [0, {len(layer_corelets)})"
        )
    deployed = deploy_model(model, rng=rng, corelet_network=network)
    corelet = layer_corelets[core_index]
    sampled = deployed.sampled_weights[layer][core_index]
    desired = corelet.expected_weights()
    normalization = float(model.architecture.synaptic_value)
    deviation = np.abs(sampled - desired) / normalization
    total = deviation.size
    return DeviationReport(
        deviation_map=deviation,
        zero_fraction=float(np.count_nonzero(deviation <= zero_tolerance)) / total,
        above_half_fraction=float(np.count_nonzero(deviation > 0.5)) / total,
        mean_deviation=float(deviation.mean()),
        max_deviation=float(deviation.max()),
    )


def deviation_summary_pair(
    tea_model: TrueNorthModel,
    biased_model: TrueNorthModel,
    rng: RngLike = None,
) -> Tuple[DeviationReport, DeviationReport]:
    """Deviation reports for a (Tea, biased) model pair on the same core.

    Both models are inspected at the same layer-0 core index so the two maps
    are directly comparable, as in Figure 4(a)/(b).
    """
    rng = new_rng(rng)
    core_index = 0
    tea_report = model_deviation_report(tea_model, layer=0, core_index=core_index, rng=rng)
    biased_report = model_deviation_report(
        biased_model, layer=0, core_index=core_index, rng=rng
    )
    return tea_report, biased_report
