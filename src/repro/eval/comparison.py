"""Accuracy-matched comparison (the Table 2 procedure).

The paper compares the resource needs of two learning methods at *matched
accuracy*: for each configuration of the baseline (Tea) method, find the
cheapest configuration of the proposed method whose accuracy is at least as
high, and report how many cores (Table 2a) or how much time (Table 2b) that
saves.  The paper notes this grouping is deliberately biased toward the
baseline — when no exact match exists, the proposed method must reach the
*next greater* accuracy level.

This module implements that matching for an arbitrary pair of measured
accuracy-vs-cost curves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class ConfigurationPoint:
    """One measured configuration of a deployed network.

    Attributes:
        level: the duplication level (network copies in Table 2a, spikes per
            frame in Table 2b).
        accuracy: measured deployed accuracy at that level.
        cost: the resource figure being compared (cores for occupation
            comparisons, spf/ticks for performance comparisons).
        label: display label (e.g. "N3" or "B2").
    """

    level: int
    accuracy: float
    cost: float
    label: str = ""


@dataclass(frozen=True)
class MatchedComparison:
    """One row of an accuracy-matched comparison.

    Attributes:
        baseline: the baseline configuration being matched.
        ours: the cheapest proposed-method configuration whose accuracy is at
            least the baseline's, or ``None`` when the proposed method never
            reaches it within the evaluated range.
        saved_cost: baseline cost minus ours (positive = savings).
        saved_fraction: saved cost as a fraction of the baseline cost.
        speedup: baseline cost divided by ours (meaningful for time-like
            costs).
    """

    baseline: ConfigurationPoint
    ours: Optional[ConfigurationPoint]
    saved_cost: float
    saved_fraction: float
    speedup: float


def _sorted_points(points: Sequence[ConfigurationPoint]) -> List[ConfigurationPoint]:
    return sorted(points, key=lambda point: point.cost)


def match_accuracy_levels(
    baseline_points: Sequence[ConfigurationPoint],
    our_points: Sequence[ConfigurationPoint],
) -> List[MatchedComparison]:
    """Match every baseline configuration with the cheapest adequate ours.

    For each baseline point, the proposed method's candidate is the
    lowest-cost configuration whose accuracy is greater than or equal to the
    baseline's accuracy (the paper's "next greater level of accuracy" rule).

    Returns one :class:`MatchedComparison` per baseline point, in ascending
    baseline-cost order.
    """
    if not baseline_points or not our_points:
        raise ValueError("both point sets must be non-empty")
    ours_sorted = _sorted_points(our_points)
    rows: List[MatchedComparison] = []
    for baseline in _sorted_points(baseline_points):
        match: Optional[ConfigurationPoint] = None
        for candidate in ours_sorted:
            if candidate.accuracy >= baseline.accuracy:
                match = candidate
                break
        if match is None:
            rows.append(
                MatchedComparison(
                    baseline=baseline,
                    ours=None,
                    saved_cost=0.0,
                    saved_fraction=0.0,
                    speedup=1.0,
                )
            )
            continue
        saved = baseline.cost - match.cost
        rows.append(
            MatchedComparison(
                baseline=baseline,
                ours=match,
                saved_cost=float(saved),
                saved_fraction=float(saved / baseline.cost) if baseline.cost else 0.0,
                speedup=float(baseline.cost / match.cost) if match.cost else float("inf"),
            )
        )
    return rows


def core_occupation_comparison(
    baseline_points: Sequence[ConfigurationPoint],
    our_points: Sequence[ConfigurationPoint],
) -> Tuple[List[MatchedComparison], float, float]:
    """Table 2(a): core savings at matched accuracy.

    Returns (rows, average_saved_fraction, max_saved_fraction), where the
    averages are taken over the baseline configurations for which the
    proposed method achieved a match with strictly positive savings or any
    match at all (rows without a match contribute zero savings, mirroring the
    conservative accounting of the paper).
    """
    rows = match_accuracy_levels(baseline_points, our_points)
    fractions = [row.saved_fraction for row in rows if row.ours is not None]
    if not fractions:
        return rows, 0.0, 0.0
    return rows, float(np.mean(fractions)), float(np.max(fractions))


def performance_comparison(
    baseline_points: Sequence[ConfigurationPoint],
    our_points: Sequence[ConfigurationPoint],
) -> Tuple[List[MatchedComparison], float]:
    """Table 2(b): speedup at matched accuracy.

    Returns (rows, max_speedup) over the matched rows.
    """
    rows = match_accuracy_levels(baseline_points, our_points)
    speedups = [row.speedup for row in rows if row.ours is not None]
    max_speedup = float(np.max(speedups)) if speedups else 1.0
    return rows, max_speedup


def label_points(
    levels: Sequence[int],
    accuracies: Sequence[float],
    costs: Sequence[float],
    prefix: str,
) -> List[ConfigurationPoint]:
    """Convenience constructor: build labelled points ("N1", "B2", ...)."""
    if not (len(levels) == len(accuracies) == len(costs)):
        raise ValueError("levels, accuracies, and costs must have equal lengths")
    return [
        ConfigurationPoint(
            level=int(level),
            accuracy=float(accuracy),
            cost=float(cost),
            label=f"{prefix}{level}",
        )
        for level, accuracy, cost in zip(levels, accuracies, costs)
    ]
