"""SweepRunner: one-pass evaluation of a whole (copies, spf) grid.

The sweep drivers of Figures 7-9 and Table 2 all need deployed accuracy over
a grid of spatial x temporal duplication levels.  :class:`SweepRunner` wires
the pieces together on top of :class:`repro.eval.engine.VectorizedEvaluator`:

* the corelets are built once and the *largest* copy count is deployed once
  per repeat;
* the input frames are encoded once per repeat (streamed in chunks so the
  spike volume never fully materializes) and pushed through all copies in a
  single vectorized pass;
* every smaller grid point is derived from cumulative sums of the score
  tensor (the scores of a 16-copy, 4-spf deployment contain those of every
  nested configuration — just sum fewer copies / fewer frames);
* repeated evaluations of the same (model, grid, seed) are served from a
  results cache keyed by ``(model fingerprint, copies, spf, seed)``, which
  the experiment drivers share when they re-sweep the same trained model
  (e.g. Figure 7 feeding Figure 8, or Figure 9(a) probing several spf levels
  of the same Table 2 procedure).

Caching only engages for integer seeds — a caller-supplied generator has
hidden state, so results evaluated from one are never reused.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.model import TrueNorthModel
from repro.datasets.base import Dataset
from repro.eval.engine import VectorizedEvaluator
from repro.mapping.corelet import CoreletNetwork, build_corelets
from repro.mapping.duplication import deploy_with_copies
from repro.nn.metrics import accuracy_score
from repro.utils.rng import RngLike, new_rng, spawn_rngs


def model_fingerprint(model: TrueNorthModel) -> str:
    """Stable content hash of a trained model (architecture + weights)."""
    digest = hashlib.sha256()
    arch = model.architecture
    digest.update(
        f"{arch.name}|{arch.input_dim}|{arch.num_classes}|"
        f"{arch.synaptic_value}|{len(arch.layers)}".encode()
    )
    for layer_weights in model.block_weights:
        for weights in layer_weights:
            digest.update(str(weights.shape).encode())
            digest.update(np.ascontiguousarray(weights, dtype=np.float64).tobytes())
    return digest.hexdigest()


def dataset_fingerprint(dataset: Dataset) -> str:
    """Stable content hash of an evaluation dataset (features + labels)."""
    digest = hashlib.sha256()
    features = np.ascontiguousarray(dataset.features, dtype=np.float64)
    labels = np.ascontiguousarray(dataset.labels)
    digest.update(str(features.shape).encode())
    digest.update(features.tobytes())
    digest.update(labels.tobytes())
    return digest.hexdigest()


class ScoreCache:
    """In-memory cache of evaluated score tensors.

    Keys are ``(model fingerprint, max copies, max spf, seed, repeats,
    sample count)`` — everything that determines the evaluated score grid.
    Values are the per-repeat cumulative score tensors, from which any nested
    (copies, spf) sub-grid can be read off without re-deploying anything.
    """

    def __init__(self, max_entries: int = 16):
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.max_entries = max_entries
        self._entries: Dict[Tuple, List[np.ndarray]] = {}
        self.hits = 0
        self.misses = 0

    def get(self, key: Tuple) -> Optional[List[np.ndarray]]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(self, key: Tuple, value: List[np.ndarray]) -> None:
        if key not in self._entries and len(self._entries) >= self.max_entries:
            # Drop the oldest entry (insertion order) to bound memory.
            oldest = next(iter(self._entries))
            del self._entries[oldest]
        # Cached tensors are handed out by reference; freeze them so a caller
        # mutating a returned array cannot silently poison later sweeps.
        for array in value:
            array.flags.writeable = False
        self._entries[key] = value

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)


#: Default cache shared by every :class:`SweepRunner` that is not given one.
GLOBAL_SCORE_CACHE = ScoreCache(max_entries=16)


@dataclass
class SweepRunner:
    """Evaluates a trained model over a (copies, spf) grid in one pass.

    Args:
        copy_levels: spatial duplication levels to report (deduplicated and
            sorted ascending).
        spf_levels: temporal duplication levels to report.
        repeats: independent deployment + encoding repeats averaged per grid
            point.
        max_samples: optional cap on evaluated samples.
        chunk_frames: spike frames encoded per streaming chunk (``None`` =
            automatic).
        cache: results cache; ``None`` uses the module-level
            :data:`GLOBAL_SCORE_CACHE`.
    """

    copy_levels: Sequence[int] = (1, 2, 4, 8, 16)
    spf_levels: Sequence[int] = (1, 2, 3, 4)
    repeats: int = 3
    max_samples: Optional[int] = None
    chunk_frames: Optional[int] = None
    cache: Optional[ScoreCache] = None

    def __post_init__(self):
        self.copy_levels = tuple(sorted(set(int(c) for c in self.copy_levels)))
        self.spf_levels = tuple(sorted(set(int(s) for s in self.spf_levels)))
        if not self.copy_levels or self.copy_levels[0] <= 0:
            raise ValueError("copy_levels must be positive integers")
        if not self.spf_levels or self.spf_levels[0] <= 0:
            raise ValueError("spf_levels must be positive integers")
        if self.repeats <= 0:
            raise ValueError(f"repeats must be positive, got {self.repeats}")
        if self.cache is None:
            self.cache = GLOBAL_SCORE_CACHE

    # ------------------------------------------------------------------
    def cumulative_scores(
        self,
        model: TrueNorthModel,
        dataset: Dataset,
        rng: RngLike = None,
        corelet_network: Optional[CoreletNetwork] = None,
    ) -> List[np.ndarray]:
        """Per-repeat cumulative score tensors of the largest configuration.

        Each returned array has shape ``(max_copies, max_spf, batch,
        num_classes)`` and holds ``cumsum`` over the copy and frame axes, so
        ``tensor[c - 1, s - 1]`` is the accumulated score of a (c, s)
        deployment.  Served from the cache when the same (model, grid, seed)
        was evaluated before.
        """
        evaluation = (
            dataset if self.max_samples is None else dataset.take(self.max_samples)
        )
        max_copies = self.copy_levels[-1]
        max_spf = self.spf_levels[-1]
        key = None
        # Only an explicit integer seed is cacheable: rng=None means fresh
        # entropy (each call must be an independent random sample) and a
        # caller-supplied generator has hidden state.
        if isinstance(rng, int) and not isinstance(rng, bool):
            key = (
                model_fingerprint(model),
                max_copies,
                max_spf,
                rng,
                self.repeats,
                dataset_fingerprint(evaluation),
            )
        if key is not None:
            cached = self.cache.get(key)
            if cached is not None:
                return cached
        network = corelet_network or build_corelets(model)
        tensors: List[np.ndarray] = []
        for repeat_rng in spawn_rngs(new_rng(rng), self.repeats):
            deployment = deploy_with_copies(
                model, copies=max_copies, rng=repeat_rng, corelet_network=network
            )
            evaluator = VectorizedEvaluator(deployment.copies)
            scores = evaluator.evaluate_scores(
                evaluation.features,
                max_spf,
                rng=repeat_rng,
                chunk_frames=self.chunk_frames,
            )  # (copies, spf, batch, classes)
            tensors.append(np.cumsum(np.cumsum(scores, axis=0), axis=1))
        if key is not None:
            self.cache.put(key, tensors)
        return tensors

    def run(
        self,
        model: TrueNorthModel,
        dataset: Dataset,
        rng: RngLike = None,
        label: str = "",
        corelet_network: Optional[CoreletNetwork] = None,
    ):
        """Full grid sweep; returns a :class:`repro.eval.sweep.SweepResult`."""
        from repro.eval.sweep import SweepResult

        evaluation = (
            dataset if self.max_samples is None else dataset.take(self.max_samples)
        )
        labels = evaluation.labels
        tensors = self.cumulative_scores(
            model, dataset, rng=rng, corelet_network=corelet_network
        )
        accuracy_samples = np.zeros(
            (self.repeats, len(self.copy_levels), len(self.spf_levels))
        )
        for repeat_index, grid_cumulative in enumerate(tensors):
            for i, copies in enumerate(self.copy_levels):
                for j, spf in enumerate(self.spf_levels):
                    merged = grid_cumulative[copies - 1, spf - 1]
                    predictions = merged.argmax(axis=1)
                    accuracy_samples[repeat_index, i, j] = accuracy_score(
                        labels, predictions
                    )
        # cores_per_network comes from the architecture directly, so a
        # cache-served run never rebuilds the corelets.
        cores_per_copy = model.architecture.cores_per_network
        cores = np.array([c * cores_per_copy for c in self.copy_levels])
        return SweepResult(
            copy_levels=self.copy_levels,
            spf_levels=self.spf_levels,
            mean_accuracy=accuracy_samples.mean(axis=0),
            std_accuracy=accuracy_samples.std(axis=0),
            cores=cores,
            repeats=self.repeats,
            label=label,
        )
