"""SweepRunner: one-pass evaluation of a whole (copies, spf) grid.

The sweep drivers of Figures 7-9 and Table 2 all need deployed accuracy over
a grid of spatial x temporal duplication levels.  :class:`SweepRunner` wires
the pieces together on top of :class:`repro.eval.engine.VectorizedEvaluator`:

* the corelets are built once and the *largest* copy count is deployed once
  per repeat;
* the input frames are encoded once per repeat (streamed in chunks so the
  spike volume never fully materializes) and pushed through all copies in a
  single vectorized pass;
* every smaller grid point is derived from cumulative sums of the score
  tensor (the scores of a 16-copy, 4-spf deployment contain those of every
  nested configuration — just sum fewer copies / fewer frames);
* repeated evaluations of the same (model, grid, seed) are served from a
  results cache keyed by ``(model fingerprint, copies, spf, seed)``, which
  the experiment drivers share when they re-sweep the same trained model
  (e.g. Figure 7 feeding Figure 8, or Figure 9(a) probing several spf levels
  of the same Table 2 procedure);
* with ``cache_dir`` set, score tensors additionally persist to disk as
  ``.npz`` entries (:class:`DiskScoreCache`), written with an atomic rename
  so concurrent sweep processes can share one cache directory — a serve-style
  workload restarting its workers re-reads instead of re-evaluating;
* with ``workers=N``, :meth:`SweepRunner.run` fans the independent
  per-repeat deployment+evaluation passes over a ``ProcessPoolExecutor``.
  The child generators are spawned in the parent exactly as the serial path
  spawns them, so parallel results are bit-identical to serial ones and land
  in the same (memory + disk) cache.

Caching only engages for integer seeds — a caller-supplied generator has
hidden state, so results evaluated from one are never reused.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import threading
import weakref
import zipfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.model import TrueNorthModel
from repro.datasets.base import Dataset
from repro.eval.engine import VectorizedEvaluator
from repro.mapping.corelet import CoreletNetwork, build_corelets
from repro.mapping.duplication import deploy_with_copies
from repro.nn.metrics import accuracy_score
from repro.utils.rng import RngLike, new_rng, spawn_rngs


#: Memoized fingerprints keyed by object identity.  Models and datasets are
#: de-facto immutable once built (Dataset is a frozen dataclass), but they
#: hold numpy arrays and thus are unhashable, so this is an ``id()`` table
#: with a weak reference guarding against id reuse after garbage collection.
_FINGERPRINT_MEMO: Dict[int, Tuple["weakref.ref", str]] = {}


def _memoized_fingerprint(obj, compute: Callable[[], str], hashed_arrays) -> str:
    """Content hash memoized per object identity.

    The memo is only sound if the hashed content does not change under it,
    so the arrays that went into the hash are frozen (``writeable = False``)
    as a best-effort guard: a direct in-place mutation afterwards raises
    instead of silently serving cached scores for the pre-mutation object.
    Objects holding view arrays are never memoized (their base buffer stays
    writable; the hash is recomputed per call, the pre-memo behaviour).
    The guard is not airtight — writing through a view taken *before* the
    first fingerprint call, or replacing a list slot with a new array,
    bypasses it — so trained models and evaluation datasets must be treated
    as immutable once they enter the evaluation layer, which everything in
    this package does.
    """
    entry = _FINGERPRINT_MEMO.get(id(obj))
    if entry is not None and entry[0]() is obj:
        return entry[1]
    fingerprint = compute()
    if any(array.base is not None for array in hashed_arrays):
        return fingerprint
    if len(_FINGERPRINT_MEMO) > 64:
        for key in [k for k, (ref, _) in _FINGERPRINT_MEMO.items() if ref() is None]:
            del _FINGERPRINT_MEMO[key]
    try:
        _FINGERPRINT_MEMO[id(obj)] = (weakref.ref(obj), fingerprint)
    except TypeError:
        return fingerprint  # no weak references; recompute next time
    for array in hashed_arrays:
        array.flags.writeable = False
    return fingerprint


def model_fingerprint(model: TrueNorthModel) -> str:
    """Stable content hash of a trained model (architecture + weights).

    Memoized per model instance so repeated sweeps of the same trained model
    (the cache-hit path of serve-style workloads) do not re-hash the full
    weight tensors on every request.  Side effect: the hashed weight arrays
    are frozen (``writeable = False``) to keep the memo sound — treat a
    model as immutable once it has been evaluated.
    """

    def compute() -> str:
        digest = hashlib.sha256()
        arch = model.architecture
        digest.update(
            f"{arch.name}|{arch.input_dim}|{arch.num_classes}|"
            f"{arch.synaptic_value}|{len(arch.layers)}".encode()
        )
        for layer_weights in model.block_weights:
            for weights in layer_weights:
                digest.update(str(weights.shape).encode())
                digest.update(
                    np.ascontiguousarray(weights, dtype=np.float64).tobytes()
                )
        return digest.hexdigest()

    arrays = [w for layer_weights in model.block_weights for w in layer_weights]
    return _memoized_fingerprint(model, compute, arrays)


def dataset_fingerprint(dataset: Dataset) -> str:
    """Stable content hash of an evaluation dataset (features + labels).

    Memoized per dataset instance; the hashed feature/label arrays are
    frozen to keep the memo sound (see :func:`model_fingerprint`).
    """

    def compute() -> str:
        digest = hashlib.sha256()
        features = np.ascontiguousarray(dataset.features, dtype=np.float64)
        labels = np.ascontiguousarray(dataset.labels)
        digest.update(str(features.shape).encode())
        digest.update(features.tobytes())
        digest.update(labels.tobytes())
        return digest.hexdigest()

    return _memoized_fingerprint(
        dataset, compute, (dataset.features, dataset.labels)
    )


class ScoreCache:
    """In-memory cache of evaluated score tensors.

    Keys are ``(model fingerprint, max copies, max spf, seed, repeats,
    dataset fingerprint)`` — everything that determines the evaluated score
    grid.
    Values are the per-repeat cumulative score tensors, from which any nested
    (copies, spf) sub-grid can be read off without re-deploying anything.

    Safe to share across threads (the serve worker pool shares one cache):
    the eviction read-modify-write in :meth:`put` and the hit/miss counters
    are guarded by a lock.
    """

    def __init__(self, max_entries: int = 16):
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.max_entries = max_entries
        self._entries: Dict[Tuple, List[np.ndarray]] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: Tuple) -> Optional[List[np.ndarray]]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self.hits += 1
            return entry

    def put(self, key: Tuple, value: List[np.ndarray]) -> None:
        # Cached tensors are handed out by reference; freeze them so a caller
        # mutating a returned array cannot silently poison later sweeps.
        for array in value:
            array.flags.writeable = False
        with self._lock:
            if key not in self._entries and len(self._entries) >= self.max_entries:
                # Drop the oldest entry (insertion order) to bound memory.
                oldest = next(iter(self._entries))
                del self._entries[oldest]
            self._entries[key] = value

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)


#: Default cache shared by every :class:`SweepRunner` that is not given one.
GLOBAL_SCORE_CACHE = ScoreCache(max_entries=16)


class DiskScoreCache:
    """Persistent on-disk score cache, safe to share across processes.

    Each entry is one ``.npz`` file holding the per-repeat cumulative score
    tensors of a fully-keyed evaluation.  The filename is the SHA-256 of the
    cache key — ``(model fingerprint, max copies, max spf, seed, repeats,
    dataset fingerprint)``, the same tuple :class:`ScoreCache` uses — so two
    processes sweeping the same configuration resolve to the same file.
    Writes go to a temporary file in the cache directory followed by an
    atomic ``os.replace``: a concurrent reader sees either nothing or a
    complete entry, never a torn one, and the last concurrent writer of
    identical content simply wins.

    With ``max_bytes`` set the cache is size-bounded: every write (and any
    explicit :meth:`prune` call) evicts least-recently-used entries —
    oldest mtime first; reads touch the mtime so hot entries survive —
    until the directory's ``scores-*.npz`` total is back under the bound.
    The newest entry is never evicted, so one oversized tensor degrades the
    cache to a single entry instead of thrashing it to zero.
    """

    def __init__(self, cache_dir: str, max_bytes: Optional[int] = None):
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.cache_dir = str(cache_dir)
        self.max_bytes = max_bytes
        os.makedirs(self.cache_dir, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _path(self, key: Tuple) -> str:
        digest = hashlib.sha256(repr(key).encode()).hexdigest()
        return os.path.join(self.cache_dir, f"scores-{digest}.npz")

    def contains(self, key: Tuple) -> bool:
        """Whether an entry for ``key`` is on disk (no content validation)."""
        return os.path.exists(self._path(key))

    def get(self, key: Tuple) -> Optional[List[np.ndarray]]:
        path = self._path(key)
        try:
            with np.load(path) as entry:
                count = int(entry["repeat_count"])
                tensors = [entry[f"repeat_{i}"] for i in range(count)]
        except (
            FileNotFoundError,
            KeyError,
            ValueError,
            OSError,
            EOFError,
            zipfile.BadZipFile,
        ):
            # A torn or corrupt entry (e.g. a crash between write and
            # fsync) is a miss: the caller recomputes and overwrites it.
            self.misses += 1
            return None
        self.hits += 1
        try:
            # Touch the entry so mtime-LRU eviction treats it as recent.
            os.utime(path)
        except OSError:
            pass
        return tensors

    def put(self, key: Tuple, value: List[np.ndarray]) -> None:
        path = self._path(key)
        arrays = {f"repeat_{i}": tensor for i, tensor in enumerate(value)}
        arrays["repeat_count"] = np.asarray(len(value))
        handle, tmp_path = tempfile.mkstemp(
            dir=self.cache_dir, prefix=".tmp-scores-", suffix=".npz"
        )
        try:
            with os.fdopen(handle, "wb") as stream:
                np.savez_compressed(stream, **arrays)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        if self.max_bytes is not None:
            self.prune()

    def prune(self, max_bytes: Optional[int] = None) -> int:
        """Evict least-recently-used entries until the cache fits the bound.

        Args:
            max_bytes: size bound to enforce; defaults to the instance's
                ``max_bytes`` (a no-op when neither is set).

        Returns:
            number of bytes freed.  Entries are removed oldest-mtime first
            (reads refresh mtime, so this is LRU); the most recent entry is
            always kept.  Races with concurrent writers/readers are benign:
            a vanished file is skipped, and an evicted entry is simply a
            future cache miss.
        """
        limit = self.max_bytes if max_bytes is None else max_bytes
        if limit is None:
            return 0
        entries = []
        for name in os.listdir(self.cache_dir):
            if not (name.startswith("scores-") and name.endswith(".npz")):
                continue
            path = os.path.join(self.cache_dir, name)
            try:
                stat = os.stat(path)
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        entries.sort()  # oldest mtime first
        total = sum(size for _, size, _ in entries)
        freed = 0
        for _, size, path in entries[:-1]:  # never evict the newest entry
            if total <= limit:
                break
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            freed += size
            self.evictions += 1
        return freed

    def __len__(self) -> int:
        return len(
            [
                name
                for name in os.listdir(self.cache_dir)
                if name.startswith("scores-") and name.endswith(".npz")
            ]
        )


def parallel_map(
    fn: Callable[..., object],
    argument_tuples: Sequence[Tuple],
    workers: Optional[int],
) -> List:
    """Map a picklable function over argument tuples, optionally in processes.

    The shared fan-out primitive of the evaluation layer: with ``workers=N``
    (N > 1) and more than one work item, the calls run on a
    ``ProcessPoolExecutor`` capped at ``min(workers, len(items))``;
    otherwise they run serially in-process.  Results come back in submission
    order either way, so callers are bit-identical under any worker count —
    all randomness must enter through the argument tuples (generators
    spawned in the parent), never be drawn in the children.

    Which axis to shard over is the caller's choice of work unit:
    :class:`SweepRunner` fans out *repeats* (each repeat is one independent
    deployment + vectorized pass; every (copies, spf) cell is a nested
    prefix of its repeat's tensor), while the chip backend — whose single
    pass already folds all repeats into the stacked copy axis — fans out
    *spf levels*, the only remaining per-pass axis.
    """
    items = list(argument_tuples)
    if workers is not None and workers > 1 and len(items) > 1:
        with ProcessPoolExecutor(max_workers=min(workers, len(items))) as pool:
            futures = [pool.submit(fn, *args) for args in items]
            return [future.result() for future in futures]
    return [fn(*args) for args in items]


def _evaluate_repeat(
    model: TrueNorthModel,
    features: np.ndarray,
    max_copies: int,
    max_spf: int,
    chunk_frames: Optional[int],
    repeat_rng: np.random.Generator,
    corelet_network: CoreletNetwork,
) -> np.ndarray:
    """One repeat's cumulative score tensor (module-level for picklability).

    This is the unit of work the worker pool distributes: one independent
    deployment (``max_copies`` sampled connectivities) plus one evaluation
    pass, consuming ``repeat_rng`` exactly as the serial loop does.
    """
    deployment = deploy_with_copies(
        model, copies=max_copies, rng=repeat_rng, corelet_network=corelet_network
    )
    evaluator = VectorizedEvaluator(deployment.copies)
    scores = evaluator.evaluate_scores(
        features, max_spf, rng=repeat_rng, chunk_frames=chunk_frames
    )  # (copies, spf, batch, classes)
    return np.cumsum(np.cumsum(scores, axis=0), axis=1)


@dataclass
class SweepRunner:
    """Evaluates a trained model over a (copies, spf) grid in one pass.

    Args:
        copy_levels: spatial duplication levels to report (deduplicated and
            sorted ascending).
        spf_levels: temporal duplication levels to report.
        repeats: independent deployment + encoding repeats averaged per grid
            point.
        max_samples: optional cap on evaluated samples.
        chunk_frames: spike frames encoded per streaming chunk (``None`` =
            automatic).
        cache: results cache; ``None`` uses the module-level
            :data:`GLOBAL_SCORE_CACHE`.
        cache_dir: optional directory for a persistent
            :class:`DiskScoreCache` shared across processes and runs;
            ``None`` (default) keeps caching in-memory only.
        cache_max_bytes: optional size bound for ``cache_dir``; writes
            evict least-recently-used entries past it so long-lived cache
            directories stop growing unboundedly.
    """

    copy_levels: Sequence[int] = (1, 2, 4, 8, 16)
    spf_levels: Sequence[int] = (1, 2, 3, 4)
    repeats: int = 3
    max_samples: Optional[int] = None
    chunk_frames: Optional[int] = None
    cache: Optional[ScoreCache] = None
    cache_dir: Optional[str] = None
    cache_max_bytes: Optional[int] = None

    def __post_init__(self):
        self.copy_levels = tuple(sorted(set(int(c) for c in self.copy_levels)))
        self.spf_levels = tuple(sorted(set(int(s) for s in self.spf_levels)))
        if not self.copy_levels or self.copy_levels[0] <= 0:
            raise ValueError("copy_levels must be positive integers")
        if not self.spf_levels or self.spf_levels[0] <= 0:
            raise ValueError("spf_levels must be positive integers")
        if self.repeats <= 0:
            raise ValueError(f"repeats must be positive, got {self.repeats}")
        if self.cache is None:
            self.cache = GLOBAL_SCORE_CACHE
        self.disk_cache: Optional[DiskScoreCache] = (
            DiskScoreCache(self.cache_dir, max_bytes=self.cache_max_bytes)
            if self.cache_dir is not None
            else None
        )
        self._take_memo: Optional[Tuple["weakref.ref", int, Dataset]] = None

    def _evaluation_view(self, dataset: Dataset) -> Dataset:
        """The (possibly capped) evaluation dataset, memoized per source.

        ``dataset.take`` builds a fresh object per call, which would defeat
        the per-instance fingerprint memo on every request of a serve-style
        workload; reusing the taken view keeps the cache-hit path hash-free.
        The memo is keyed on (source identity, ``max_samples``) so changing
        the cap on a live runner takes effect.
        """
        if self.max_samples is None:
            return dataset
        if (
            self._take_memo is not None
            and self._take_memo[0]() is dataset
            and self._take_memo[1] == self.max_samples
        ):
            return self._take_memo[2]
        taken = dataset.take(self.max_samples)
        try:
            self._take_memo = (weakref.ref(dataset), self.max_samples, taken)
        except TypeError:
            self._take_memo = None
        return taken

    # ------------------------------------------------------------------
    def cumulative_scores(
        self,
        model: TrueNorthModel,
        dataset: Dataset,
        rng: RngLike = None,
        corelet_network: Optional[CoreletNetwork] = None,
        workers: Optional[int] = None,
    ) -> List[np.ndarray]:
        """Per-repeat cumulative score tensors of the largest configuration.

        Each returned array has shape ``(max_copies, max_spf, batch,
        num_classes)`` and holds ``cumsum`` over the copy and frame axes, so
        ``tensor[c - 1, s - 1]`` is the accumulated score of a (c, s)
        deployment.  Served from the in-memory cache — and, when
        ``cache_dir`` is set, from the persistent disk cache — when the same
        (model, grid, seed) was evaluated before.

        With ``workers=N`` the independent per-repeat passes (each one full
        deployment + evaluation; every (copies, spf) grid cell is a nested
        prefix of its repeat's tensor, so repeats are the parallel unit) are
        fanned over a ``ProcessPoolExecutor``.  The child generators are
        spawned in the parent exactly as the serial loop spawns them, so the
        results are bit-identical to ``workers=None``.
        """
        evaluation = self._evaluation_view(dataset)
        max_copies = self.copy_levels[-1]
        max_spf = self.spf_levels[-1]
        key = None
        # Only an explicit integer seed is cacheable: rng=None means fresh
        # entropy (each call must be an independent random sample) and a
        # caller-supplied generator has hidden state.
        if isinstance(rng, int) and not isinstance(rng, bool):
            key = (
                model_fingerprint(model),
                max_copies,
                max_spf,
                rng,
                self.repeats,
                dataset_fingerprint(evaluation),
            )
        if key is not None:
            cached = self.cache.get(key)
            if cached is not None:
                # Backfill the disk cache: the memory entry may predate this
                # runner's cache_dir (e.g. the shared GLOBAL_SCORE_CACHE was
                # populated by a runner without one), and persistence is the
                # whole point of configuring a cache directory.
                if self.disk_cache is not None and not self.disk_cache.contains(key):
                    self.disk_cache.put(key, list(cached))
                return cached
            if self.disk_cache is not None:
                persisted = self.disk_cache.get(key)
                if persisted is not None:
                    self.cache.put(key, persisted)
                    return persisted
        network = corelet_network or build_corelets(model)
        repeat_rngs = spawn_rngs(new_rng(rng), self.repeats)
        tensors = parallel_map(
            _evaluate_repeat,
            [
                (
                    model,
                    evaluation.features,
                    max_copies,
                    max_spf,
                    self.chunk_frames,
                    repeat_rng,
                    network,
                )
                for repeat_rng in repeat_rngs
            ],
            workers,
        )
        if key is not None:
            if self.disk_cache is not None:
                self.disk_cache.put(key, tensors)
            self.cache.put(key, tensors)
        return tensors

    def run(
        self,
        model: TrueNorthModel,
        dataset: Dataset,
        rng: RngLike = None,
        label: str = "",
        corelet_network: Optional[CoreletNetwork] = None,
        workers: Optional[int] = None,
    ):
        """Full grid sweep; returns a :class:`repro.eval.sweep.SweepResult`.

        ``workers=N`` distributes the per-repeat evaluation passes over N
        processes (see :meth:`cumulative_scores`); results are bit-identical
        to the serial path and merge into the same caches.
        """
        from repro.eval.sweep import SweepResult

        evaluation = self._evaluation_view(dataset)
        labels = evaluation.labels
        tensors = self.cumulative_scores(
            model, dataset, rng=rng, corelet_network=corelet_network, workers=workers
        )
        accuracy_samples = np.zeros(
            (self.repeats, len(self.copy_levels), len(self.spf_levels)),
            dtype=np.float64,
        )
        for repeat_index, grid_cumulative in enumerate(tensors):
            for i, copies in enumerate(self.copy_levels):
                for j, spf in enumerate(self.spf_levels):
                    merged = grid_cumulative[copies - 1, spf - 1]
                    predictions = merged.argmax(axis=1)
                    accuracy_samples[repeat_index, i, j] = accuracy_score(
                        labels, predictions
                    )
        # cores_per_network comes from the architecture directly, so a
        # cache-served run never rebuilds the corelets.
        cores_per_copy = model.architecture.cores_per_network
        cores = np.array([c * cores_per_copy for c in self.copy_levels])
        return SweepResult(
            copy_levels=self.copy_levels,
            spf_levels=self.spf_levels,
            mean_accuracy=accuracy_samples.mean(axis=0),
            std_accuracy=accuracy_samples.std(axis=0),
            cores=cores,
            repeats=self.repeats,
            label=label,
        )
