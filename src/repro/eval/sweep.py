"""Accuracy sweeps over the (copies, spikes-per-frame) grid (Figures 7-8).

Evaluating every grid point independently would redo most of the work: the
class scores of a 16-copy, 4-spf deployment already contain the scores of
every smaller configuration (just sum fewer copies / fewer frames).  The
sweep therefore evaluates the largest configuration once per repeat and
derives every grid point from cumulative sums, exactly reproducing what an
independent evaluation of each point would measure for nested subsets of
copies and frames.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.model import TrueNorthModel
from repro.datasets.base import Dataset
from repro.mapping.corelet import build_corelets
from repro.mapping.deploy import evaluate_deployed_scores
from repro.mapping.duplication import deploy_with_copies
from repro.nn.metrics import accuracy_score
from repro.utils.rng import RngLike, new_rng, spawn_rngs


@dataclass(frozen=True)
class SweepResult:
    """Accuracy over a (copies, spf) grid.

    Attributes:
        copy_levels: evaluated numbers of network copies (ascending).
        spf_levels: evaluated spikes-per-frame values (ascending).
        mean_accuracy: array of shape (len(copy_levels), len(spf_levels)).
        std_accuracy: matching standard deviations over the repeats.
        cores: total cores occupied at each copy level (1-D array).
        repeats: number of repeats averaged at each grid point.
        label: free-form name of the swept model (e.g. "tea" / "biased").
    """

    copy_levels: Tuple[int, ...]
    spf_levels: Tuple[int, ...]
    mean_accuracy: np.ndarray
    std_accuracy: np.ndarray
    cores: np.ndarray
    repeats: int
    label: str = ""

    def accuracy_at(self, copies: int, spikes_per_frame: int) -> float:
        """Mean accuracy of one grid point."""
        row = self.copy_levels.index(copies)
        col = self.spf_levels.index(spikes_per_frame)
        return float(self.mean_accuracy[row, col])

    def as_rows(self) -> list:
        """Flatten the grid into (copies, spf, cores, accuracy, std) rows."""
        rows = []
        for i, copies in enumerate(self.copy_levels):
            for j, spf in enumerate(self.spf_levels):
                rows.append(
                    (
                        copies,
                        spf,
                        int(self.cores[i]),
                        float(self.mean_accuracy[i, j]),
                        float(self.std_accuracy[i, j]),
                    )
                )
        return rows


def accuracy_sweep(
    model: TrueNorthModel,
    dataset: Dataset,
    copy_levels: Sequence[int] = (1, 2, 4, 8, 16),
    spf_levels: Sequence[int] = (1, 2, 3, 4),
    repeats: int = 3,
    rng: RngLike = None,
    max_samples: Optional[int] = None,
    label: str = "",
) -> SweepResult:
    """Measure deployed accuracy across a grid of duplication levels.

    Args:
        model: trained model to deploy.
        dataset: evaluation dataset.
        copy_levels: spatial duplication levels to report (ascending).
        spf_levels: temporal duplication levels to report (ascending).
        repeats: independent repeats averaged per grid point.
        rng: root randomness.
        max_samples: optional cap on evaluated samples.
        label: name recorded in the result.

    Returns:
        a :class:`SweepResult` covering the full grid.
    """
    copy_levels = tuple(sorted(set(int(c) for c in copy_levels)))
    spf_levels = tuple(sorted(set(int(s) for s in spf_levels)))
    if not copy_levels or copy_levels[0] <= 0:
        raise ValueError("copy_levels must be positive integers")
    if not spf_levels or spf_levels[0] <= 0:
        raise ValueError("spf_levels must be positive integers")
    if repeats <= 0:
        raise ValueError(f"repeats must be positive, got {repeats}")

    evaluation = dataset if max_samples is None else dataset.take(max_samples)
    network = build_corelets(model)
    max_copies = copy_levels[-1]
    max_spf = spf_levels[-1]
    labels = evaluation.labels

    accuracy_samples = np.zeros((repeats, len(copy_levels), len(spf_levels)))
    for repeat_index, repeat_rng in enumerate(spawn_rngs(new_rng(rng), repeats)):
        deployment = deploy_with_copies(
            model, copies=max_copies, rng=repeat_rng, corelet_network=network
        )
        scores = evaluate_deployed_scores(
            deployment.copies,
            evaluation.features,
            spikes_per_frame=max_spf,
            rng=repeat_rng,
        )  # (copies, spf, batch, classes)
        copy_cumulative = np.cumsum(scores, axis=0)
        grid_cumulative = np.cumsum(copy_cumulative, axis=1)
        for i, copies in enumerate(copy_levels):
            for j, spf in enumerate(spf_levels):
                merged = grid_cumulative[copies - 1, spf - 1]
                predictions = merged.argmax(axis=1)
                accuracy_samples[repeat_index, i, j] = accuracy_score(
                    labels, predictions
                )

    cores = np.array([c * network.core_count for c in copy_levels])
    return SweepResult(
        copy_levels=copy_levels,
        spf_levels=spf_levels,
        mean_accuracy=accuracy_samples.mean(axis=0),
        std_accuracy=accuracy_samples.std(axis=0),
        cores=cores,
        repeats=repeats,
        label=label,
    )


def accuracy_boost(ours: SweepResult, baseline: SweepResult) -> np.ndarray:
    """Accuracy improvement grid ``ours - baseline`` (Figure 8).

    Both sweeps must cover the same grid.
    """
    if ours.copy_levels != baseline.copy_levels or ours.spf_levels != baseline.spf_levels:
        raise ValueError("sweeps must cover the same (copies, spf) grid")
    return ours.mean_accuracy - baseline.mean_accuracy
