"""Accuracy sweeps over the (copies, spikes-per-frame) grid (Figures 7-8).

Evaluating every grid point independently would redo most of the work: the
class scores of a 16-copy, 4-spf deployment already contain the scores of
every smaller configuration (just sum fewer copies / fewer frames).  The
sweep therefore evaluates the largest configuration once per repeat — on the
vectorized engine (:mod:`repro.eval.engine`), via
:class:`repro.eval.runner.SweepRunner` — and derives every grid point from
cumulative sums, exactly reproducing what an independent evaluation of each
point would measure for nested subsets of copies and frames.

:func:`accuracy_sweep` is the stable functional entry point; construct a
:class:`~repro.eval.runner.SweepRunner` directly to share its score cache
across several sweeps of the same model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.model import TrueNorthModel
from repro.datasets.base import Dataset
from repro.eval.runner import ScoreCache, SweepRunner
from repro.utils.rng import RngLike


@dataclass(frozen=True)
class SweepResult:
    """Accuracy over a (copies, spf) grid.

    Attributes:
        copy_levels: evaluated numbers of network copies (ascending).
        spf_levels: evaluated spikes-per-frame values (ascending).
        mean_accuracy: array of shape (len(copy_levels), len(spf_levels)).
        std_accuracy: matching standard deviations over the repeats.
        cores: total cores occupied at each copy level (1-D array).
        repeats: number of repeats averaged at each grid point.
        label: free-form name of the swept model (e.g. "tea" / "biased").
    """

    copy_levels: Tuple[int, ...]
    spf_levels: Tuple[int, ...]
    mean_accuracy: np.ndarray
    std_accuracy: np.ndarray
    cores: np.ndarray
    repeats: int
    label: str = ""

    def accuracy_at(self, copies: int, spikes_per_frame: int) -> float:
        """Mean accuracy of one grid point."""
        row = self.copy_levels.index(copies)
        col = self.spf_levels.index(spikes_per_frame)
        return float(self.mean_accuracy[row, col])

    def as_rows(self) -> list:
        """Flatten the grid into (copies, spf, cores, accuracy, std) rows."""
        rows = []
        for i, copies in enumerate(self.copy_levels):
            for j, spf in enumerate(self.spf_levels):
                rows.append(
                    (
                        copies,
                        spf,
                        int(self.cores[i]),
                        float(self.mean_accuracy[i, j]),
                        float(self.std_accuracy[i, j]),
                    )
                )
        return rows


def accuracy_sweep(
    model: TrueNorthModel,
    dataset: Dataset,
    copy_levels: Sequence[int] = (1, 2, 4, 8, 16),
    spf_levels: Sequence[int] = (1, 2, 3, 4),
    repeats: int = 3,
    rng: RngLike = None,
    max_samples: Optional[int] = None,
    label: str = "",
    cache: Optional[ScoreCache] = None,
) -> SweepResult:
    """Measure deployed accuracy across a grid of duplication levels.

    Thin functional wrapper over :class:`repro.eval.runner.SweepRunner`.

    Args:
        model: trained model to deploy.
        dataset: evaluation dataset.
        copy_levels: spatial duplication levels to report (ascending).
        spf_levels: temporal duplication levels to report (ascending).
        repeats: independent repeats averaged per grid point.
        rng: root randomness.
        max_samples: optional cap on evaluated samples.
        label: name recorded in the result.
        cache: optional score cache shared with other sweeps of the same
            model (``None`` uses the global cache).

    Returns:
        a :class:`SweepResult` covering the full grid.
    """
    runner = SweepRunner(
        copy_levels=copy_levels,
        spf_levels=spf_levels,
        repeats=repeats,
        max_samples=max_samples,
        cache=cache,
    )
    return runner.run(model, dataset, rng=rng, label=label)


def accuracy_boost(ours: SweepResult, baseline: SweepResult) -> np.ndarray:
    """Accuracy improvement grid ``ours - baseline`` (Figure 8).

    Both sweeps must cover the same grid.
    """
    if ours.copy_levels != baseline.copy_levels or ours.spf_levels != baseline.spf_levels:
        raise ValueError("sweeps must cover the same (copies, spf) grid")
    return ours.mean_accuracy - baseline.mean_accuracy
