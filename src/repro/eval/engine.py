"""Vectorized multi-copy evaluation engine — the hot path of Figures 7-9.

The paper's evaluation sweeps push hundreds of stochastic spike frames
through up to 16 independently sampled network copies.  Doing that one
(copy, frame, corelet) triple at a time — the original
``evaluate_deployed_scores`` loop — re-gathers every corelet's input block
per call and launches a tiny matmul per (copy, frame, corelet).  This engine
removes all of those loops:

* :class:`VectorizedEvaluator` stacks every copy's sampled weights per
  corelet into one 3-D ``(copies, axons, neurons)`` tensor and propagates
  the entire ``(frames x batch)`` spike volume through all copies at once —
  one matmul per corelet per layer.  For the first layer (whose input
  spikes are shared by all copies: a splitter fans one stream out on
  hardware) the copies are folded into the output axis, so each corelet is
  a single large ``(volume, axons) @ (axons, copies * neurons)`` GEMM.
* The active-synapse firing gate is folded into the weights: propagation
  uses ``A = W + 2**-9 * |W|`` and fires iff ``x @ A > 0``, which equals
  ``(x @ W >= 0) and (x @ |W| > 0)`` exactly (see below) — no second
  mask matmul on the common path.
* :meth:`VectorizedEvaluator.evaluate_scores` streams the stochastic
  encoding in chunks along the spikes-per-frame axis, so the full
  ``spf x batch x features`` spike tensor never materializes, while drawing
  the exact same random stream the one-shot encoder would.

Scoring convention
------------------

Deployed class scores are **per-class means** of the readout spikes: neuron
``j`` assigned to class ``k`` contributes ``spike_j / n_k`` where ``n_k`` is
the number of readout neurons of class ``k`` — the same ``1/n_k`` merge the
float model applies via :meth:`repro.core.model.NetworkArchitecture.merge_matrix`
and :class:`repro.encoding.decoder.SpikeCountDecoder` applies to chip spike
counts.  (The pre-fix deployed path summed instead, which inflated classes
holding an extra readout neuron whenever ``output_dim % num_classes != 0``
and made deployed scores incomparable with the float model's.)

Firing rule
-----------

A neuron spikes iff its weighted sum satisfies ``y' >= 0`` *and* at least
one ON synapse received a spike this tick.  A neuron whose synapses all
sampled OFF — or any neuron on an all-zero input frame — stays silent,
matching the gated hardware rule in :mod:`repro.truenorth` (the equivalence
test checks the two spike for spike).

Exactness
---------

Sampled weights are ``0`` or ``+/-c`` with one magnitude ``c`` per network,
and spikes are 0/1, so every weighted sum is ``c`` times a small integer.
The folded gate adds ``2**-9 * c * active`` where ``active <= 256`` is the
number of contributing synapses; the perturbation is at most ``c / 2``, so
``x @ A > 0`` reproduces the two-term rule exactly: a non-negative sum with
at least one active synapse lands at ``>= 2**-9 * c``, a silent crossbar at
exactly ``0``, and a negative sum at ``<= -c / 2``.  For ``c = 1`` every
quantity is a multiple of ``2**-9`` well below 2**53, making the engine
bit-identical to the per-corelet reference loop
(:func:`evaluate_scores_reference`) regardless of accumulation order.
Networks with mixed synaptic magnitudes (not produced by the paper's
mapping, but constructible by hand) fall back to an explicit two-matmul
weights-plus-mask path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, TYPE_CHECKING

import numpy as np

from repro.encoding.stochastic import StochasticEncoder
from repro.mapping.corelet import CoreletNetwork
from repro.utils.rng import RngLike, new_rng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (deploy imports us)
    from repro.mapping.deploy import DeployedNetwork

#: Gate perturbation: with at most 256 axons per core, ``2**-9 * active`` is
#: at most 1/2, strictly below the smallest nonzero |weighted sum| (one
#: synaptic magnitude), so folding never flips the sign test.
GATE_EPS = 2.0**-9


@dataclass(frozen=True)
class _StackedCorelet:
    """One corelet's weights stacked over all copies.

    Attributes:
        rows: global input-channel indices of the corelet's axons.
        cols: global output-channel indices of the corelet's neurons.
        shared_folded: for first-layer corelets (shared input spikes):
            gate-folded weights of shape ``(axons, copies * neurons)`` —
            copies folded into the output axis for a single GEMM.  ``None``
            on the fallback path.
        batched_folded: for deeper corelets (per-copy input spikes):
            gate-folded weights of shape ``(copies, axons, neurons)``.
            ``None`` on the fallback path or for first-layer corelets.
        weights / mask: explicit ``(copies, axons, neurons)`` weight and
            ON-synapse tensors, kept only on the mixed-magnitude fallback
            path (both ``None`` when the gate is folded).
    """

    rows: np.ndarray
    cols: np.ndarray
    col_index: object  # slice for contiguous output channels, else the array
    shared_folded: Optional[np.ndarray]
    batched_folded: Optional[np.ndarray]
    weights: Optional[np.ndarray]
    mask: Optional[np.ndarray]


def _fold_exact(magnitude: float) -> bool:
    """True when the folded float32 gate is exact for this synaptic magnitude.

    The folded path computes ``y = c * (k + active * 2**-9)`` in float32 and
    tests ``y > 0``; that is exact when every partial sum is a float32-exact
    multiple of ``c * 2**-9``, which holds for small-integer and
    power-of-two magnitudes (``|k| <= 256``, ``active <= 256`` keep the
    integer part below 2**24).  Other magnitudes (never produced by the
    paper's Eq. (7) mapping, which uses c = 1) accumulate rounding error
    that could flip a marginal decision, so they take the explicit
    weights-plus-mask fallback instead.
    """
    if magnitude == 0.0:
        return True
    mantissa, _ = math.frexp(magnitude)
    if mantissa == 0.5:  # exact power of two
        return True
    return magnitude == int(magnitude) and magnitude <= 1024.0


def _as_slice(indices: np.ndarray):
    """A ``slice`` covering ``indices`` when they are contiguous ascending
    (the layout ``build_corelets`` produces), else the index array itself —
    slice assignment avoids fancy-indexing overhead on the hot path."""
    if indices.size and np.array_equal(
        indices, np.arange(indices[0], indices[0] + indices.size)
    ):
        return slice(int(indices[0]), int(indices[0]) + indices.size)
    return indices


def _same_structure(a: CoreletNetwork, b: CoreletNetwork) -> bool:
    """True when two corelet networks describe the same wiring.

    Copies deployed without a shared pre-built network rebuild their corelets
    independently; they can still be stacked as long as every corelet's input
    and output channels line up.
    """
    if (
        a.input_dim != b.input_dim
        or a.num_classes != b.num_classes
        or a.layer_count != b.layer_count
        or not np.array_equal(a.class_assignment, b.class_assignment)
    ):
        return False
    for layer_a, layer_b in zip(a.corelets, b.corelets):
        if len(layer_a) != len(layer_b):
            return False
        for corelet_a, corelet_b in zip(layer_a, layer_b):
            if (
                corelet_a.input_channels != corelet_b.input_channels
                or corelet_a.output_channels != corelet_b.output_channels
            ):
                return False
    return True


def class_merge_weights(network: CoreletNetwork) -> np.ndarray:
    """Class-membership indicator matrix ``(out_dim, num_classes)``.

    ``scores = (spikes @ indicator) / class_counts`` is the class-mean
    merge; the integer-summing matmul followed by one division keeps the
    result bit-identical across evaluation strategies (summation of integers
    in float64 is exact in any order).
    """
    assignment = np.asarray(network.class_assignment, dtype=np.int64)
    indicator = np.zeros((assignment.size, network.num_classes), dtype=np.float64)
    indicator[np.arange(assignment.size), assignment] = 1.0
    return indicator


def class_counts(network: CoreletNetwork) -> np.ndarray:
    """Readout-neuron count per class (``n_k``)."""
    return np.bincount(
        np.asarray(network.class_assignment, dtype=np.int64),
        minlength=network.num_classes,
    ).astype(np.float64)


class VectorizedEvaluator:
    """Evaluates many deployed copies of one corelet network at once.

    Args:
        copies: deployed copies to stack.  All copies must share the same
            corelet-network structure (the normal situation —
            :func:`repro.mapping.duplication.deploy_with_copies` builds the
            corelets once and samples N connectivities from them).
    """

    def __init__(self, copies: Sequence["DeployedNetwork"]):
        copies = list(copies)
        if not copies:
            raise ValueError("at least one deployed copy is required")
        network = copies[0].corelet_network
        for copy in copies[1:]:
            if copy.corelet_network is not network and not _same_structure(
                copy.corelet_network, network
            ):
                raise ValueError(
                    "all deployed copies must share one corelet-network structure"
                )
        self.network = network
        self.copy_count = len(copies)
        # Multi-layer networks propagate copies-first (batched matmuls need
        # the copy axis leading); single-layer networks keep the volume
        # leading and never transpose.
        self._copies_first = network.layer_count > 1
        self._layers: List[List[_StackedCorelet]] = []
        self._out_dims: List[int] = []
        for depth, layer_corelets in enumerate(network.corelets):
            stacked_layer: List[_StackedCorelet] = []
            for corelet_index, corelet in enumerate(layer_corelets):
                stacked = np.stack(
                    [
                        self._validated_weights(copy, depth, corelet_index, corelet)
                        for copy in copies
                    ]
                )  # (copies, axons, neurons)
                rows = np.asarray(corelet.input_channels, dtype=np.int64)
                cols = np.asarray(corelet.output_channels, dtype=np.int64)
                magnitudes = np.abs(stacked[stacked != 0.0])
                foldable = magnitudes.size == 0 or (
                    float(magnitudes.min()) == float(magnitudes.max())
                    and _fold_exact(float(magnitudes.min()))
                )
                if foldable:
                    # Propagation runs in float32: every weighted sum is a
                    # multiple of 2**-9 * c bounded by 257 * c, far inside
                    # float32's 24-bit exact-integer range, so the spike
                    # decisions are exact (see module docstring).
                    folded = (stacked + GATE_EPS * np.abs(stacked)).astype(np.float32)
                    if depth == 0:
                        # (copies, axons, neurons) -> (axons, copies * neurons)
                        shared = np.ascontiguousarray(
                            folded.transpose(1, 0, 2).reshape(rows.size, -1)
                        )
                        entry = _StackedCorelet(
                            rows, cols, _as_slice(cols), shared, None, None, None
                        )
                    else:
                        entry = _StackedCorelet(
                            rows, cols, _as_slice(cols), None, folded, None, None
                        )
                else:
                    entry = _StackedCorelet(
                        rows,
                        cols,
                        _as_slice(cols),
                        None,
                        None,
                        stacked,
                        (stacked != 0.0).astype(np.float64),
                    )
                stacked_layer.append(entry)
            self._layers.append(stacked_layer)
            self._out_dims.append(network.layer_output_dim(depth))
        self._buffers: dict = {}
        self._merge_indicator = class_merge_weights(network)
        self._merge_indicator32 = self._merge_indicator.astype(np.float32)
        self._class_counts = class_counts(network)
        if (self._class_counts == 0).any():
            raise ValueError("every class must have at least one readout neuron")

    @staticmethod
    def _validated_weights(copy, depth, corelet_index, corelet) -> np.ndarray:
        layer = copy.sampled_weights[depth]
        if corelet_index >= len(layer):
            raise ValueError(
                f"copy is missing sampled weights for corelet "
                f"{depth}/{corelet_index}"
            )
        sampled = layer[corelet_index]
        expected = (len(corelet.input_channels), len(corelet.output_channels))
        if sampled.shape != expected:
            raise ValueError(
                f"sampled weights of corelet {depth}/{corelet.index} have "
                f"shape {sampled.shape}, expected {expected}"
            )
        return np.asarray(sampled, dtype=np.float64)

    # ------------------------------------------------------------------
    def _scratch(self, key, shape) -> np.ndarray:
        """Reused float32 work buffer (avoids large re-allocations per call).

        Buffers never escape the evaluator un-copied (``forward_spikes``
        returns a fresh array and ``class_scores`` derives fresh arrays), but
        reuse does make one evaluator instance non-reentrant: do not share
        it across threads.
        """
        buffer = self._buffers.get(key)
        if buffer is None or buffer.shape != shape:
            buffer = np.empty(shape, dtype=np.float32)
            self._buffers[key] = buffer
        return buffer

    def _forward_internal(self, spike_frames: np.ndarray) -> np.ndarray:
        """Spike propagation in the engine's internal layout.

        Single-hidden-layer networks (the paper's evaluation workhorses) keep
        the spike volume as the leading axis — ``(volume, copies, out)`` —
        so the copies-folded GEMM output reshapes in place with no transpose
        at all.  Multi-layer networks switch to ``(copies, volume, out)``
        after the first layer, because a per-copy batched matmul needs the
        copy axis leading (``np.matmul`` batches over leading axes with the
        matrix in the last two).  :attr:`_copies_first` records which layout
        the final array is in.
        """
        frames = np.asarray(spike_frames)
        if frames.ndim != 2 or frames.shape[1] != self.network.input_dim:
            raise ValueError(
                f"expected spikes of shape (frames, {self.network.input_dim}), "
                f"got {frames.shape}"
            )
        volume = frames.shape[0]
        if frames.dtype == np.float32 and frames.flags.c_contiguous:
            shared = frames
        else:
            shared = self._scratch("input", (volume, frames.shape[1]))
            np.copyto(shared, frames)
        copies_first = self._copies_first
        current: Optional[np.ndarray] = None
        for depth, stacked_layer in enumerate(self._layers):
            if depth == 0 and not copies_first:
                nxt = self._scratch(
                    depth, (volume, self.copy_count, self._out_dims[depth])
                )
            else:
                nxt = self._scratch(
                    depth, (self.copy_count, volume, self._out_dims[depth])
                )
            for entry in stacked_layer:
                if entry.shared_folded is not None:
                    # First layer, gate folded: one GEMM with copies folded
                    # into the output axis.
                    mixed = shared[:, entry.rows] @ entry.shared_folded
                    spikes = (mixed > 0.0).reshape(
                        volume, self.copy_count, entry.cols.size
                    )
                    if copies_first:
                        spikes = spikes.transpose(1, 0, 2)
                elif entry.batched_folded is not None:
                    # Deeper layer, gate folded: one batched matmul per copy —
                    # (copies, volume, axons) @ (copies, axons, neurons).
                    mixed = np.matmul(current[..., entry.rows], entry.batched_folded)
                    spikes = mixed > 0.0
                else:
                    # Mixed synaptic magnitudes: explicit weights + mask pair
                    # (float64 path, not produced by the paper's mapping).
                    if depth == 0:
                        gathered = shared[:, entry.rows].astype(np.float64)
                    else:
                        gathered = current[..., entry.rows].astype(np.float64)
                    pre = np.matmul(gathered, entry.weights)
                    active = np.matmul(gathered, entry.mask)
                    spikes = (pre >= 0.0) & (active > 0.0)  # (copies, volume, n)
                    if depth == 0 and not copies_first:
                        spikes = spikes.transpose(1, 0, 2)
                nxt[:, :, entry.col_index] = spikes
            current = nxt
        return current

    def forward_spikes(self, spike_frames: np.ndarray) -> np.ndarray:
        """Propagate shared input spikes through every copy.

        Args:
            spike_frames: binary array of shape ``(frames, input_dim)``; every
                copy sees the same realizations (on hardware a splitter fans
                one spike stream out to all copies).

        Returns:
            binary float array of shape ``(copies, frames, last_out_dim)``.
        """
        internal = self._forward_internal(spike_frames)
        if not self._copies_first:
            internal = internal.transpose(1, 0, 2)
        return np.ascontiguousarray(internal, dtype=np.float64)

    def class_scores(self, spike_frames: np.ndarray) -> np.ndarray:
        """Class-mean scores for shared input spikes.

        Returns an array of shape ``(copies, frames, num_classes)``.
        """
        spikes = self._forward_internal(spike_frames)
        # Class sums are small exact integers in float32; the final division
        # runs in float64 so scores are bit-identical to the reference loop.
        summed = np.matmul(spikes, self._merge_indicator32)
        if not self._copies_first:
            summed = summed.transpose(1, 0, 2)
        return summed.astype(np.float64) / self._class_counts

    # ------------------------------------------------------------------
    def evaluate_scores(
        self,
        features: np.ndarray,
        spikes_per_frame: int,
        rng: RngLike = None,
        chunk_frames: Optional[int] = None,
    ) -> np.ndarray:
        """Score tensor over stochastic spike frames of a feature batch.

        Args:
            features: array of shape ``(batch, features)`` with values in
                [0, 1], Bernoulli-encoded into ``spikes_per_frame`` frames.
            spikes_per_frame: temporal duplication level.
            rng: randomness for the stochastic encoding (the same stream an
                unchunked :meth:`StochasticEncoder.encode` would consume).
            chunk_frames: how many spike frames to encode and propagate per
                chunk; ``None`` picks a size that keeps the encoded chunk
                around a few million elements.

        Returns:
            array of shape ``(copies, spikes_per_frame, batch, num_classes)``.
        """
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError(
                f"features must be 2-D (batch, features), got {features.shape}"
            )
        encoder = StochasticEncoder(spikes_per_frame=spikes_per_frame)
        batch = features.shape[0]
        scores = np.empty(
            (self.copy_count, spikes_per_frame, batch, self.network.num_classes),
            dtype=np.float64,
        )
        for start, frames in encoder.iter_encoded(
            features, rng=rng, chunk_frames=chunk_frames
        ):
            count = frames.shape[0]
            flat = frames.reshape(count * batch, features.shape[1])
            chunk_scores = self.class_scores(flat)
            scores[:, start : start + count] = chunk_scores.reshape(
                self.copy_count, count, batch, self.network.num_classes
            )
        return scores


# ----------------------------------------------------------------------
# Reference implementation
# ----------------------------------------------------------------------
def forward_spikes_reference(
    copy: "DeployedNetwork", spike_frame: np.ndarray
) -> np.ndarray:
    """Per-corelet loop reference for one copy (used by tests/benchmarks).

    This is the original nested-loop evaluation — gather each corelet's input
    block, multiply by its sampled weights, threshold (with the explicit
    two-term firing gate) — kept as the ground truth the vectorized engine
    must match bit for bit.
    """
    spike_frame = np.asarray(spike_frame, dtype=np.float64)
    network = copy.corelet_network
    current = spike_frame
    for depth, layer_corelets in enumerate(network.corelets):
        outputs = []
        for corelet, weights in zip(layer_corelets, copy.sampled_weights[depth]):
            indices = np.asarray(corelet.input_channels, dtype=np.int64)
            gathered = current[:, indices]
            pre = gathered @ weights
            active = gathered @ (weights != 0.0).astype(np.float64)
            outputs.append(((pre >= 0.0) & (active > 0.0)).astype(np.float64))
        current = np.concatenate(outputs, axis=1)
    return current


def evaluate_scores_reference(
    copies: Sequence["DeployedNetwork"],
    features: np.ndarray,
    spikes_per_frame: int,
    rng: RngLike = None,
) -> np.ndarray:
    """Loop-based equivalent of :meth:`VectorizedEvaluator.evaluate_scores`.

    Evaluates every (copy, frame) pair independently through
    :func:`forward_spikes_reference`.  Slow by design; the benchmark suite
    times the engine against it and the property tests assert bit-identical
    score tensors (``atol=0``).
    """
    copies = list(copies)
    if not copies:
        raise ValueError("at least one deployed copy is required")
    network = copies[0].corelet_network
    rng = new_rng(rng)
    encoder = StochasticEncoder(spikes_per_frame=spikes_per_frame)
    frames = encoder.encode(features, rng=rng)  # (spf, batch, features)
    indicator = class_merge_weights(network)
    counts = class_counts(network)
    batch = frames.shape[1]
    scores = np.zeros(
        (len(copies), spikes_per_frame, batch, network.num_classes),
        dtype=np.float64,
    )
    for copy_index, copy in enumerate(copies):
        for frame_index in range(spikes_per_frame):
            spikes = forward_spikes_reference(copy, frames[frame_index])
            scores[copy_index, frame_index] = (spikes @ indicator) / counts
    return scores
