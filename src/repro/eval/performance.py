"""Performance (inference-speed) accounting.

TrueNorth advances in 1 ms ticks; presenting one input frame with ``spf``
spike samples takes ``spf`` ticks (plus a fixed pipeline depth for the spikes
to traverse the layers).  Classification throughput is therefore inversely
proportional to spf, which is how the paper converts "B2 matches N13" into a
6.5x speedup in Table 2(b).
"""

from __future__ import annotations

from repro.truenorth.constants import TICK_FREQUENCY_HZ


def frames_to_latency(
    spikes_per_frame: int,
    layer_count: int = 1,
    tick_frequency_hz: float = TICK_FREQUENCY_HZ,
) -> float:
    """Wall-clock latency (seconds) of classifying one sample.

    Args:
        spikes_per_frame: temporal duplication level (ticks of input spikes).
        layer_count: network depth; each layer adds one tick of pipeline
            latency before the first output spikes appear.
        tick_frequency_hz: tick rate of the chip (1 kHz nominal).
    """
    if spikes_per_frame <= 0:
        raise ValueError(f"spikes_per_frame must be positive, got {spikes_per_frame}")
    if layer_count <= 0:
        raise ValueError(f"layer_count must be positive, got {layer_count}")
    if tick_frequency_hz <= 0:
        raise ValueError("tick_frequency_hz must be positive")
    ticks = spikes_per_frame + layer_count
    return ticks / tick_frequency_hz


def throughput(spikes_per_frame: int, tick_frequency_hz: float = TICK_FREQUENCY_HZ) -> float:
    """Steady-state classifications per second (pipeline full).

    In steady state a new sample can be presented every ``spf`` ticks, so the
    per-sample pipeline latency does not limit throughput.
    """
    if spikes_per_frame <= 0:
        raise ValueError(f"spikes_per_frame must be positive, got {spikes_per_frame}")
    return tick_frequency_hz / spikes_per_frame


def speedup_between(baseline_spf: int, ours_spf: int) -> float:
    """Throughput speedup of running at ``ours_spf`` instead of ``baseline_spf``.

    Matches the paper's convention: a model that needs 2 spf where the
    baseline needs 13 spf for the same accuracy is 13 / 2 = 6.5x faster.
    """
    if baseline_spf <= 0 or ours_spf <= 0:
        raise ValueError("spf values must be positive")
    return baseline_spf / ours_spf
