"""Evaluation harness for deployed TrueNorth networks.

This package measures the three quantities the paper co-optimizes:

* **inference accuracy** of deployed (quantized, sampled) networks under
  varying spatial duplication (network copies) and temporal duplication
  (spikes per frame) — :mod:`repro.eval.accuracy` and :mod:`repro.eval.sweep`;
* **core occupation** — :mod:`repro.eval.occupation`;
* **performance** (inference latency implied by the spike-per-frame count) —
  :mod:`repro.eval.performance`;

plus the accuracy-matched comparison procedure of Table 2
(:mod:`repro.eval.comparison`) and the synaptic-deviation analysis of
Figure 4 (:mod:`repro.eval.deviation`).

All deployed evaluation runs on the vectorized multi-copy engine
(:mod:`repro.eval.engine`): every copy's sampled weights are stacked into
per-layer tensors and whole (copies x spf x batch) spike volumes propagate
in a handful of matmuls.  :mod:`repro.eval.runner` layers the
(copies, spf) grid sweep, streamed encoding, and a results cache on top.
Deployed class scores follow the float model's merge convention (per-class
means, ``1/n_k`` weighting) — see :mod:`repro.eval.engine` for the full
scoring and firing-rule conventions.

Which evaluator do I use?
-------------------------

Callers should not pick an engine here directly: :mod:`repro.api` wraps
all of them — the vectorized engine, the batched chip simulator, the
multi-chip board simulator, and the reference loop — behind one
``EvalRequest``/``Session`` facade with backend selection, caching, and
request coalescing.  The full backend-choice guide lives in the top-level
``README.md`` ("Which backend do I use?"); in short: ``vectorized`` for
functional grid sweeps, ``chip`` for cycle-accurate validation, ``board``
for cycle-accurate sweeps whose copy budget overflows one chip (copies
spread over a chip mesh, splitting oversized copies, with inter-chip
``link_delay`` folded into the exact latency model — auto-selected when a
request sets ``link_delay`` or exceeds the chip core budget),
``reference`` for ground truth, and the session's caches
(:class:`~repro.eval.runner.ScoreCache` in memory,
:class:`~repro.eval.runner.DiskScoreCache` on disk) for repeated
evaluations of the same configuration.

The chip backend defaults to **repeat-folded multi-copy chip images**:
the requested copies of *all repeats* are programmed side by side
(stacked per-core crossbar tensors, per-copy LFSR streams; each repeat
block carries its own deployment and input volume through the chip's
grouped-input form) and advance as one ``repeats x copies x batch``
lock-step pass per spf level — so a full ``(copies, spf, repeats)`` grid
costs ``len(spf_levels)`` chip passes, not
``len(spf_levels) x repeats x copies`` programs.  Use it for any
cycle-accurate request, including multi-spf grids and
``stochastic_synapses`` sweeps; copy and repeat levels are exact integer
cumsum prefixes of the one pass, bit-identical to the per-(spf, repeat)
loop.  ``Session(workers=N)`` additionally fans the independent
spf-level passes over worker processes (vectorized requests shard over
repeats instead; both are bit-identical at any worker count — see
:func:`repro.eval.runner.parallel_map`).  ``ChipBackend(multicopy=False)``
keeps the per-copy reference loop the property tests pin the image
against.
"""

from repro.eval.accuracy import DeployedAccuracy, evaluate_deployed_accuracy
from repro.eval.engine import (
    VectorizedEvaluator,
    evaluate_scores_reference,
    forward_spikes_reference,
)
from repro.eval.runner import (
    GLOBAL_SCORE_CACHE,
    DiskScoreCache,
    ScoreCache,
    SweepRunner,
    dataset_fingerprint,
    model_fingerprint,
)
from repro.eval.sweep import SweepResult, accuracy_sweep, accuracy_boost
from repro.eval.occupation import core_occupation, occupation_table
from repro.eval.performance import frames_to_latency, speedup_between
from repro.eval.comparison import (
    MatchedComparison,
    match_accuracy_levels,
    core_occupation_comparison,
    performance_comparison,
)
from repro.eval.deviation import model_deviation_report

__all__ = [
    "DeployedAccuracy",
    "evaluate_deployed_accuracy",
    "VectorizedEvaluator",
    "evaluate_scores_reference",
    "forward_spikes_reference",
    "SweepRunner",
    "ScoreCache",
    "DiskScoreCache",
    "GLOBAL_SCORE_CACHE",
    "model_fingerprint",
    "dataset_fingerprint",
    "SweepResult",
    "accuracy_sweep",
    "accuracy_boost",
    "core_occupation",
    "occupation_table",
    "frames_to_latency",
    "speedup_between",
    "MatchedComparison",
    "match_accuracy_levels",
    "core_occupation_comparison",
    "performance_comparison",
    "model_deviation_report",
]
