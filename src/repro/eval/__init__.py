"""Evaluation harness for deployed TrueNorth networks.

This package measures the three quantities the paper co-optimizes:

* **inference accuracy** of deployed (quantized, sampled) networks under
  varying spatial duplication (network copies) and temporal duplication
  (spikes per frame) — :mod:`repro.eval.accuracy` and :mod:`repro.eval.sweep`;
* **core occupation** — :mod:`repro.eval.occupation`;
* **performance** (inference latency implied by the spike-per-frame count) —
  :mod:`repro.eval.performance`;

plus the accuracy-matched comparison procedure of Table 2
(:mod:`repro.eval.comparison`) and the synaptic-deviation analysis of
Figure 4 (:mod:`repro.eval.deviation`).

All deployed evaluation runs on the vectorized multi-copy engine
(:mod:`repro.eval.engine`): every copy's sampled weights are stacked into
per-layer tensors and whole (copies x spf x batch) spike volumes propagate
in a handful of matmuls.  :mod:`repro.eval.runner` layers the
(copies, spf) grid sweep, streamed encoding, and a results cache on top.
Deployed class scores follow the float model's merge convention (per-class
means, ``1/n_k`` weighting) — see :mod:`repro.eval.engine` for the full
scoring and firing-rule conventions.

Which evaluator do I use?
-------------------------

* **Functional sweeps** (Figures 7-9, Table 2, anything that needs scores
  over a (copies, spf) grid): :class:`repro.eval.runner.SweepRunner` on top
  of :class:`repro.eval.engine.VectorizedEvaluator`.  Fastest path; folds
  the firing gate into the weights and never simulates ticks.  Add
  ``cache_dir=`` for a persistent cross-process score cache and
  ``workers=N`` to fan repeats over processes.
* **Cycle-accurate validation** (router delays, per-core spike counters,
  ground-truthing the functional engine): the chip simulator via
  :func:`repro.mapping.pipeline.run_chip_inference_batch`, which advances a
  whole sample batch through a programmed
  :class:`~repro.truenorth.chip.TrueNorthChip` in lock-step ticks —
  bit-identical to per-sample :func:`~repro.mapping.pipeline.run_chip_inference`
  and ~50x faster on test-bench workloads (``BENCH_chip.json``).
* **Repeated evaluations of the same configuration** (serve-style
  workloads, experiment drivers re-sweeping one trained model): let the
  caches do the work — the in-memory :class:`~repro.eval.runner.ScoreCache`
  within a process, :class:`~repro.eval.runner.DiskScoreCache` across
  processes and restarts.
"""

from repro.eval.accuracy import DeployedAccuracy, evaluate_deployed_accuracy
from repro.eval.engine import (
    VectorizedEvaluator,
    evaluate_scores_reference,
    forward_spikes_reference,
)
from repro.eval.runner import (
    GLOBAL_SCORE_CACHE,
    DiskScoreCache,
    ScoreCache,
    SweepRunner,
    dataset_fingerprint,
    model_fingerprint,
)
from repro.eval.sweep import SweepResult, accuracy_sweep, accuracy_boost
from repro.eval.occupation import core_occupation, occupation_table
from repro.eval.performance import frames_to_latency, speedup_between
from repro.eval.comparison import (
    MatchedComparison,
    match_accuracy_levels,
    core_occupation_comparison,
    performance_comparison,
)
from repro.eval.deviation import model_deviation_report

__all__ = [
    "DeployedAccuracy",
    "evaluate_deployed_accuracy",
    "VectorizedEvaluator",
    "evaluate_scores_reference",
    "forward_spikes_reference",
    "SweepRunner",
    "ScoreCache",
    "DiskScoreCache",
    "GLOBAL_SCORE_CACHE",
    "model_fingerprint",
    "dataset_fingerprint",
    "SweepResult",
    "accuracy_sweep",
    "accuracy_boost",
    "core_occupation",
    "occupation_table",
    "frames_to_latency",
    "speedup_between",
    "MatchedComparison",
    "match_accuracy_levels",
    "core_occupation_comparison",
    "performance_comparison",
    "model_deviation_report",
]
