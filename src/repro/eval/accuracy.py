"""Deployed-accuracy measurement.

The accuracy of a deployed network is a random variable: it depends on the
sampled crossbar connectivity of every copy and on the stochastic input
spikes.  Following the paper (Section 4.2, "we have averaged accuracy at each
grid over ten results"), :func:`evaluate_deployed_accuracy` repeats the whole
deployment + evaluation several times and reports the mean and standard
deviation.  The evaluation itself runs on the vectorized multi-copy engine
(:mod:`repro.eval.engine`); scores follow the class-mean merge convention
shared with the float model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.model import TrueNorthModel
from repro.datasets.base import Dataset
from repro.mapping.corelet import CoreletNetwork, build_corelets
from repro.mapping.duplication import deploy_with_copies
from repro.nn.metrics import accuracy_score
from repro.utils.rng import RngLike, new_rng, spawn_rngs


@dataclass(frozen=True)
class DeployedAccuracy:
    """Accuracy of a deployed configuration.

    Attributes:
        copies: number of network copies (spatial duplication).
        spikes_per_frame: temporal duplication level.
        mean_accuracy: mean test accuracy over the repeats.
        std_accuracy: standard deviation over the repeats.
        repeats: number of independent deployment + evaluation repeats.
        cores: total neuro-synaptic cores occupied.
    """

    copies: int
    spikes_per_frame: int
    mean_accuracy: float
    std_accuracy: float
    repeats: int
    cores: int


def evaluate_deployed_accuracy(
    model: TrueNorthModel,
    dataset: Dataset,
    copies: int = 1,
    spikes_per_frame: int = 1,
    repeats: int = 3,
    rng: RngLike = None,
    corelet_network: Optional[CoreletNetwork] = None,
    max_samples: Optional[int] = None,
) -> DeployedAccuracy:
    """Measure the deployed test accuracy of one (copies, spf) configuration.

    Args:
        model: trained model.
        dataset: evaluation dataset (features in [0, 1], integer labels).
        copies: number of spatial network copies.
        spikes_per_frame: number of input spike samples per presented image.
        repeats: independent repetitions (new connectivity and spike samples
            each time) averaged into the reported accuracy.
        rng: root randomness.
        corelet_network: optional pre-built corelets to avoid recomputation.
        max_samples: evaluate only the first ``max_samples`` samples (speeds
            up large sweeps; ``None`` = use all).

    Returns:
        a :class:`DeployedAccuracy` record.
    """
    if repeats <= 0:
        raise ValueError(f"repeats must be positive, got {repeats}")
    network = corelet_network or build_corelets(model)
    evaluation = dataset if max_samples is None else dataset.take(max_samples)
    rngs = spawn_rngs(new_rng(rng), repeats)
    accuracies: List[float] = []
    cores = 0
    for repeat_rng in rngs:
        deployment = deploy_with_copies(
            model, copies=copies, rng=repeat_rng, corelet_network=network
        )
        cores = deployment.total_cores
        predictions = deployment.predict(
            evaluation.features, spikes_per_frame=spikes_per_frame, rng=repeat_rng
        )
        accuracies.append(accuracy_score(evaluation.labels, predictions))
    return DeployedAccuracy(
        copies=copies,
        spikes_per_frame=spikes_per_frame,
        mean_accuracy=float(np.mean(accuracies)),
        std_accuracy=float(np.std(accuracies)),
        repeats=repeats,
        cores=cores,
    )
