"""repro — reproduction of probability-biased learning for IBM TrueNorth.

This package reproduces Wen et al., "A New Learning Method for Inference
Accuracy, Core Occupation, and Performance Co-optimization on TrueNorth
Chip" (DAC 2016) as a self-contained Python library:

* :mod:`repro.truenorth` — a functional simulator of the TrueNorth
  neuro-synaptic architecture (crossbars, digital neurons, spike routing).
* :mod:`repro.nn` — a small numpy training framework with the erf-based
  TrueNorth activation.
* :mod:`repro.core` — the paper's contribution: weight penalties (including
  the probability-biasing penalty), the weight/probability mapping, the
  variance analysis, and the Tea / L1 / probability-biased learning methods.
* :mod:`repro.encoding` — spike-encoding schemes (stochastic, rate,
  population, time-to-spike, rank order).
* :mod:`repro.mapping` — block partitioning, corelets, Bernoulli deployment,
  spatial duplication, placement, and chip programming.
* :mod:`repro.datasets` — synthetic MNIST / RS130 stand-ins.
* :mod:`repro.eval` — accuracy sweeps, core occupation, performance, and the
  accuracy-matched comparison of Table 2.
* :mod:`repro.api` — the unified evaluation-backend protocol and serving
  facade (``EvalRequest`` / ``Session`` over the vectorized, chip, and
  reference backends).
* :mod:`repro.experiments` — one driver per table / figure of the paper.

Quickstart::

    from repro.api import EvalRequest, Session
    from repro.experiments.runner import ExperimentContext, train_method_pair

    context = ExperimentContext(train_size=400, epochs=3)
    tea, biased = train_method_pair(context)
    result = Session(backend="vectorized").evaluate(
        EvalRequest(model=biased.model, dataset=context.evaluation_dataset())
    )
"""

__version__ = "1.0.0"

from repro.core import (
    BiasingPenalty,
    L1Learning,
    LearningResult,
    NetworkArchitecture,
    ProbabilityBiasedLearning,
    TeaLearning,
    TrueNorthModel,
)
from repro.experiments.runner import ExperimentContext

__all__ = [
    "__version__",
    "BiasingPenalty",
    "L1Learning",
    "LearningResult",
    "NetworkArchitecture",
    "ProbabilityBiasedLearning",
    "TeaLearning",
    "TrueNorthModel",
    "ExperimentContext",
]
