"""End-to-end pipeline onto the chip simulator.

The fast vectorized evaluator in :mod:`repro.mapping.deploy` is what the
large sweeps use, but the reproduction also provides the "real" path: program
an actual :class:`~repro.truenorth.chip.TrueNorthChip` from a deployed
network copy (crossbar connectivity, axon types per row, routing of hidden
layers into the next layer's axons, external I/O bindings) and push spike
frames through it tick by tick.  The test suite uses this path to check that
the vectorized evaluator and the hardware-level simulation agree exactly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.mapping.deploy import DeployedNetwork
from repro.truenorth import constants
from repro.truenorth.chip import TrueNorthChip
from repro.truenorth.config import ChipConfig, CoreConfig, NeuronConfig

#: Axon-type convention used when programming a chip from a deployed copy:
#: type 0 carries the positive synaptic value, type 1 the negative one.
_EXCITATORY_TYPE = 0
_INHIBITORY_TYPE = 1

#: Channel names used for the external bindings created by :func:`program_chip`.
INPUT_CHANNEL = "pixels"
OUTPUT_CHANNEL = "classes"


def program_chip(
    deployed: DeployedNetwork,
    chip: Optional[TrueNorthChip] = None,
) -> Tuple[TrueNorthChip, List[List[int]]]:
    """Program a chip with one deployed network copy.

    Every corelet becomes one physical core: the sampled signed weights are
    written into the crossbar (per-connection signed mode, the simulator's
    functional equivalent of IBM's axon-splitting corelets — see
    :meth:`repro.truenorth.crossbar.SynapticCrossbar.set_signed_weights`),
    hidden-to-hidden connections are routed through the spike router,
    first-layer axons are bound to the external input channel, and last-layer
    neurons to the external output channel.

    Args:
        deployed: a sampled network copy.
        chip: chip to program; a fresh one (with capacity for the copy) is
            created when omitted.

    Returns:
        (chip, core_ids) where ``core_ids[layer][index]`` is the physical core
        id assigned to each corelet.
    """
    network = deployed.corelet_network
    synaptic_magnitude = _infer_synaptic_magnitude(deployed)
    weight_table = (
        int(round(synaptic_magnitude)),
        -int(round(synaptic_magnitude)),
        0,
        0,
    )
    neuron_config = NeuronConfig(
        weight_table=weight_table,
        leak=0,
        threshold=0,
        history_free=True,
        stochastic_synapses=False,
    )
    if chip is None:
        rows = int(np.ceil(np.sqrt(network.core_count))) or 1
        grid = (max(rows, 1), max(int(np.ceil(network.core_count / rows)), 1))
        chip = TrueNorthChip(
            ChipConfig(grid_shape=grid, core_config=CoreConfig(neuron_config=neuron_config))
        )

    core_ids: List[List[int]] = []
    for layer_index, layer_corelets in enumerate(network.corelets):
        layer_ids: List[int] = []
        for corelet_index, corelet in enumerate(layer_corelets):
            core = chip.allocate_core(CoreConfig(neuron_config=neuron_config))
            sampled = deployed.sampled_weights[layer_index][corelet_index]
            axons = corelet.axon_count
            neurons = corelet.neuron_count
            full_weights = np.zeros(
                (core.config.axons, core.config.neurons), dtype=np.int64
            )
            full_weights[:axons, :neurons] = np.rint(sampled).astype(np.int64)
            core.crossbar.set_signed_weights(full_weights)
            layer_ids.append(core.core_id)
        core_ids.append(layer_ids)

    # External input: layer-0 axons receive the pixel spikes of their block.
    for corelet_index, corelet in enumerate(network.corelets[0]):
        chip.bind_input(
            INPUT_CHANNEL,
            core_ids[0][corelet_index],
            axon_map=list(range(corelet.axon_count)),
        )

    # Inter-layer routing: neuron j of layer L feeds the axon of the layer L+1
    # corelet whose input channel equals j's global output channel.
    for layer_index in range(len(network.corelets) - 1):
        next_layer = network.corelets[layer_index + 1]
        channel_to_target: Dict[int, Tuple[int, int]] = {}
        for next_index, next_corelet in enumerate(next_layer):
            for axon, channel in enumerate(next_corelet.input_channels):
                channel_to_target[channel] = (core_ids[layer_index + 1][next_index], axon)
        for corelet_index, corelet in enumerate(network.corelets[layer_index]):
            source_core = core_ids[layer_index][corelet_index]
            for neuron, channel in enumerate(corelet.output_channels):
                target = channel_to_target.get(channel)
                if target is None:
                    continue
                chip.router.connect(source_core, neuron, target[0], target[1])

    # External output: last-layer neurons feed the class readout.
    for corelet_index, corelet in enumerate(network.corelets[-1]):
        chip.bind_output(
            OUTPUT_CHANNEL,
            core_ids[-1][corelet_index],
            neuron_map=list(range(corelet.neuron_count)),
        )
    return chip, core_ids


def run_chip_inference(
    chip: TrueNorthChip,
    deployed: DeployedNetwork,
    core_ids: List[List[int]],
    spike_frames: np.ndarray,
) -> np.ndarray:
    """Run one sample's spike frames through a programmed chip.

    Args:
        chip: chip programmed by :func:`program_chip`.
        deployed: the deployed copy the chip was programmed from (provides the
            corelet structure for the readout).
        core_ids: physical core ids returned by :func:`program_chip`.
        spike_frames: binary array of shape (ticks, input_dim).

    Returns:
        per-class accumulated spike counts (num_classes,).
    """
    network = deployed.corelet_network
    spike_frames = np.asarray(spike_frames)
    if spike_frames.ndim != 2 or spike_frames.shape[1] != network.input_dim:
        raise ValueError(
            f"expected frames of shape (ticks, {network.input_dim}), "
            f"got {spike_frames.shape}"
        )
    chip.reset()
    ticks = spike_frames.shape[0]
    depth = len(network.corelets)
    class_counts = np.zeros(network.num_classes, dtype=np.int64)
    # Spikes need `depth` ticks to traverse the layers plus router delays.
    drain = depth * (chip.router.delay + 1) + 2
    for t in range(ticks + drain):
        inputs = None
        if t < ticks:
            per_binding = {}
            for corelet_index, corelet in enumerate(network.corelets[0]):
                indices = np.asarray(corelet.input_channels, dtype=int)
                per_binding[corelet_index] = spike_frames[t, indices]
            inputs = {INPUT_CHANNEL: per_binding}
        outputs = chip.step(inputs)
        for binding_index, spikes in outputs.get(OUTPUT_CHANNEL, {}).items():
            corelet = network.corelets[-1][binding_index]
            channels = np.asarray(corelet.output_channels, dtype=int)
            classes = network.class_assignment[channels]
            np.add.at(class_counts, classes, spikes.astype(np.int64))
    return class_counts


def _infer_synaptic_magnitude(deployed: DeployedNetwork) -> float:
    """Largest absolute sampled synaptic value (the integer weight ``c``)."""
    best = 0.0
    for layer in deployed.sampled_weights:
        for weights in layer:
            if weights.size:
                best = max(best, float(np.abs(weights).max()))
    return best if best > 0 else 1.0


