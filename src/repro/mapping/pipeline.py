"""End-to-end pipeline onto the chip simulator.

The fast vectorized evaluator in :mod:`repro.mapping.deploy` is what the
large sweeps use, but the reproduction also provides the "real" path: program
an actual :class:`~repro.truenorth.chip.TrueNorthChip` from a deployed
network copy (crossbar connectivity, axon types per row, routing of hidden
layers into the next layer's axons, external I/O bindings) and push spike
frames through it tick by tick.  The test suite uses this path to check that
the vectorized evaluator and the hardware-level simulation agree exactly.

Three inference drivers exist: :func:`run_chip_inference` pushes one sample
through the chip (the scalar reference), :func:`run_chip_inference_batch`
pushes a whole ``(batch, ticks, input_dim)`` spike volume through in
lock-step using the chip's batched engine — bit-identical class counts, one
crossbar matmul per core per tick instead of one per (sample, core, tick) —
and :func:`run_chip_inference_multicopy` additionally batches over network
*copies*: :func:`program_chip_multicopy` stacks C sampled copies side by
side into one multi-copy chip image (per-copy crossbar tensors, shared
route table, per-copy LFSR streams) and the driver advances all ``C *
batch`` lock-step rows at once, returning per-copy class counts that are
bit-identical to C independent :func:`run_chip_inference_batch` runs.

Stochastic-synapse deployments are supported on all drivers: programming a
chip with a ``stochastic_synapses=True`` neuron config writes the corelets'
*potential* signed values and Bernoulli ON-probabilities into the crossbar
(instead of one frozen connectivity sample), so the hardware re-samples
every synapse each tick from its core LFSR.  ``core_seed`` /
``copy_seeds`` control the per-chip / per-copy streams; the multi-copy
engine replays exactly the streams the one-chip-per-copy loop consumes.

Latency model
-------------

The chip is synchronous: within one tick every core consumes the axon
spikes delivered at the start of the tick and emits its output spikes at the
end of it, and the router delivers a spike submitted at tick ``t`` at tick
``t + delay``.  External input injected at tick ``t`` therefore appears on
the output binding of a ``depth``-layer network at tick
``t + (depth - 1) * delay``: layer 0 fires at ``t``, layer ``l`` at
``t + l * delay``.  For ``T`` input ticks the final output lands at tick
``T - 1 + (depth - 1) * delay``, so exactly ``(depth - 1) * delay`` drain
ticks after the last input flush every in-flight spike.  (The previous
heuristic, ``depth * (delay + 1) + 2``, over-drained every sample; the
drivers now drain until the router queue is empty and assert the exact
bound.)  History-free cores cannot fire on a silent crossbar, so an empty
router queue means the network is quiescent; stateful LIF cores with
``leak >= 0`` and ``reset_potential < threshold`` also go quiet once input
stops (the membrane potential is non-increasing from then on and a fired
neuron restarts below threshold).  Configurations without a finite drain
point — negative leak, or a reset at/above threshold — are rejected up
front by the inference drivers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.board.board import Board
from repro.board.topology import BoardConfig, board_shape_for
from repro.mapping.deploy import DeployedNetwork
from repro.mapping.placement import BoardPlacement, place_on_board
from repro.truenorth.chip import TrueNorthChip
from repro.truenorth.config import ChipConfig, CoreConfig, NeuronConfig

#: Axon-type convention used when programming a chip from a deployed copy:
#: type 0 carries the positive synaptic value, type 1 the negative one.
_EXCITATORY_TYPE = 0
_INHIBITORY_TYPE = 1

#: Channel names used for the external bindings created by :func:`program_chip`.
INPUT_CHANNEL = "pixels"
OUTPUT_CHANNEL = "classes"


def _default_neuron_config(
    synaptic_magnitude: float, stochastic_synapses: bool = False
) -> NeuronConfig:
    """The paper's history-free zero-threshold deployment neuron."""
    weight_table = (
        int(round(synaptic_magnitude)),
        -int(round(synaptic_magnitude)),
        0,
        0,
    )
    return NeuronConfig(
        weight_table=weight_table,
        leak=0,
        threshold=0,
        history_free=True,
        stochastic_synapses=stochastic_synapses,
    )


def stochastic_neuron_config(network) -> NeuronConfig:
    """The deployment neuron with per-tick synapse re-sampling enabled.

    The magnitude comes from the corelets' *potential* signed synaptic
    values — stochastic deployments never use the frozen per-copy samples.
    """
    best = 0.0
    for layer in network.corelets:
        for corelet in layer:
            if corelet.synaptic_values.size:
                best = max(best, float(np.abs(corelet.synaptic_values).max()))
    return _default_neuron_config(
        best if best > 0 else 1.0, stochastic_synapses=True
    )


def _core_shape(network) -> Tuple[int, int]:
    """(axons, neurons) of the network's largest corelet.

    A physical core is 256 x 256, but simulating the unused rows and columns
    only multiplies zeros: unused axons never receive a spike (bindings and
    routes only address corelet channels) and unused neurons never fire —
    history-free neurons are gated by their silent crossbar, and the
    stateful configurations the inference drivers accept (``leak >= 0``,
    ``reset < threshold``, enforced by ``_validate_latency_model``) keep a
    never-stimulated membrane below threshold forever.  Trimming is
    therefore spike-for-spike identical while cutting every crossbar matmul
    to the occupied block.

    Deterministic programming trims each core to *its own* corelet
    (per-core fit — the router and chip handle heterogeneous geometries),
    so one large corelet no longer un-trims every other core's GEMM.
    Stochastic programming keeps this network-uniform maximum: the core
    LFSR's per-tick connectivity sample is laid out row-major over the full
    crossbar shape, so the sampled bits at the occupied block — and with
    them the committed stochastic goldens — are a function of the crossbar
    geometry and must not change.
    """
    axons = max(c.axon_count for layer in network.corelets for c in layer)
    neurons = max(c.neuron_count for layer in network.corelets for c in layer)
    return axons, neurons


def _make_chip(
    core_count: int,
    neuron_config: NeuronConfig,
    router_delay: Optional[int],
    core_shape: Tuple[int, int],
) -> TrueNorthChip:
    """A fresh chip sized for ``core_count`` trimmed cores."""
    rows = int(np.ceil(np.sqrt(core_count))) or 1
    grid = (max(rows, 1), max(int(np.ceil(core_count / rows)), 1))
    chip = TrueNorthChip(
        ChipConfig(
            grid_shape=grid,
            core_config=CoreConfig(
                axons=core_shape[0],
                neurons=core_shape[1],
                neuron_config=neuron_config,
            ),
        )
    )
    if router_delay is not None:
        if router_delay < 1:
            raise ValueError(f"router_delay must be >= 1, got {router_delay}")
        chip.router.delay = int(router_delay)
    return chip


def _full_core_matrix(
    core, values: np.ndarray, corelet, dtype
) -> np.ndarray:
    """A corelet-sized matrix embedded top-left into a full-core matrix."""
    full = np.zeros((core.config.axons, core.config.neurons), dtype=dtype)
    full[: corelet.axon_count, : corelet.neuron_count] = values
    return full


def _wire_chip(chip: TrueNorthChip, network, core_ids: List[List[int]]) -> None:
    """Bind external I/O and program the inter-layer routes of one topology."""
    # External input: layer-0 axons receive the pixel spikes of their block.
    for corelet_index, corelet in enumerate(network.corelets[0]):
        chip.bind_input(
            INPUT_CHANNEL,
            core_ids[0][corelet_index],
            axon_map=list(range(corelet.axon_count)),
        )

    # Inter-layer routing: neuron j of layer L feeds the axon of the layer L+1
    # corelet whose input channel equals j's global output channel.
    for layer_index in range(len(network.corelets) - 1):
        next_layer = network.corelets[layer_index + 1]
        channel_to_target: Dict[int, Tuple[int, int]] = {}
        for next_index, next_corelet in enumerate(next_layer):
            for axon, channel in enumerate(next_corelet.input_channels):
                channel_to_target[channel] = (core_ids[layer_index + 1][next_index], axon)
        for corelet_index, corelet in enumerate(network.corelets[layer_index]):
            source_core = core_ids[layer_index][corelet_index]
            for neuron, channel in enumerate(corelet.output_channels):
                target = channel_to_target.get(channel)
                if target is None:
                    continue
                chip.router.connect(source_core, neuron, target[0], target[1])

    # External output: last-layer neurons feed the class readout.
    for corelet_index, corelet in enumerate(network.corelets[-1]):
        chip.bind_output(
            OUTPUT_CHANNEL,
            core_ids[-1][corelet_index],
            neuron_map=list(range(corelet.neuron_count)),
        )


def program_chip(
    deployed: DeployedNetwork,
    chip: Optional[TrueNorthChip] = None,
    neuron_config: Optional[NeuronConfig] = None,
    router_delay: Optional[int] = None,
    core_seed: int = 0,
) -> Tuple[TrueNorthChip, List[List[int]]]:
    """Program a chip with one deployed network copy.

    Every corelet becomes one physical core: the sampled signed weights are
    written into the crossbar (per-connection signed mode, the simulator's
    functional equivalent of IBM's axon-splitting corelets — see
    :meth:`repro.truenorth.crossbar.SynapticCrossbar.set_signed_weights`).
    Simulated cores are trimmed to the network's largest corelet
    (see ``_core_shape``: spike-for-spike identical, far smaller matmuls),
    hidden-to-hidden connections are routed through the spike router,
    first-layer axons are bound to the external input channel, and last-layer
    neurons to the external output channel.

    With a ``stochastic_synapses=True`` neuron config the crossbar is
    instead programmed with the corelets' *potential* signed synaptic values
    and Bernoulli ON-probabilities, so the chip re-samples every synapse per
    tick from the core LFSR (the deployed copy's frozen connectivity sample
    is not used).

    Args:
        deployed: a sampled network copy.
        chip: chip to program; a fresh one (with capacity for the copy) is
            created when omitted.
        neuron_config: overrides the paper's history-free zero-threshold
            neuron (e.g. a stateful LIF configuration for the equivalence
            tests); the default reproduces the paper's deployment.
        router_delay: overrides the router's delivery delay; must be >= 1 so
            the synchronous tick discipline can deliver every routed spike.
            Only valid when the chip is created here — combining it with an
            explicit ``chip`` raises (set the delay on that chip's router
            instead of having it silently ignored).
        core_seed: base seed of the cores' LFSR PRNGs (core ``k`` draws from
            ``LfsrPrng(core_seed + k + 1)``); distinct seeds give distinct
            stochastic-synapse realizations, which is how the per-copy loop
            and the multi-copy engine assign each copy its own stream.

    Returns:
        (chip, core_ids) where ``core_ids[layer][index]`` is the physical core
        id assigned to each corelet.
    """
    network = deployed.corelet_network
    if neuron_config is None:
        neuron_config = _default_neuron_config(_infer_synaptic_magnitude(deployed))
    if chip is not None and router_delay is not None:
        raise ValueError(
            "router_delay only applies to a freshly created chip; set the "
            "delay on the provided chip's router instead"
        )
    if chip is None:
        uniform = _core_shape(network)
        chip = _make_chip(network.core_count, neuron_config, router_delay, uniform)
        # Deterministic programming fits each core to its own corelet;
        # stochastic programming keeps the uniform shape (see _core_shape).
        shape: Optional[Tuple[int, int]] = (
            uniform if neuron_config.stochastic_synapses else None
        )
    else:
        # A caller-provided chip fixes the core geometry (every core is
        # allocated with its default uniform CoreConfig shape).
        shape = (chip.config.core_config.axons, chip.config.core_config.neurons)

    def program_weights(core, corelet, layer_index: int, corelet_index: int):
        sampled = deployed.sampled_weights[layer_index][corelet_index]
        values = np.rint(sampled).astype(np.int64)
        core.crossbar.set_signed_weights(
            _full_core_matrix(core, values, corelet, np.int64)
        )

    core_ids = _program_cores(
        chip, network, neuron_config, shape, core_seed, program_weights
    )
    return chip, core_ids


def _program_cores(
    chip: TrueNorthChip,
    network,
    neuron_config: NeuronConfig,
    shape: Optional[Tuple[int, int]],
    core_seed: int,
    program_weights,
) -> List[List[int]]:
    """Allocate and program one trimmed core per corelet, then wire the chip.

    ``shape`` fixes one uniform (axons, neurons) geometry for every core;
    ``None`` fits each core to its own corelet (per-core-fit trimming —
    valid for deterministic programming only, see ``_core_shape``).

    The stochastic branch (potential signed values + Bernoulli
    probabilities, identical for the single- and multi-copy engines) lives
    here so the two programming paths cannot drift apart;
    ``program_weights(core, corelet, layer_index, corelet_index)`` supplies
    the deterministic branch (one sampled matrix or a per-copy stack).
    """
    stochastic = neuron_config.stochastic_synapses
    if stochastic and shape is None:
        raise ValueError(
            "stochastic programming requires a uniform core shape (the "
            "LFSR connectivity sample layout depends on the crossbar "
            "geometry); pass _core_shape(network)"
        )
    core_ids: List[List[int]] = []
    for layer_index, layer_corelets in enumerate(network.corelets):
        layer_ids: List[int] = []
        for corelet_index, corelet in enumerate(layer_corelets):
            fit = (
                shape
                if shape is not None
                else (corelet.axon_count, corelet.neuron_count)
            )
            core = chip.allocate_core(
                CoreConfig(
                    axons=fit[0],
                    neurons=fit[1],
                    neuron_config=neuron_config,
                    seed=int(core_seed),
                )
            )
            if stochastic:
                values = np.rint(corelet.synaptic_values).astype(np.int64)
                core.crossbar.set_signed_weights(
                    _full_core_matrix(core, values, corelet, np.int64)
                )
                core.crossbar.set_probabilities(
                    _full_core_matrix(core, corelet.probabilities, corelet, float)
                )
            else:
                program_weights(core, corelet, layer_index, corelet_index)
            layer_ids.append(core.core_id)
        core_ids.append(layer_ids)

    _wire_chip(chip, network, core_ids)
    return core_ids


def _check_shared_structure(copies: Sequence[DeployedNetwork]) -> None:
    """All copies must share one corelet topology (routes, shapes, readout)."""
    first = copies[0].corelet_network
    for index, copy in enumerate(copies[1:], start=1):
        network = copy.corelet_network
        same = network is first or (
            len(network.corelets) == len(first.corelets)
            and all(
                len(a) == len(b)
                and all(
                    x.input_channels == y.input_channels
                    and x.output_channels == y.output_channels
                    for x, y in zip(a, b)
                )
                for a, b in zip(network.corelets, first.corelets)
            )
            and np.array_equal(network.class_assignment, first.class_assignment)
        )
        if not same:
            raise ValueError(
                f"copy {index} has a different corelet topology than copy 0; "
                "a multi-copy chip image requires identically structured "
                "copies (only the sampled weights may differ)"
            )


def _check_shared_stochastic_programming(copies: Sequence[DeployedNetwork]) -> None:
    """Stochastic multi-copy images share one crossbar programming.

    Copy ``c`` differs only through its LFSR stream, so every copy's
    corelets must carry identical Bernoulli probabilities and synaptic
    values — silently programming copy 0's tensors for all copies would
    diverge from the per-copy loop without an error.
    """
    first = copies[0].corelet_network
    for index, copy in enumerate(copies[1:], start=1):
        network = copy.corelet_network
        if network is first:
            continue
        for layer_a, layer_b in zip(first.corelets, network.corelets):
            for a, b in zip(layer_a, layer_b):
                if not (
                    np.array_equal(a.probabilities, b.probabilities)
                    and np.array_equal(a.synaptic_values, b.synaptic_values)
                ):
                    raise ValueError(
                        f"copy {index} carries different corelet "
                        "probabilities/synaptic values than copy 0; a "
                        "stochastic multi-copy image shares one crossbar "
                        "programming, so per-copy stochastic parameters "
                        "need one chip per copy"
                    )


def program_chip_multicopy(
    copies: Sequence[DeployedNetwork],
    neuron_config: Optional[NeuronConfig] = None,
    router_delay: Optional[int] = None,
) -> Tuple[TrueNorthChip, List[List[int]]]:
    """Program one chip image holding ``len(copies)`` sampled copies.

    The copies share one physical core per corelet: each core's crossbar is
    programmed with the *stacked* per-copy signed weight tensor
    (:meth:`~repro.truenorth.crossbar.SynapticCrossbar.set_copy_signed_weights`),
    and because every copy has the same topology, the single route table and
    the external bindings serve all copies at once — batch rows are
    copy-major and never mix (see :mod:`repro.truenorth.chip`).  Memory is
    therefore ~``C`` x one chip's crossbar storage, against ``C`` whole
    chips for the per-copy loop.

    With a ``stochastic_synapses=True`` neuron config the copies share the
    corelets' potential values and probabilities (no stack is needed — all
    copies are programmed identically) and differ only through the per-copy
    LFSR streams chosen at :meth:`TrueNorthChip.begin_batch` time via
    ``copy_seeds``.

    Args:
        copies: the sampled copies, identically structured (e.g.
            ``deploy_with_copies(...).copies``).
        neuron_config: as in :func:`program_chip`; the default infers the
            paper's history-free neuron from the largest magnitude over all
            copies.
        router_delay: as in :func:`program_chip`.

    Returns:
        (chip, core_ids) exactly as :func:`program_chip`.
    """
    if not copies:
        raise ValueError("at least one deployed copy is required")
    _check_shared_structure(copies)
    network = copies[0].corelet_network
    if neuron_config is None:
        neuron_config = _default_neuron_config(_infer_multicopy_magnitude(copies))
    if neuron_config.stochastic_synapses:
        _check_shared_stochastic_programming(copies)
    uniform = _core_shape(network)
    chip = _make_chip(network.core_count, neuron_config, router_delay, uniform)
    core_ids = _program_multicopy_image(chip, copies, neuron_config, uniform)
    return chip, core_ids


def _program_multicopy_image(
    chip: TrueNorthChip,
    copies: Sequence[DeployedNetwork],
    neuron_config: NeuronConfig,
    uniform: Tuple[int, int],
) -> List[List[int]]:
    """Program and wire a stacked multi-copy image onto an existing chip.

    The shared body of :func:`program_chip_multicopy` and the board
    programmer (whole-copy chips of a board run exactly this image, which
    is what makes the 1x1-board equivalence hold by construction).
    """
    network = copies[0].corelet_network
    # Per-core-fit trimming for deterministic stacks; stochastic images keep
    # the uniform shape (see _core_shape).
    shape: Optional[Tuple[int, int]] = (
        uniform if neuron_config.stochastic_synapses else None
    )

    def program_weights(core, corelet, layer_index: int, corelet_index: int):
        # One rounding/embedding pass over the whole copy stack: per-copy
        # rint/astype/zeros calls dominate programming once repeats are
        # folded onto the copy axis (repeats * copies matrices per core).
        gathered = np.stack(
            [copy.sampled_weights[layer_index][corelet_index] for copy in copies]
        )
        if gathered.dtype.kind == "f":
            corelet_stack = np.rint(gathered, out=gathered).astype(np.int64)
        else:
            corelet_stack = np.rint(gathered).astype(np.int64)
        if (core.config.axons, core.config.neurons) == (
            corelet.axon_count,
            corelet.neuron_count,
        ):
            # Per-core-fit trimming usually makes the core exactly
            # corelet-sized — no zero matrix to embed into.
            stacked = corelet_stack
        else:
            stacked = np.zeros(
                (len(copies), core.config.axons, core.config.neurons),
                dtype=np.int64,
            )
            stacked[:, : corelet.axon_count, : corelet.neuron_count] = corelet_stack
        core.crossbar.set_copy_signed_weights(stacked)

    return _program_cores(
        chip, network, neuron_config, shape, 0, program_weights
    )


def run_chip_inference(
    chip: TrueNorthChip,
    deployed: DeployedNetwork,
    core_ids: List[List[int]],
    spike_frames: np.ndarray,
) -> np.ndarray:
    """Run one sample's spike frames through a programmed chip.

    Args:
        chip: chip programmed by :func:`program_chip`.
        deployed: the deployed copy the chip was programmed from (provides the
            corelet structure for the readout).
        core_ids: physical core ids returned by :func:`program_chip`.
        spike_frames: binary array of shape (ticks, input_dim).

    Returns:
        per-class accumulated spike counts (num_classes,).
    """
    network = deployed.corelet_network
    spike_frames = np.asarray(spike_frames)
    if spike_frames.ndim != 2 or spike_frames.shape[1] != network.input_dim:
        raise ValueError(
            f"expected frames of shape (ticks, {network.input_dim}), "
            f"got {spike_frames.shape}"
        )
    _validate_latency_model(chip, network)
    chip.reset()
    ticks = spike_frames.shape[0]
    class_counts = np.zeros(network.num_classes, dtype=np.int64)

    def accumulate(outputs) -> None:
        for binding_index, spikes in outputs.get(OUTPUT_CHANNEL, {}).items():
            corelet = network.corelets[-1][binding_index]
            channels = np.asarray(corelet.output_channels, dtype=int)
            classes = network.class_assignment[channels]
            np.add.at(class_counts, classes, spikes.astype(np.int64))

    for t in range(ticks):
        per_binding = {}
        for corelet_index, corelet in enumerate(network.corelets[0]):
            indices = np.asarray(corelet.input_channels, dtype=int)
            per_binding[corelet_index] = spike_frames[t, indices]
        accumulate(chip.step({INPUT_CHANNEL: per_binding}))
    _drain_chip(chip, network, accumulate, batched=False)
    return class_counts


def run_chip_inference_batch(
    chip: TrueNorthChip,
    deployed: DeployedNetwork,
    core_ids: List[List[int]],
    spike_volumes: np.ndarray,
) -> np.ndarray:
    """Run a batch of samples through a programmed chip in lock-step.

    Bit-identical to calling :func:`run_chip_inference` on each sample
    separately (the property tests enforce it), but every tick advances all
    samples at once on the chip's batched engine: one ``(batch, axons) @
    (axons, neurons)`` matmul per core, ``(batch, neurons)`` neuron state,
    index-array spike routing.

    Args:
        chip: chip programmed by :func:`program_chip`.
        deployed: the deployed copy the chip was programmed from.
        core_ids: physical core ids returned by :func:`program_chip`.
        spike_volumes: binary array of shape (batch, ticks, input_dim).

    Returns:
        per-sample, per-class accumulated spike counts
        (batch, num_classes), dtype int64.
    """
    # A single-copy batch IS a one-copy multi-copy run: same tick loop,
    # same drain model, one driver to maintain.
    return run_chip_inference_multicopy(chip, [deployed], core_ids, spike_volumes)[0]


def run_chip_inference_multicopy(
    chip: TrueNorthChip,
    copies: Sequence[DeployedNetwork],
    core_ids: List[List[int]],
    spike_volumes: np.ndarray,
    copy_seeds: Optional[Sequence[int]] = None,
) -> np.ndarray:
    """Run a sample batch through ``len(copies)`` copies in one chip pass.

    Every copy sees the *same* input spike realizations (on hardware a
    splitter fans the one spike stream out to all copies) while integrating
    through its own programmed crossbar slice.  The result is bit-identical
    to programming one chip per copy and calling
    :func:`run_chip_inference_batch` on each (the property tests enforce
    it, including per-core spike counters and — in stochastic mode with
    matching ``copy_seeds`` — the per-copy LFSR streams), but a (copies,
    spf, batch) sweep costs one lock-step pass of ``C * batch`` rows
    instead of C chip programs and passes.

    Args:
        chip: chip programmed by :func:`program_chip_multicopy`.
        copies: the deployed copies the chip was programmed from.
        core_ids: physical core ids returned by :func:`program_chip_multicopy`.
        spike_volumes: binary array of shape (batch, ticks, input_dim),
            shared by every copy — or a *grouped* array of shape
            (groups, batch, ticks, input_dim) with ``groups`` dividing
            ``len(copies)``: block ``g`` is fanned out to the consecutive
            copies ``[g * C/groups, (g+1) * C/groups)``.  The grouped form
            is how the repeat-folded sweep engine runs R repeats' copies in
            one pass: repeat ``r`` owns one block of copies and contributes
            its own encoded volume as block ``r``.
        copy_seeds: per-copy core-PRNG base seeds (stochastic mode); copy
            ``c`` replays exactly the stream of a one-chip-per-copy run
            whose chip was programmed with ``core_seed=copy_seeds[c]``.

    Returns:
        per-copy, per-sample class counts of shape
        ``(len(copies), batch, num_classes)``, dtype int64;
        ``result[c]`` equals the per-copy loop's counts for copy ``c``.
    """
    if not copies:
        raise ValueError("at least one deployed copy is required")
    network = copies[0].corelet_network
    spike_volumes = np.asarray(spike_volumes)
    n_copies = len(copies)
    if (
        spike_volumes.ndim not in (3, 4)
        or spike_volumes.shape[-1] != network.input_dim
    ):
        raise ValueError(
            f"expected volumes of shape (batch, ticks, {network.input_dim}) "
            f"or (groups, batch, ticks, {network.input_dim}), "
            f"got {spike_volumes.shape}"
        )
    if spike_volumes.ndim == 4 and (
        spike_volumes.shape[0] < 1 or n_copies % spike_volumes.shape[0] != 0
    ):
        raise ValueError(
            f"volume carries {spike_volumes.shape[0]} input groups, which "
            f"does not divide the copy count {n_copies}"
        )
    if copy_seeds is not None and len(copy_seeds) != len(copies):
        raise ValueError(
            f"expected {len(copies)} copy seeds, got {len(copy_seeds)}"
        )
    _validate_latency_model(chip, network)
    batch, ticks = spike_volumes.shape[-3], spike_volumes.shape[-2]
    if batch == 0:
        return np.zeros((n_copies, 0, network.num_classes), dtype=np.int64)
    total = n_copies * batch
    chip.begin_multicopy(
        n_copies,
        batch,
        copy_seeds=None if copy_seeds is None else list(copy_seeds),
    )
    # Readout: one indicator matmul per binding replaces the per-spike
    # np.add.at scatter.  Accumulation runs in float (BLAS path; exact —
    # all operands are small integers) and casts back to int64 once.
    class_counts = np.zeros(
        (n_copies, batch, network.num_classes), dtype=np.float64
    )
    flat_counts = class_counts.reshape(total, network.num_classes)
    indicators = _readout_indicators(network)

    def accumulate(outputs) -> None:
        for binding_index, spikes in outputs.get(OUTPUT_CHANNEL, {}).items():
            np.add(
                flat_counts,
                spikes.astype(np.float32) @ indicators[binding_index],
                out=flat_counts,
            )

    per_binding_volumes = _gather_input_volumes(network, spike_volumes)
    for t in range(ticks):
        per_binding = {
            # One (samples, block) — or grouped (groups, samples, block) —
            # frame per binding: the chip broadcasts it over the per-copy
            # weight slices instead of materializing n_copies replicas
            # (splitter semantics).
            corelet_index: volume[..., t, :]
            for corelet_index, volume in enumerate(per_binding_volumes)
        }
        accumulate(chip.step_batch({INPUT_CHANNEL: per_binding}))
    _drain_chip(chip, network, accumulate, batched=True)
    return class_counts.astype(np.int64)


def _gather_input_volumes(network, spike_volumes: np.ndarray) -> List[np.ndarray]:
    """Per-binding (..., batch, ticks, block) volumes, gathered once up front.

    One fancy-index copy per layer-0 corelet instead of one per (corelet,
    tick); the tick loop then hands out contiguous views.  A leading
    ``groups`` axis (grouped shared input) passes straight through.
    """
    return [
        np.ascontiguousarray(
            spike_volumes[..., np.asarray(corelet.input_channels, dtype=int)]
        )
        for corelet in network.corelets[0]
    ]


def _readout_indicators(network) -> List[np.ndarray]:
    """Per-binding class-indicator matrices (float32 for the BLAS path).

    Entry ``[j, k]`` is 1.0 when readout neuron ``j`` of the binding's
    corelet belongs to class ``k``.  A tick's per-class sums are at most
    the corelet's neuron count, so the float32 matmul is exact, and the
    running totals accumulate in a float64 buffer.
    """
    indicators = []
    for corelet in network.corelets[-1]:
        channels = np.asarray(corelet.output_channels, dtype=int)
        classes = network.class_assignment[channels]
        indicator = np.zeros((channels.size, network.num_classes), dtype=np.float32)
        indicator[np.arange(channels.size), classes] = 1.0
        indicators.append(indicator)
    return indicators


def _validate_latency_model(chip: TrueNorthChip, network) -> None:
    """Reject configurations the exact drain model cannot bound.

    Multi-layer networks need ``delay >= 1``: the chip pops deliveries for
    tick ``t`` *before* cores submit at tick ``t``, so a zero-delay event
    targets a tick that has already been served and would be silently lost.

    Stateful (LIF) neurons need ``leak >= 0`` and ``reset_potential <
    threshold``: a negative leak charges the membrane on silent ticks, and
    a reset at or above the threshold re-fires immediately, so either way
    neurons can keep firing indefinitely after input stops and no finite
    drain point exists (unrouted output layers would truncate silently
    rather than trip the in-flight assertion).
    """
    if len(network.corelets) > 1 and chip.router.delay < 1:
        raise ValueError(
            "router delay must be >= 1 for multi-layer networks "
            f"(got {chip.router.delay})"
        )
    for core in chip.cores.values():
        neuron_cfg = core.config.neuron_config
        if neuron_cfg.history_free:
            continue
        if neuron_cfg.leak < 0:
            raise ValueError(
                "stateful neurons with negative leak have no finite drain "
                f"point (core {core.core_id} has leak={neuron_cfg.leak}); "
                "the latency model requires leak >= 0"
            )
        if neuron_cfg.reset_potential >= neuron_cfg.threshold:
            raise ValueError(
                "stateful neurons whose reset potential reaches the "
                f"threshold re-fire forever (core {core.core_id} has "
                f"reset_potential={neuron_cfg.reset_potential}, "
                f"threshold={neuron_cfg.threshold}); the latency model "
                "requires reset_potential < threshold"
            )


def _drain_chip(chip: TrueNorthChip, network, accumulate, batched: bool) -> None:
    """Step the chip until no spike is in flight, accumulating outputs.

    See the module docstring for the latency model: the exact flush point is
    ``(depth - 1) * delay`` ticks after the last input, which this loop
    reaches by stepping while the router holds pending spikes.  The bound is
    asserted, so a routed spike can never be silently dropped the way the
    old fixed drain heuristic could hide.
    """
    flush_bound = (len(network.corelets) - 1) * chip.router.delay
    extra = 0
    while chip.router.has_pending():
        extra += 1
        if extra > flush_bound:
            raise RuntimeError(
                f"spikes still in flight after {flush_bound} drain ticks; "
                "the latency model was violated (unexpected routing "
                "topology, e.g. a cycle?)"
            )
        accumulate(chip.step_batch(None) if batched else chip.step(None))


def _infer_synaptic_magnitude(deployed: DeployedNetwork) -> float:
    """Largest absolute sampled synaptic value (the integer weight ``c``)."""
    best = 0.0
    for layer in deployed.sampled_weights:
        for weights in layer:
            if weights.size:
                best = max(best, float(np.abs(weights).max()))
    return best if best > 0 else 1.0


def _infer_multicopy_magnitude(copies: Sequence[DeployedNetwork]) -> float:
    """``max`` of :func:`_infer_synaptic_magnitude` over a copy stack."""
    return max(_infer_synaptic_magnitude(copy) for copy in copies)


# ----------------------------------------------------------------------
# board-scale programming and inference
# ----------------------------------------------------------------------


@dataclass
class BoardProgram:
    """Everything the board inference driver needs about a programmed board.

    Produced by :func:`program_board_multicopy`.  Chips fall into two
    disjoint roles, mirroring the placement segments:

    * **image chips** host a stacked multi-copy image of whole copies —
      programmed by the exact machinery of :func:`program_chip_multicopy`,
      so their bindings and core ids follow the single-chip convention
      (binding index == corelet index);
    * **shard chips** host one single-copy shard of a copy split across
      consecutive chips; their inter-layer routes may leave the chip
      (``SpikeRouter.connect_remote``) and their binding order follows the
      shard's layer-major corelet order.

    Attributes:
        placement: the board placement the program realizes.
        segment_indices: indices into ``placement.segments`` that were
            programmed (a serve worker programs only its segment).
        image_chips: ``chip -> (global copy indices, core_ids)`` with
            ``core_ids[layer][corelet]`` as in :func:`program_chip`.
        shard_chips: ``chip -> (copy, lo, hi)`` — the flat layer-major
            corelet range hosted by the shard.
        shard_cores: ``(copy, layer, corelet) -> (chip, core_id)`` for
            every split-copy corelet.
        shard_inputs: ``chip -> [corelet index]`` in input-binding order.
        shard_outputs: ``chip -> [corelet index]`` in output-binding order.
    """

    placement: BoardPlacement
    segment_indices: Tuple[int, ...]
    image_chips: Dict[int, Tuple[Tuple[int, ...], List[List[int]]]] = field(
        default_factory=dict
    )
    shard_chips: Dict[int, Tuple[int, int, int]] = field(default_factory=dict)
    shard_cores: Dict[Tuple[int, int, int], Tuple[int, int]] = field(
        default_factory=dict
    )
    shard_inputs: Dict[int, List[int]] = field(default_factory=dict)
    shard_outputs: Dict[int, List[int]] = field(default_factory=dict)

    def programmed_copies(self) -> Tuple[int, ...]:
        """Global copy indices the programmed segments host, ascending."""
        held: List[int] = []
        for index in self.segment_indices:
            held.extend(self.placement.segments[index].copies)
        return tuple(sorted(held))


def program_board_multicopy(
    copies: Sequence[DeployedNetwork],
    board_config: Optional[BoardConfig] = None,
    neuron_config: Optional[NeuronConfig] = None,
    router_delay: Optional[int] = None,
    placement: Optional[BoardPlacement] = None,
    segment_indices: Optional[Sequence[int]] = None,
) -> Tuple[Board, BoardProgram]:
    """Program a multi-chip board holding ``len(copies)`` sampled copies.

    Copies are placed by :func:`~repro.mapping.placement.place_on_board`:
    whole copies stack onto shared chips as multi-copy images (the exact
    programming of :func:`program_chip_multicopy`, which is why a 1x1
    board is bit-identical to the single-chip engine), while a copy larger
    than one chip is sharded over consecutive chips with its inter-layer
    routes crossing chip boundaries through the mesh links.

    Shard cores are programmed with ``CoreConfig(seed=lo)`` where ``lo``
    is the shard's flat corelet offset: the chip-local core ``p`` then
    seeds ``LfsrPrng(seed + p + 1) = LfsrPrng(lo + p + 1)``, exactly the
    stream of global core ``lo + p`` on an unsplit chip — so stochastic
    synapses sample identically whether or not the copy was split, in
    every seeding mode.

    Args:
        copies: the sampled copies, identically structured.
        board_config: mesh shape, chip configuration, and link delay; a
            square-ish board just large enough for the copies (see
            :func:`repro.board.topology.board_shape_for`) when omitted.
        neuron_config: as in :func:`program_chip`.
        router_delay: on-chip delivery delay applied to *every* chip's
            router; must be >= 1.
        placement: a precomputed placement (defaults to
            ``place_on_board(network, len(copies), board_config)``).
        segment_indices: placement segments to program (default: all).  A
            serve worker programs only its segment's chips — at their
            original board indices, so link distances and delays are
            identical to the monolithic board.

    Returns:
        ``(board, program)``.
    """
    if not copies:
        raise ValueError("at least one deployed copy is required")
    _check_shared_structure(copies)
    network = copies[0].corelet_network
    if neuron_config is None:
        neuron_config = _default_neuron_config(_infer_multicopy_magnitude(copies))
    if neuron_config.stochastic_synapses:
        _check_shared_stochastic_programming(copies)
    if board_config is None:
        board_config = BoardConfig(
            grid_shape=board_shape_for(network.core_count, len(copies))
        )
    if placement is None:
        placement = place_on_board(network, len(copies), board_config)
    if segment_indices is None:
        segment_indices = tuple(range(len(placement.segments)))
    board = Board(board_config)
    if router_delay is not None:
        if router_delay < 1:
            raise ValueError(f"router_delay must be >= 1, got {router_delay}")
        for chip in board.chips:
            chip.router.delay = int(router_delay)

    uniform = _core_shape(network)
    stochastic = neuron_config.stochastic_synapses
    flat_corelets = [
        (layer, corelet_index)
        for layer, layer_corelets in enumerate(network.corelets)
        for corelet_index in range(len(layer_corelets))
    ]
    program = BoardProgram(
        placement=placement, segment_indices=tuple(int(i) for i in segment_indices)
    )

    for segment_index in program.segment_indices:
        segment = placement.segments[segment_index]
        if not segment.split:
            chip_index = segment.chips[0]
            seg_copies = [copies[c] for c in segment.copies]
            core_ids = _program_multicopy_image(
                board.chips[chip_index], seg_copies, neuron_config, uniform
            )
            program.image_chips[chip_index] = (segment.copies, core_ids)
            continue
        copy_index = segment.copies[0]
        deployed = copies[copy_index]
        for shard, chip_index in enumerate(segment.chips):
            chip = board.chips[chip_index]
            lo = segment.shard_bounds[shard]
            hi = segment.shard_bounds[shard + 1]
            for layer_index, corelet_index in flat_corelets[lo:hi]:
                corelet = network.corelets[layer_index][corelet_index]
                fit = (
                    uniform
                    if stochastic
                    else (corelet.axon_count, corelet.neuron_count)
                )
                core = chip.allocate_core(
                    CoreConfig(
                        axons=fit[0],
                        neurons=fit[1],
                        neuron_config=neuron_config,
                        seed=int(lo),
                    )
                )
                if stochastic:
                    values = np.rint(corelet.synaptic_values).astype(np.int64)
                    core.crossbar.set_signed_weights(
                        _full_core_matrix(core, values, corelet, np.int64)
                    )
                    core.crossbar.set_probabilities(
                        _full_core_matrix(core, corelet.probabilities, corelet, float)
                    )
                else:
                    sampled = deployed.sampled_weights[layer_index][corelet_index]
                    values = np.rint(sampled).astype(np.int64)
                    core.crossbar.set_signed_weights(
                        _full_core_matrix(core, values, corelet, np.int64)
                    )
                program.shard_cores[(copy_index, layer_index, corelet_index)] = (
                    chip_index,
                    core.core_id,
                )
            program.shard_chips[chip_index] = (copy_index, lo, hi)
        _wire_split_copy(board, network, copy_index, program)
    return board, program


def _wire_split_copy(board: Board, network, copy_index: int, program: BoardProgram) -> None:
    """Bind I/O and route the inter-layer spikes of one split copy.

    Same-chip consecutive layers route through the chip's own router;
    cross-chip transitions route through
    :meth:`~repro.truenorth.router.SpikeRouter.connect_remote` and travel
    the mesh links at run time.  Binding order within a chip follows the
    shard's layer-major corelet order and is recorded in the program.
    """
    shard_chip_indices = sorted(
        chip
        for chip, (copy, _, _) in program.shard_chips.items()
        if copy == copy_index
    )
    # External input: layer-0 axons, per hosting chip in corelet order.
    for chip_index in shard_chip_indices:
        for corelet_index, corelet in enumerate(network.corelets[0]):
            placed = program.shard_cores.get((copy_index, 0, corelet_index))
            if placed is None or placed[0] != chip_index:
                continue
            board.chips[chip_index].bind_input(
                INPUT_CHANNEL,
                placed[1],
                axon_map=list(range(corelet.axon_count)),
            )
            program.shard_inputs.setdefault(chip_index, []).append(corelet_index)

    # Inter-layer routing, same channel-matching rule as _wire_chip but with
    # (chip, core) targets.
    for layer_index in range(len(network.corelets) - 1):
        channel_to_target: Dict[int, Tuple[int, int, int]] = {}
        for next_index, next_corelet in enumerate(network.corelets[layer_index + 1]):
            target_chip, target_core = program.shard_cores[
                (copy_index, layer_index + 1, next_index)
            ]
            for axon, channel in enumerate(next_corelet.input_channels):
                channel_to_target[channel] = (target_chip, target_core, axon)
        for corelet_index, corelet in enumerate(network.corelets[layer_index]):
            source_chip, source_core = program.shard_cores[
                (copy_index, layer_index, corelet_index)
            ]
            router = board.chips[source_chip].router
            for neuron, channel in enumerate(corelet.output_channels):
                target = channel_to_target.get(channel)
                if target is None:
                    continue
                if target[0] == source_chip:
                    router.connect(source_core, neuron, target[1], target[2])
                else:
                    router.connect_remote(
                        source_core, neuron, target[0], target[1], target[2]
                    )

    # External output: last-layer neurons, per hosting chip in corelet order.
    last_layer = len(network.corelets) - 1
    for chip_index in shard_chip_indices:
        for corelet_index, corelet in enumerate(network.corelets[-1]):
            placed = program.shard_cores.get((copy_index, last_layer, corelet_index))
            if placed is None or placed[0] != chip_index:
                continue
            board.chips[chip_index].bind_output(
                OUTPUT_CHANNEL,
                placed[1],
                neuron_map=list(range(corelet.neuron_count)),
            )
            program.shard_outputs.setdefault(chip_index, []).append(corelet_index)


def _board_flush_bound(board: Board, program: BoardProgram, network) -> int:
    """Exact worst-path drain bound of a programmed board.

    Per copy, a spike injected at the last input tick takes at most
    ``sum over layer transitions of (router_delay + link_delay *
    worst_chip_distance(transition))`` further ticks to reach the output
    binding; whole copies contribute the single-chip bound
    ``(depth - 1) * delay``.  The board drains until no router holds a
    pending spike and asserts this bound, exactly like the single-chip
    :func:`_drain_chip`.
    """
    delay = max(
        (board.chips[i].router.delay for i in board.active_chips()),
        default=1,
    )
    link_delay = board.config.link_delay
    depth = len(network.corelets)
    bound = 0
    for copy in program.programmed_copies():
        distances = program.placement.transition_chip_distances(copy)
        if len(distances) != depth - 1:
            distances = [0] * (depth - 1)
        bound = max(
            bound,
            sum(delay + link_delay * d for d in distances),
        )
    return bound


def run_board_inference_multicopy(
    board: Board,
    copies: Sequence[DeployedNetwork],
    program: BoardProgram,
    spike_volumes: np.ndarray,
    copy_seeds: Optional[Sequence[int]] = None,
) -> np.ndarray:
    """Run a sample batch through ``len(copies)`` copies on a board.

    The board-scale sibling of :func:`run_chip_inference_multicopy`: every
    copy sees the same input spike realizations (or its group's block, in
    the grouped form) while integrating through its own programmed
    crossbars, which may span several chips.  On a 1x1 board with zero
    link delay the result — class counts, per-core spike counters, and
    per-copy LFSR streams — is bit-identical to the single-chip engine
    (the equivalence tests pin it); larger boards change only *where*
    cores live and *when* boundary-crossing spikes arrive.

    Args:
        board: board programmed by :func:`program_board_multicopy`.
        copies: the deployed copies the board was programmed from.
        program: the programming record returned with the board.
        spike_volumes: ``(batch, ticks, input_dim)`` shared by every copy,
            or grouped ``(groups, batch, ticks, input_dim)`` with
            ``groups`` dividing ``len(copies)`` (block ``g`` feeds the
            consecutive copies of group ``g``), exactly as in
            :func:`run_chip_inference_multicopy`.
        copy_seeds: per-copy core-PRNG base seeds (stochastic mode), as in
            :func:`run_chip_inference_multicopy`; shard chips derive their
            chip-local seed from the shard offset so split copies replay
            the unsplit streams.

    Returns:
        per-copy, per-sample class counts ``(len(copies), batch,
        num_classes)``, dtype int64.  When the program covers only some
        segments (serve sharding), rows of copies outside the programmed
        segments are zero.
    """
    if not copies:
        raise ValueError("at least one deployed copy is required")
    network = copies[0].corelet_network
    spike_volumes = np.asarray(spike_volumes)
    n_copies = len(copies)
    if (
        spike_volumes.ndim not in (3, 4)
        or spike_volumes.shape[-1] != network.input_dim
    ):
        raise ValueError(
            f"expected volumes of shape (batch, ticks, {network.input_dim}) "
            f"or (groups, batch, ticks, {network.input_dim}), "
            f"got {spike_volumes.shape}"
        )
    if spike_volumes.ndim == 4 and (
        spike_volumes.shape[0] < 1 or n_copies % spike_volumes.shape[0] != 0
    ):
        raise ValueError(
            f"volume carries {spike_volumes.shape[0]} input groups, which "
            f"does not divide the copy count {n_copies}"
        )
    if copy_seeds is not None and len(copy_seeds) != n_copies:
        raise ValueError(
            f"expected {n_copies} copy seeds, got {len(copy_seeds)}"
        )
    batch, ticks = spike_volumes.shape[-3], spike_volumes.shape[-2]
    if batch == 0:
        return np.zeros((n_copies, 0, network.num_classes), dtype=np.int64)

    grouped = spike_volumes.ndim == 4
    groups = spike_volumes.shape[0] if grouped else 1
    per_group = n_copies // groups

    # Begin every programmed chip and validate the latency model on it.
    for chip_index, (seg_copies, _) in program.image_chips.items():
        chip = board.chips[chip_index]
        _validate_latency_model(chip, network)
        seeds = (
            None
            if copy_seeds is None
            else [int(copy_seeds[c]) for c in seg_copies]
        )
        chip.begin_multicopy(len(seg_copies), batch, copy_seeds=seeds)
    for chip_index, (copy_index, lo, _) in program.shard_chips.items():
        chip = board.chips[chip_index]
        _validate_latency_model(chip, network)
        seeds = (
            None
            if copy_seeds is None
            else [int(copy_seeds[copy_index]) + int(lo)]
        )
        chip.begin_batch(batch, copies=1, copy_seeds=seeds)

    # Per-binding input volumes, gathered once; a leading groups axis (if
    # any) passes through, so entries are (batch, ticks, block) or
    # (groups, batch, ticks, block).
    per_binding_volumes = _gather_input_volumes(network, spike_volumes)

    # Input plan: chip -> binding -> sliceable volume whose [..., t, :]
    # frame has the layout TrueNorthChip.step_batch expects.  Image chips
    # receive the shared (batch, block) frame — or their aligned grouped
    # block — exactly as the single-chip driver feeds them, which keeps
    # the 1x1 board's input arrays literally identical.
    plans: Dict[int, Dict[int, np.ndarray]] = {}
    for chip_index, (seg_copies, _) in program.image_chips.items():
        chip_plan: Dict[int, np.ndarray] = {}
        for corelet_index in range(len(network.corelets[0])):
            volume = per_binding_volumes[corelet_index]
            if not grouped:
                chip_plan[corelet_index] = volume
                continue
            seg_groups = sorted({c // per_group for c in seg_copies})
            aligned = (
                seg_copies[0] % per_group == 0
                and len(seg_copies) % per_group == 0
                and tuple(seg_copies)
                == tuple(range(seg_copies[0], seg_copies[0] + len(seg_copies)))
            )
            if len(seg_groups) == 1:
                chip_plan[corelet_index] = volume[seg_groups[0]]
            elif aligned:
                chip_plan[corelet_index] = volume[
                    seg_groups[0] : seg_groups[-1] + 1
                ]
            else:
                # Copies straddling group boundaries: materialize one
                # block per copy; the chip collapses copies-many blocks
                # to full copy-major input.
                chip_plan[corelet_index] = volume[
                    np.asarray([c // per_group for c in seg_copies], dtype=int)
                ]
        plans[chip_index] = chip_plan
    for chip_index, (copy_index, _, _) in program.shard_chips.items():
        chip_plan = {}
        for binding_index, corelet_index in enumerate(
            program.shard_inputs.get(chip_index, [])
        ):
            volume = per_binding_volumes[corelet_index]
            chip_plan[binding_index] = (
                volume[copy_index // per_group] if grouped else volume
            )
        if chip_plan:
            plans[chip_index] = chip_plan

    # Readout sinks: chip -> [(binding, indicator, flat-row view or index)].
    class_counts = np.zeros(
        (n_copies, batch, network.num_classes), dtype=np.float64
    )
    flat_counts = class_counts.reshape(n_copies * batch, network.num_classes)
    indicators = _readout_indicators(network)
    sinks: Dict[int, List[Tuple[int, np.ndarray, object]]] = {}
    for chip_index, (seg_copies, _) in program.image_chips.items():
        contiguous = tuple(seg_copies) == tuple(
            range(seg_copies[0], seg_copies[0] + len(seg_copies))
        )
        rows: object
        if contiguous:
            rows = slice(seg_copies[0] * batch, (seg_copies[0] + len(seg_copies)) * batch)
        else:
            rows = np.concatenate(
                [np.arange(c * batch, (c + 1) * batch) for c in seg_copies]
            )
        sinks[chip_index] = [
            (corelet_index, indicators[corelet_index], rows)
            for corelet_index in range(len(network.corelets[-1]))
        ]
    for chip_index, (copy_index, _, _) in program.shard_chips.items():
        entries = []
        for binding_index, corelet_index in enumerate(
            program.shard_outputs.get(chip_index, [])
        ):
            rows = slice(copy_index * batch, (copy_index + 1) * batch)
            entries.append((binding_index, indicators[corelet_index], rows))
        if entries:
            sinks[chip_index] = entries

    def accumulate(per_chip_outputs) -> None:
        for chip_index, outputs in per_chip_outputs.items():
            entries = sinks.get(chip_index)
            if entries is None:
                continue
            per_binding = outputs.get(OUTPUT_CHANNEL, {})
            for binding_index, indicator, rows in entries:
                spikes = per_binding.get(binding_index)
                if spikes is None:
                    continue
                contribution = spikes.astype(np.float32) @ indicator
                if isinstance(rows, slice):
                    view = flat_counts[rows]
                    np.add(view, contribution, out=view)
                else:
                    flat_counts[rows] += contribution

    for t in range(ticks):
        inputs = {
            chip_index: {
                INPUT_CHANNEL: {
                    binding_index: volume[..., t, :]
                    for binding_index, volume in chip_plan.items()
                }
            }
            for chip_index, chip_plan in plans.items()
        }
        accumulate(board.step_batch(inputs))

    flush_bound = _board_flush_bound(board, program, network)
    extra = 0
    while board.has_pending():
        extra += 1
        if extra > flush_bound:
            raise RuntimeError(
                f"spikes still in flight after {flush_bound} drain ticks; "
                "the board latency model was violated (unexpected routing "
                "topology, e.g. a cycle?)"
            )
        accumulate(board.step_batch(None))
    return class_counts.astype(np.int64)


def board_spike_counters(
    board: Board, copies: Sequence[DeployedNetwork], program: BoardProgram
) -> np.ndarray:
    """Per-copy, per-core spike counters of the last board run.

    Returns ``(len(copies), cores_per_copy, batch)`` int64 with cores in
    flat layer-major corelet order — the same layout the chip backend
    reads from :attr:`NeurosynapticCore.multicopy_spike_counts`, so the
    1x1-board counters compare bit-for-bit.  Rows of copies outside the
    programmed segments are zero.
    """
    network = copies[0].corelet_network
    flat_corelets = [
        (layer, corelet_index)
        for layer, layer_corelets in enumerate(network.corelets)
        for corelet_index in range(len(layer_corelets))
    ]
    batches = [
        board.chips[i].batch_size // board.chips[i].copies
        for i in list(program.image_chips) + list(program.shard_chips)
        if board.chips[i].batch_size is not None
    ]
    if not batches or len(set(batches)) != 1:
        raise RuntimeError("board chips are not in a consistent batch run")
    samples = batches[0]
    counters = np.zeros(
        (len(copies), len(flat_corelets), samples), dtype=np.int64
    )
    for chip_index, (seg_copies, core_ids) in program.image_chips.items():
        chip = board.chips[chip_index]
        flat_ids = [core_id for layer in core_ids for core_id in layer]
        for local, copy_index in enumerate(seg_copies):
            for flat_index, core_id in enumerate(flat_ids):
                counts = chip.core(core_id).multicopy_spike_counts
                counters[copy_index, flat_index] = counts[local]
    for chip_index, (copy_index, lo, hi) in program.shard_chips.items():
        chip = board.chips[chip_index]
        for flat_index in range(lo, hi):
            layer, corelet_index = flat_corelets[flat_index]
            _, core_id = program.shard_cores[(copy_index, layer, corelet_index)]
            counts = chip.core(core_id).batch_spike_counts
            counters[copy_index, flat_index] = counts
    return counters


