"""End-to-end pipeline onto the chip simulator.

The fast vectorized evaluator in :mod:`repro.mapping.deploy` is what the
large sweeps use, but the reproduction also provides the "real" path: program
an actual :class:`~repro.truenorth.chip.TrueNorthChip` from a deployed
network copy (crossbar connectivity, axon types per row, routing of hidden
layers into the next layer's axons, external I/O bindings) and push spike
frames through it tick by tick.  The test suite uses this path to check that
the vectorized evaluator and the hardware-level simulation agree exactly.

Two inference drivers exist: :func:`run_chip_inference` pushes one sample
through the chip (the scalar reference), and :func:`run_chip_inference_batch`
pushes a whole ``(batch, ticks, input_dim)`` spike volume through in
lock-step using the chip's batched engine — bit-identical class counts, one
crossbar matmul per core per tick instead of one per (sample, core, tick).

Latency model
-------------

The chip is synchronous: within one tick every core consumes the axon
spikes delivered at the start of the tick and emits its output spikes at the
end of it, and the router delivers a spike submitted at tick ``t`` at tick
``t + delay``.  External input injected at tick ``t`` therefore appears on
the output binding of a ``depth``-layer network at tick
``t + (depth - 1) * delay``: layer 0 fires at ``t``, layer ``l`` at
``t + l * delay``.  For ``T`` input ticks the final output lands at tick
``T - 1 + (depth - 1) * delay``, so exactly ``(depth - 1) * delay`` drain
ticks after the last input flush every in-flight spike.  (The previous
heuristic, ``depth * (delay + 1) + 2``, over-drained every sample; the
drivers now drain until the router queue is empty and assert the exact
bound.)  History-free cores cannot fire on a silent crossbar, so an empty
router queue means the network is quiescent; stateful LIF cores with
``leak >= 0`` and ``reset_potential < threshold`` also go quiet once input
stops (the membrane potential is non-increasing from then on and a fired
neuron restarts below threshold).  Configurations without a finite drain
point — negative leak, or a reset at/above threshold — are rejected up
front by the inference drivers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.mapping.deploy import DeployedNetwork
from repro.truenorth.chip import TrueNorthChip
from repro.truenorth.config import ChipConfig, CoreConfig, NeuronConfig

#: Axon-type convention used when programming a chip from a deployed copy:
#: type 0 carries the positive synaptic value, type 1 the negative one.
_EXCITATORY_TYPE = 0
_INHIBITORY_TYPE = 1

#: Channel names used for the external bindings created by :func:`program_chip`.
INPUT_CHANNEL = "pixels"
OUTPUT_CHANNEL = "classes"


def program_chip(
    deployed: DeployedNetwork,
    chip: Optional[TrueNorthChip] = None,
    neuron_config: Optional[NeuronConfig] = None,
    router_delay: Optional[int] = None,
) -> Tuple[TrueNorthChip, List[List[int]]]:
    """Program a chip with one deployed network copy.

    Every corelet becomes one physical core: the sampled signed weights are
    written into the crossbar (per-connection signed mode, the simulator's
    functional equivalent of IBM's axon-splitting corelets — see
    :meth:`repro.truenorth.crossbar.SynapticCrossbar.set_signed_weights`),
    hidden-to-hidden connections are routed through the spike router,
    first-layer axons are bound to the external input channel, and last-layer
    neurons to the external output channel.

    Args:
        deployed: a sampled network copy.
        chip: chip to program; a fresh one (with capacity for the copy) is
            created when omitted.
        neuron_config: overrides the paper's history-free zero-threshold
            neuron (e.g. a stateful LIF configuration for the equivalence
            tests); the default reproduces the paper's deployment.
        router_delay: overrides the router's delivery delay; must be >= 1 so
            the synchronous tick discipline can deliver every routed spike.
            Only valid when the chip is created here — combining it with an
            explicit ``chip`` raises (set the delay on that chip's router
            instead of having it silently ignored).

    Returns:
        (chip, core_ids) where ``core_ids[layer][index]`` is the physical core
        id assigned to each corelet.
    """
    network = deployed.corelet_network
    if neuron_config is None:
        synaptic_magnitude = _infer_synaptic_magnitude(deployed)
        weight_table = (
            int(round(synaptic_magnitude)),
            -int(round(synaptic_magnitude)),
            0,
            0,
        )
        neuron_config = NeuronConfig(
            weight_table=weight_table,
            leak=0,
            threshold=0,
            history_free=True,
            stochastic_synapses=False,
        )
    if chip is not None and router_delay is not None:
        raise ValueError(
            "router_delay only applies to a freshly created chip; set the "
            "delay on the provided chip's router instead"
        )
    if chip is None:
        rows = int(np.ceil(np.sqrt(network.core_count))) or 1
        grid = (max(rows, 1), max(int(np.ceil(network.core_count / rows)), 1))
        chip = TrueNorthChip(
            ChipConfig(grid_shape=grid, core_config=CoreConfig(neuron_config=neuron_config))
        )
        if router_delay is not None:
            if router_delay < 1:
                raise ValueError(f"router_delay must be >= 1, got {router_delay}")
            chip.router.delay = int(router_delay)

    core_ids: List[List[int]] = []
    for layer_index, layer_corelets in enumerate(network.corelets):
        layer_ids: List[int] = []
        for corelet_index, corelet in enumerate(layer_corelets):
            core = chip.allocate_core(CoreConfig(neuron_config=neuron_config))
            sampled = deployed.sampled_weights[layer_index][corelet_index]
            axons = corelet.axon_count
            neurons = corelet.neuron_count
            full_weights = np.zeros(
                (core.config.axons, core.config.neurons), dtype=np.int64
            )
            full_weights[:axons, :neurons] = np.rint(sampled).astype(np.int64)
            core.crossbar.set_signed_weights(full_weights)
            layer_ids.append(core.core_id)
        core_ids.append(layer_ids)

    # External input: layer-0 axons receive the pixel spikes of their block.
    for corelet_index, corelet in enumerate(network.corelets[0]):
        chip.bind_input(
            INPUT_CHANNEL,
            core_ids[0][corelet_index],
            axon_map=list(range(corelet.axon_count)),
        )

    # Inter-layer routing: neuron j of layer L feeds the axon of the layer L+1
    # corelet whose input channel equals j's global output channel.
    for layer_index in range(len(network.corelets) - 1):
        next_layer = network.corelets[layer_index + 1]
        channel_to_target: Dict[int, Tuple[int, int]] = {}
        for next_index, next_corelet in enumerate(next_layer):
            for axon, channel in enumerate(next_corelet.input_channels):
                channel_to_target[channel] = (core_ids[layer_index + 1][next_index], axon)
        for corelet_index, corelet in enumerate(network.corelets[layer_index]):
            source_core = core_ids[layer_index][corelet_index]
            for neuron, channel in enumerate(corelet.output_channels):
                target = channel_to_target.get(channel)
                if target is None:
                    continue
                chip.router.connect(source_core, neuron, target[0], target[1])

    # External output: last-layer neurons feed the class readout.
    for corelet_index, corelet in enumerate(network.corelets[-1]):
        chip.bind_output(
            OUTPUT_CHANNEL,
            core_ids[-1][corelet_index],
            neuron_map=list(range(corelet.neuron_count)),
        )
    return chip, core_ids


def run_chip_inference(
    chip: TrueNorthChip,
    deployed: DeployedNetwork,
    core_ids: List[List[int]],
    spike_frames: np.ndarray,
) -> np.ndarray:
    """Run one sample's spike frames through a programmed chip.

    Args:
        chip: chip programmed by :func:`program_chip`.
        deployed: the deployed copy the chip was programmed from (provides the
            corelet structure for the readout).
        core_ids: physical core ids returned by :func:`program_chip`.
        spike_frames: binary array of shape (ticks, input_dim).

    Returns:
        per-class accumulated spike counts (num_classes,).
    """
    network = deployed.corelet_network
    spike_frames = np.asarray(spike_frames)
    if spike_frames.ndim != 2 or spike_frames.shape[1] != network.input_dim:
        raise ValueError(
            f"expected frames of shape (ticks, {network.input_dim}), "
            f"got {spike_frames.shape}"
        )
    _validate_latency_model(chip, network)
    chip.reset()
    ticks = spike_frames.shape[0]
    class_counts = np.zeros(network.num_classes, dtype=np.int64)

    def accumulate(outputs) -> None:
        for binding_index, spikes in outputs.get(OUTPUT_CHANNEL, {}).items():
            corelet = network.corelets[-1][binding_index]
            channels = np.asarray(corelet.output_channels, dtype=int)
            classes = network.class_assignment[channels]
            np.add.at(class_counts, classes, spikes.astype(np.int64))

    for t in range(ticks):
        per_binding = {}
        for corelet_index, corelet in enumerate(network.corelets[0]):
            indices = np.asarray(corelet.input_channels, dtype=int)
            per_binding[corelet_index] = spike_frames[t, indices]
        accumulate(chip.step({INPUT_CHANNEL: per_binding}))
    _drain_chip(chip, network, accumulate, batched=False)
    return class_counts


def run_chip_inference_batch(
    chip: TrueNorthChip,
    deployed: DeployedNetwork,
    core_ids: List[List[int]],
    spike_volumes: np.ndarray,
) -> np.ndarray:
    """Run a batch of samples through a programmed chip in lock-step.

    Bit-identical to calling :func:`run_chip_inference` on each sample
    separately (the property tests enforce it), but every tick advances all
    samples at once on the chip's batched engine: one ``(batch, axons) @
    (axons, neurons)`` matmul per core, ``(batch, neurons)`` neuron state,
    index-array spike routing.

    Args:
        chip: chip programmed by :func:`program_chip`.
        deployed: the deployed copy the chip was programmed from.
        core_ids: physical core ids returned by :func:`program_chip`.
        spike_volumes: binary array of shape (batch, ticks, input_dim).

    Returns:
        per-sample, per-class accumulated spike counts
        (batch, num_classes), dtype int64.
    """
    network = deployed.corelet_network
    spike_volumes = np.asarray(spike_volumes)
    if spike_volumes.ndim != 3 or spike_volumes.shape[2] != network.input_dim:
        raise ValueError(
            f"expected volumes of shape (batch, ticks, {network.input_dim}), "
            f"got {spike_volumes.shape}"
        )
    _validate_latency_model(chip, network)
    batch, ticks = spike_volumes.shape[0], spike_volumes.shape[1]
    if batch == 0:
        return np.zeros((0, network.num_classes), dtype=np.int64)
    chip.begin_batch(batch)
    class_counts = np.zeros((batch, network.num_classes), dtype=np.int64)
    # Readout: one indicator matmul per binding replaces the per-spike
    # np.add.at scatter (integer matmuls are exact).
    indicators = []
    for corelet in network.corelets[-1]:
        channels = np.asarray(corelet.output_channels, dtype=int)
        classes = network.class_assignment[channels]
        indicator = np.zeros((channels.size, network.num_classes), dtype=np.int64)
        indicator[np.arange(channels.size), classes] = 1
        indicators.append(indicator)

    def accumulate(outputs) -> None:
        for binding_index, spikes in outputs.get(OUTPUT_CHANNEL, {}).items():
            np.add(
                class_counts,
                spikes.astype(np.int64) @ indicators[binding_index],
                out=class_counts,
            )

    input_indices = [
        np.asarray(corelet.input_channels, dtype=int)
        for corelet in network.corelets[0]
    ]
    for t in range(ticks):
        per_binding = {
            corelet_index: spike_volumes[:, t, indices]
            for corelet_index, indices in enumerate(input_indices)
        }
        accumulate(chip.step_batch({INPUT_CHANNEL: per_binding}))
    _drain_chip(chip, network, accumulate, batched=True)
    return class_counts


def _validate_latency_model(chip: TrueNorthChip, network) -> None:
    """Reject configurations the exact drain model cannot bound.

    Multi-layer networks need ``delay >= 1``: the chip pops deliveries for
    tick ``t`` *before* cores submit at tick ``t``, so a zero-delay event
    targets a tick that has already been served and would be silently lost.

    Stateful (LIF) neurons need ``leak >= 0`` and ``reset_potential <
    threshold``: a negative leak charges the membrane on silent ticks, and
    a reset at or above the threshold re-fires immediately, so either way
    neurons can keep firing indefinitely after input stops and no finite
    drain point exists (unrouted output layers would truncate silently
    rather than trip the in-flight assertion).
    """
    if len(network.corelets) > 1 and chip.router.delay < 1:
        raise ValueError(
            "router delay must be >= 1 for multi-layer networks "
            f"(got {chip.router.delay})"
        )
    for core in chip.cores.values():
        neuron_cfg = core.config.neuron_config
        if neuron_cfg.history_free:
            continue
        if neuron_cfg.leak < 0:
            raise ValueError(
                "stateful neurons with negative leak have no finite drain "
                f"point (core {core.core_id} has leak={neuron_cfg.leak}); "
                "the latency model requires leak >= 0"
            )
        if neuron_cfg.reset_potential >= neuron_cfg.threshold:
            raise ValueError(
                "stateful neurons whose reset potential reaches the "
                f"threshold re-fire forever (core {core.core_id} has "
                f"reset_potential={neuron_cfg.reset_potential}, "
                f"threshold={neuron_cfg.threshold}); the latency model "
                "requires reset_potential < threshold"
            )


def _drain_chip(chip: TrueNorthChip, network, accumulate, batched: bool) -> None:
    """Step the chip until no spike is in flight, accumulating outputs.

    See the module docstring for the latency model: the exact flush point is
    ``(depth - 1) * delay`` ticks after the last input, which this loop
    reaches by stepping while the router holds pending spikes.  The bound is
    asserted, so a routed spike can never be silently dropped the way the
    old fixed drain heuristic could hide.
    """
    flush_bound = (len(network.corelets) - 1) * chip.router.delay
    extra = 0
    while chip.router.has_pending():
        extra += 1
        if extra > flush_bound:
            raise RuntimeError(
                f"spikes still in flight after {flush_bound} drain ticks; "
                "the latency model was violated (unexpected routing "
                "topology, e.g. a cycle?)"
            )
        accumulate(chip.step_batch(None) if batched else chip.step(None))


def _infer_synaptic_magnitude(deployed: DeployedNetwork) -> float:
    """Largest absolute sampled synaptic value (the integer weight ``c``)."""
    best = 0.0
    for layer in deployed.sampled_weights:
        for weights in layer:
            if weights.size:
                best = max(best, float(np.abs(weights).max()))
    return best if best > 0 else 1.0


