"""Mapping trained models onto neuro-synaptic cores.

The deployment path of the paper is: train a model whose weights are
connectivity probabilities (``repro.core``), partition the input image into
blocks — one per core — by a stride (``blocks``), convert each block's weight
matrix into Bernoulli-sampled crossbar connectivity (``deploy``), optionally
instantiate several spatial copies whose outputs are merged (``duplication``),
place the resulting corelets onto a chip (``placement``), and run spikes
through them (either the fast vectorized evaluator in ``deploy`` or the full
chip simulator via ``pipeline``).
"""

from repro.mapping.blocks import BlockPartition, stride_blocks
from repro.mapping.corelet import Corelet, CoreletNetwork, build_corelets
from repro.mapping.deploy import DeployedNetwork, sample_connectivity, deploy_model
from repro.mapping.duplication import DuplicatedDeployment, deploy_with_copies
from repro.mapping.placement import (
    BoardPlacement,
    BoardSegment,
    ChipPlacement,
    place_on_board,
    place_on_chip,
)
from repro.mapping.pipeline import (
    BoardProgram,
    board_spike_counters,
    program_board_multicopy,
    program_chip,
    program_chip_multicopy,
    run_board_inference_multicopy,
    run_chip_inference,
    run_chip_inference_batch,
    run_chip_inference_multicopy,
)

__all__ = [
    "BlockPartition",
    "stride_blocks",
    "Corelet",
    "CoreletNetwork",
    "build_corelets",
    "DeployedNetwork",
    "sample_connectivity",
    "deploy_model",
    "DuplicatedDeployment",
    "deploy_with_copies",
    "ChipPlacement",
    "place_on_chip",
    "BoardPlacement",
    "BoardSegment",
    "place_on_board",
    "BoardProgram",
    "board_spike_counters",
    "program_board_multicopy",
    "program_chip",
    "program_chip_multicopy",
    "run_board_inference_multicopy",
    "run_chip_inference",
    "run_chip_inference_batch",
    "run_chip_inference_multicopy",
]
