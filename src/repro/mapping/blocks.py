"""Stride-based block partitioning of input images (paper Figure 3, Table 3).

Each neuro-synaptic core receives one fixed-size block of the input image via
its 256 axons.  The paper slides a 16x16 window over the image with a
configurable stride (12 for test bench 1, 4 for 2, 2 for 3, and 3 / 1 over
the 19x19 reshaped RS130 features); smaller strides produce more, overlapping
blocks and therefore more first-layer cores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np


@dataclass(frozen=True)
class BlockPartition:
    """Result of partitioning an image into core-sized blocks.

    Attributes:
        image_shape: (height, width) of the source image.
        block_shape: (height, width) of each block.
        stride: window stride in pixels.
        blocks: tuple of flat pixel-index tuples, one per block, each of
            length ``block_height * block_width``; indices address the
            flattened (row-major) image.
    """

    image_shape: Tuple[int, int]
    block_shape: Tuple[int, int]
    stride: int
    blocks: Tuple[Tuple[int, ...], ...]

    @property
    def block_count(self) -> int:
        """Number of blocks (first-layer cores)."""
        return len(self.blocks)

    @property
    def block_size(self) -> int:
        """Pixels per block (axons used per core)."""
        return self.block_shape[0] * self.block_shape[1]

    def grid_shape(self) -> Tuple[int, int]:
        """Number of block positions along (rows, cols)."""
        rows = _positions(self.image_shape[0], self.block_shape[0], self.stride)
        cols = _positions(self.image_shape[1], self.block_shape[1], self.stride)
        return len(rows), len(cols)

    def coverage(self) -> np.ndarray:
        """How many blocks cover each pixel (2-D array of the image shape)."""
        counts = np.zeros(self.image_shape[0] * self.image_shape[1], dtype=int)
        for block in self.blocks:
            counts[np.asarray(block, dtype=int)] += 1
        return counts.reshape(self.image_shape)


def _positions(extent: int, window: int, stride: int) -> List[int]:
    """Top-left offsets of a sliding window (always includes the last fit)."""
    if window > extent:
        raise ValueError(f"window {window} larger than extent {extent}")
    last = extent - window
    positions = list(range(0, last + 1, stride))
    if positions[-1] != last:
        positions.append(last)
    return positions


def stride_blocks(
    image_shape: Tuple[int, int],
    block_shape: Tuple[int, int] = (16, 16),
    stride: int = 12,
) -> BlockPartition:
    """Partition an image into (possibly overlapping) blocks by a stride.

    Args:
        image_shape: (height, width) of the image.
        block_shape: (height, width) of each block; the paper always uses
            16x16 = 256 pixels, filling a core's axons exactly.
        stride: sliding-window stride; strides smaller than the block edge
            produce overlapping blocks.

    Returns:
        a :class:`BlockPartition` whose blocks enumerate window positions in
        row-major order.  A final position flush with the image border is
        always included so every pixel is covered.
    """
    height, width = image_shape
    block_height, block_width = block_shape
    if height <= 0 or width <= 0:
        raise ValueError(f"image_shape must be positive, got {image_shape}")
    if block_height <= 0 or block_width <= 0:
        raise ValueError(f"block_shape must be positive, got {block_shape}")
    if stride <= 0:
        raise ValueError(f"stride must be positive, got {stride}")
    row_positions = _positions(height, block_height, stride)
    col_positions = _positions(width, block_width, stride)
    blocks: List[Tuple[int, ...]] = []
    for top in row_positions:
        for left in col_positions:
            rows = np.arange(top, top + block_height)
            cols = np.arange(left, left + block_width)
            flat = (rows[:, None] * width + cols[None, :]).ravel()
            blocks.append(tuple(int(i) for i in flat))
    return BlockPartition(
        image_shape=(height, width),
        block_shape=(block_height, block_width),
        stride=stride,
        blocks=tuple(blocks),
    )
