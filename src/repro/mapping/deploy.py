"""Deployment: sampling crossbar connectivity and evaluating the result.

Deployment turns the trained connection probabilities into concrete binary
crossbar connectivities by Bernoulli sampling (one independent sample per
network copy), exactly as the paper's flow does when it writes a model onto
the chip.  :class:`DeployedNetwork` is the fast, vectorized functional
equivalent of running the sampled network on hardware: it propagates binary
spike frames through the sampled integer weights with the McCulloch-Pitts
threshold rule.  Its arithmetic is identical to the per-core simulator in
``repro.truenorth`` (the test suite checks the two agree spike for spike);
the vectorized form exists because the evaluation sweeps of Figures 7-9 run
hundreds of samples through up to 16 copies x 16 spf combinations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.model import TrueNorthModel
from repro.encoding.stochastic import StochasticEncoder
from repro.mapping.corelet import Corelet, CoreletNetwork, build_corelets
from repro.utils.rng import RngLike, new_rng


def sample_connectivity(corelet: Corelet, rng: RngLike = None) -> np.ndarray:
    """Draw one Bernoulli connectivity sample for a corelet.

    Returns a signed integer weight matrix: ``synaptic_value`` where the
    connection was sampled ON, zero where it was sampled OFF.
    """
    rng = new_rng(rng)
    on = rng.random(corelet.probabilities.shape) < corelet.probabilities
    return np.where(on, corelet.synaptic_values, 0.0)


@dataclass
class DeployedNetwork:
    """One sampled (deployed) copy of a corelet network.

    Attributes:
        corelet_network: the logical corelets this deployment was sampled from.
        sampled_weights: sampled signed weight matrices, grouped by layer then
            core, aligned with ``corelet_network.corelets``.
    """

    corelet_network: CoreletNetwork
    sampled_weights: List[List[np.ndarray]] = field(default_factory=list)

    @property
    def core_count(self) -> int:
        """Cores occupied by this copy."""
        return self.corelet_network.core_count

    # ------------------------------------------------------------------
    def forward_spikes(self, spike_frame: np.ndarray) -> np.ndarray:
        """Propagate one batch of input spike vectors through the copy.

        Args:
            spike_frame: binary array of shape (batch, input_dim).

        Returns:
            binary array of shape (batch, last_layer_output_dim) with the
            output spikes of the last hidden layer's neurons.
        """
        spike_frame = np.asarray(spike_frame, dtype=float)
        network = self.corelet_network
        if spike_frame.ndim != 2 or spike_frame.shape[1] != network.input_dim:
            raise ValueError(
                f"expected spikes of shape (batch, {network.input_dim}), "
                f"got {spike_frame.shape}"
            )
        current = spike_frame
        for depth, layer_corelets in enumerate(network.corelets):
            outputs = []
            for corelet, weights in zip(layer_corelets, self.sampled_weights[depth]):
                indices = np.asarray(corelet.input_channels, dtype=int)
                # y' = w' . x'  (leak = 0); spike iff y' >= 0 and at least one
                # synapse could contribute (the hardware never fires a neuron
                # with no active synapses in the history-free mode when the
                # threshold is positive; with threshold 0 the >= rule applies).
                pre = current[:, indices] @ weights
                outputs.append((pre >= 0.0).astype(float))
            current = np.concatenate(outputs, axis=1)
        return current

    def class_scores(self, spike_frame: np.ndarray) -> np.ndarray:
        """Per-class spike scores for one frame (batch, num_classes)."""
        network = self.corelet_network
        spikes = self.forward_spikes(spike_frame)
        scores = np.zeros((spikes.shape[0], network.num_classes))
        np.add.at(scores, (slice(None), network.class_assignment), spikes)
        return scores


def deploy_model(
    model: TrueNorthModel,
    rng: RngLike = None,
    corelet_network: Optional[CoreletNetwork] = None,
) -> DeployedNetwork:
    """Sample one deployed copy of a trained model.

    Args:
        model: the trained model.
        rng: randomness used for the Bernoulli connectivity sampling.
        corelet_network: pre-built corelets (rebuilt from the model when
            omitted); passing it avoids recomputation when deploying many
            copies of the same model.
    """
    rng = new_rng(rng)
    network = corelet_network or build_corelets(model)
    sampled: List[List[np.ndarray]] = []
    for layer_corelets in network.corelets:
        sampled.append([sample_connectivity(corelet, rng) for corelet in layer_corelets])
    return DeployedNetwork(corelet_network=network, sampled_weights=sampled)


def evaluate_deployed_scores(
    copies: List[DeployedNetwork],
    features: np.ndarray,
    spikes_per_frame: int,
    rng: RngLike = None,
) -> np.ndarray:
    """Class-score tensor of several deployed copies over several spike frames.

    Every copy sees the *same* input spike realizations (on hardware a
    splitter fans the one spike stream out to all copies), while each copy
    applies its own sampled connectivity.

    Returns:
        array of shape (copies, spikes_per_frame, batch, num_classes) holding
        the per-frame class scores of each copy.  Summing over leading axes
        yields the accumulated scores of any smaller (copies, spf) setting,
        which is how the evaluation sweeps reuse one pass for a whole grid.
    """
    if not copies:
        raise ValueError("at least one deployed copy is required")
    rng = new_rng(rng)
    encoder = StochasticEncoder(spikes_per_frame=spikes_per_frame)
    frames = encoder.encode(features, rng=rng)  # (spf, batch, features)
    num_classes = copies[0].corelet_network.num_classes
    batch = frames.shape[1]
    scores = np.zeros((len(copies), spikes_per_frame, batch, num_classes))
    for copy_index, copy in enumerate(copies):
        for frame_index in range(spikes_per_frame):
            scores[copy_index, frame_index] = copy.class_scores(frames[frame_index])
    return scores
