"""Deployment: sampling crossbar connectivity and evaluating the result.

Deployment turns the trained connection probabilities into concrete binary
crossbar connectivities by Bernoulli sampling (one independent sample per
network copy), exactly as the paper's flow does when it writes a model onto
the chip.  :class:`DeployedNetwork` is the functional equivalent of running
one sampled copy on hardware; since the heavy sweeps of Figures 7-9 always
evaluate many copies over many spike frames, the actual propagation is done
by :class:`repro.eval.engine.VectorizedEvaluator`, which stacks all copies'
sampled weights into per-layer tensors and pushes the whole spike volume
through in a handful of matmuls.  :class:`DeployedNetwork` remains as the
thin single-copy compatibility wrapper over that engine.

Scoring convention: deployed class scores are per-class *means* of the
readout spikes (``1/n_k`` weighting), matching the float model's
:meth:`~repro.core.model.NetworkArchitecture.merge_matrix` so float and
deployed scores are directly comparable even when ``output_dim %
num_classes != 0``.  Firing rule: a neuron spikes iff its weighted sum
satisfies ``y' >= 0`` *and* at least one ON synapse received a spike this
tick — identical to the per-core simulator in ``repro.truenorth`` (the test
suite checks the two agree spike for spike).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.model import TrueNorthModel
from repro.mapping.corelet import Corelet, CoreletNetwork, build_corelets
from repro.utils.rng import RngLike, new_rng


def sample_connectivity(corelet: Corelet, rng: RngLike = None) -> np.ndarray:
    """Draw one Bernoulli connectivity sample for a corelet.

    Returns a signed integer weight matrix: ``synaptic_value`` where the
    connection was sampled ON, zero where it was sampled OFF.
    """
    rng = new_rng(rng)
    on = rng.random(corelet.probabilities.shape) < corelet.probabilities
    return np.where(on, corelet.synaptic_values, 0.0)


@dataclass
class DeployedNetwork:
    """One sampled (deployed) copy of a corelet network.

    Attributes:
        corelet_network: the logical corelets this deployment was sampled from.
        sampled_weights: sampled signed weight matrices, grouped by layer then
            core, aligned with ``corelet_network.corelets``.
    """

    corelet_network: CoreletNetwork
    sampled_weights: List[List[np.ndarray]] = field(default_factory=list)
    _evaluator: Optional[object] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def core_count(self) -> int:
        """Cores occupied by this copy."""
        return self.corelet_network.core_count

    def evaluator(self):
        """The (lazily built) single-copy vectorized evaluator."""
        from repro.eval.engine import VectorizedEvaluator

        if self._evaluator is None:
            self._evaluator = VectorizedEvaluator([self])
        return self._evaluator

    # ------------------------------------------------------------------
    def forward_spikes(self, spike_frame: np.ndarray) -> np.ndarray:
        """Propagate one batch of input spike vectors through the copy.

        Args:
            spike_frame: binary array of shape (batch, input_dim).

        Returns:
            binary array of shape (batch, last_layer_output_dim) with the
            output spikes of the last hidden layer's neurons.  A neuron only
            fires when its weighted sum satisfies ``y' >= 0`` *and* at least
            one ON synapse received a spike (a silent crossbar never spikes).
        """
        spike_frame = np.asarray(spike_frame, dtype=float)
        network = self.corelet_network
        if spike_frame.ndim != 2 or spike_frame.shape[1] != network.input_dim:
            raise ValueError(
                f"expected spikes of shape (batch, {network.input_dim}), "
                f"got {spike_frame.shape}"
            )
        return self.evaluator().forward_spikes(spike_frame)[0]

    def class_scores(self, spike_frame: np.ndarray) -> np.ndarray:
        """Class-mean spike scores for one frame (batch, num_classes).

        Each readout neuron contributes ``1/n_k`` of its spike to its class
        (``n_k`` = readout neurons of that class), matching the float model's
        merge convention.
        """
        return self.evaluator().class_scores(spike_frame)[0]


def deploy_model(
    model: TrueNorthModel,
    rng: RngLike = None,
    corelet_network: Optional[CoreletNetwork] = None,
) -> DeployedNetwork:
    """Sample one deployed copy of a trained model.

    Args:
        model: the trained model.
        rng: randomness used for the Bernoulli connectivity sampling.
        corelet_network: pre-built corelets (rebuilt from the model when
            omitted); passing it avoids recomputation when deploying many
            copies of the same model.
    """
    rng = new_rng(rng)
    network = corelet_network or build_corelets(model)
    sampled: List[List[np.ndarray]] = []
    for layer_corelets in network.corelets:
        sampled.append([sample_connectivity(corelet, rng) for corelet in layer_corelets])
    return DeployedNetwork(corelet_network=network, sampled_weights=sampled)


def evaluate_deployed_scores(
    copies: List[DeployedNetwork],
    features: np.ndarray,
    spikes_per_frame: int,
    rng: RngLike = None,
    chunk_frames: Optional[int] = None,
) -> np.ndarray:
    """Class-score tensor of several deployed copies over several spike frames.

    Every copy sees the *same* input spike realizations (on hardware a
    splitter fans the one spike stream out to all copies), while each copy
    applies its own sampled connectivity.  The propagation is fully
    vectorized (:class:`repro.eval.engine.VectorizedEvaluator`) and the
    encoding is streamed, so the spike volume never fully materializes.

    Returns:
        array of shape (copies, spikes_per_frame, batch, num_classes) holding
        the per-frame class-mean scores of each copy.  Summing over leading
        axes yields the accumulated scores of any smaller (copies, spf)
        setting, which is how the evaluation sweeps reuse one pass for a
        whole grid.
    """
    from repro.eval.engine import VectorizedEvaluator

    if not copies:
        raise ValueError("at least one deployed copy is required")
    evaluator = VectorizedEvaluator(copies)
    return evaluator.evaluate_scores(
        features, spikes_per_frame, rng=rng, chunk_frames=chunk_frames
    )
