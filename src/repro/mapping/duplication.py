"""Spatial duplication: multiple network copies with merged outputs.

The official workaround for TrueNorth's quantization loss is to instantiate
several copies of the network (each with an independently sampled crossbar
connectivity), fan the input spikes out to every copy with a splitter, and
average/merge the copies' output spikes.  This module wraps that pattern:
:func:`deploy_with_copies` produces a :class:`DuplicatedDeployment` holding N
independent :class:`~repro.mapping.deploy.DeployedNetwork` copies and exposes
the merged readout, plus the core-occupation accounting the paper's Table 2
is based on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.model import TrueNorthModel
from repro.mapping.corelet import CoreletNetwork, build_corelets
from repro.mapping.deploy import DeployedNetwork, deploy_model
from repro.utils.rng import RngLike, new_rng, spawn_rngs


@dataclass
class DuplicatedDeployment:
    """N independently sampled copies of one trained model.

    Attributes:
        copies: the deployed copies (independent connectivity samples).
        corelet_network: the shared logical corelet description.
    """

    copies: List[DeployedNetwork]
    corelet_network: CoreletNetwork
    _evaluator: object = field(default=None, init=False, repr=False, compare=False)

    def evaluator(self):
        """The (lazily built, cached) vectorized evaluator over all copies."""
        from repro.eval.engine import VectorizedEvaluator

        if self._evaluator is None:
            self._evaluator = VectorizedEvaluator(self.copies)
        return self._evaluator

    @property
    def copy_count(self) -> int:
        """Number of network copies."""
        return len(self.copies)

    @property
    def cores_per_copy(self) -> int:
        """Cores occupied by a single copy."""
        return self.corelet_network.core_count

    @property
    def total_cores(self) -> int:
        """Total neuro-synaptic cores occupied by the deployment.

        The paper counts occupation as copies x cores-per-copy (e.g. 16
        copies of the 4-core MNIST network occupy 64 cores).
        """
        return self.copy_count * self.cores_per_copy

    # ------------------------------------------------------------------
    def class_scores(
        self,
        features: np.ndarray,
        spikes_per_frame: int = 1,
        rng: RngLike = None,
    ) -> np.ndarray:
        """Merged class scores over all copies and spike frames.

        Returns an array of shape (batch, num_classes) holding the per-frame
        class-mean scores accumulated over copies and frames — the quantity
        whose argmax is the deployment's prediction.
        """
        scores = self.evaluator().evaluate_scores(
            features, spikes_per_frame, rng=rng
        )
        return scores.sum(axis=(0, 1))

    def predict(
        self,
        features: np.ndarray,
        spikes_per_frame: int = 1,
        rng: RngLike = None,
    ) -> np.ndarray:
        """Predicted labels of the merged deployment."""
        return self.class_scores(
            features, spikes_per_frame=spikes_per_frame, rng=rng
        ).argmax(axis=1)


def deploy_with_copies(
    model: TrueNorthModel,
    copies: int = 1,
    rng: RngLike = None,
    corelet_network: Optional[CoreletNetwork] = None,
) -> DuplicatedDeployment:
    """Deploy ``copies`` independently sampled instances of a model.

    Args:
        model: the trained model.
        copies: number of spatial copies (network instantiations).
        rng: randomness; each copy receives an independent child stream.
        corelet_network: optional pre-built corelets shared by all copies.
    """
    if copies <= 0:
        raise ValueError(f"copies must be positive, got {copies}")
    network = corelet_network or build_corelets(model)
    copy_rngs = spawn_rngs(new_rng(rng), copies)
    deployed = [
        deploy_model(model, rng=copy_rng, corelet_network=network)
        for copy_rng in copy_rngs
    ]
    return DuplicatedDeployment(copies=deployed, corelet_network=network)
