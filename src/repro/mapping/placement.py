"""Placement of corelets onto the physical core grid of a chip or board.

Placement assigns each corelet (of each copy) a physical core.  The paper's
results do not depend on *where* cores are placed — only on how many are
occupied — but a placement step is part of any real TrueNorth deployment,
so the reproduction provides a simple locality-aware strategy (copies are
placed in row-major order, layers of one copy kept contiguous) and reports
mesh-distance statistics that the ablation benchmarks use.

Board placement (:func:`place_on_board`) extends the strategy to a mesh of
chips: each copy's layers are packed onto as few chips as possible — a copy
that fits one chip is never split (first-fit over the chips, so one chip
stacks as many whole copies as its capacity allows), while a copy larger
than one chip claims consecutive fully-empty chips and is sharded across
them in layer-major corelet order.  A chip therefore hosts *either* whole
copies *or* one shard of a split copy, never both, which is what lets the
runtime drive whole-copy chips with the stacked multi-copy engine and
shard chips with plain single-copy batches (see
:mod:`repro.mapping.pipeline`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.board.topology import BoardConfig
from repro.mapping.corelet import CoreletNetwork
from repro.truenorth.config import ChipConfig


@dataclass
class ChipPlacement:
    """Assignment of logical corelets to physical core coordinates.

    Attributes:
        grid_shape: shape of the physical core grid (derived from the chip
            configuration by :func:`place_on_chip` — never assumed).
        assignments: mapping ``(copy, layer, corelet_index) -> (row, col)``.
    """

    grid_shape: Tuple[int, int]
    assignments: Dict[Tuple[int, int, int], Tuple[int, int]] = field(
        default_factory=dict
    )

    @property
    def occupied_cores(self) -> int:
        """Number of physical cores occupied."""
        return len(self.assignments)

    def position(self, copy: int, layer: int, corelet_index: int) -> Tuple[int, int]:
        """Physical (row, col) of one corelet."""
        return self.assignments[(copy, layer, corelet_index)]

    def max_interlayer_distance(self) -> int:
        """Largest Manhattan distance between consecutive-layer corelets.

        A coarse congestion proxy: spikes between adjacent layers travel at
        most this many mesh hops under the simple row-major placement.
        """
        best = 0
        by_copy_layer: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        for (copy, layer, _), pos in self.assignments.items():
            by_copy_layer.setdefault((copy, layer), []).append(pos)
        for (copy, layer), positions in by_copy_layer.items():
            next_positions = by_copy_layer.get((copy, layer + 1))
            if not next_positions:
                continue
            for row_a, col_a in positions:
                for row_b, col_b in next_positions:
                    best = max(best, abs(row_a - row_b) + abs(col_a - col_b))
        return best


def place_on_chip(
    corelet_network: CoreletNetwork,
    copies: int = 1,
    chip_config: ChipConfig = ChipConfig(),
) -> ChipPlacement:
    """Place ``copies`` instances of a corelet network onto one chip.

    Corelets are assigned to physical cores in row-major order, copy by copy
    and layer by layer, which keeps each copy's layers contiguous.  Raises
    ``RuntimeError`` when the chip does not have enough cores.
    """
    if copies <= 0:
        raise ValueError(f"copies must be positive, got {copies}")
    rows, cols = chip_config.grid_shape
    capacity = rows * cols
    needed = copies * corelet_network.core_count
    if needed > capacity:
        raise RuntimeError(
            f"deployment needs {needed} cores but the chip has only {capacity}"
        )
    placement = ChipPlacement(grid_shape=(rows, cols))
    slot = 0
    for copy in range(copies):
        for layer, layer_corelets in enumerate(corelet_network.corelets):
            for corelet_index in range(len(layer_corelets)):
                placement.assignments[(copy, layer, corelet_index)] = (
                    slot // cols,
                    slot % cols,
                )
                slot += 1
    return placement


@dataclass(frozen=True)
class BoardSegment:
    """One independently simulable unit of a board placement.

    A segment is either a set of *whole* copies stacked on one chip
    (``split=False``, one chip, one multi-copy image at run time) or one
    copy *split* across several consecutive chips (``split=True``, one
    single-copy shard per chip).  Segments never exchange spikes with each
    other — inter-chip traffic only occurs between the shard chips of one
    split copy — which is what makes them the sharding unit of the serving
    tier.

    Attributes:
        chips: board chip indices the segment occupies, in shard order.
        copies: global copy indices hosted (ascending; a split segment
            hosts exactly one).
        split: whether one copy spans ``len(chips) > 1`` chips.
        shard_bounds: for split segments, boundaries into the copy's flat
            layer-major corelet enumeration — shard ``i`` (on
            ``chips[i]``) hosts corelets ``[shard_bounds[i],
            shard_bounds[i + 1])``.  Empty for whole segments.
    """

    chips: Tuple[int, ...]
    copies: Tuple[int, ...]
    split: bool
    shard_bounds: Tuple[int, ...] = ()


@dataclass
class BoardPlacement:
    """Assignment of logical corelets to (chip, core slot) across a board.

    Attributes:
        board_shape: ``(rows, cols)`` of the chip mesh.
        chip_grid: core grid of each chip (derived from the board's chip
            configuration).
        assignments: mapping ``(copy, layer, corelet_index) -> (chip, row,
            col)`` with (row, col) on the hosting chip's core grid.
        segments: the independently simulable units (see
            :class:`BoardSegment`), sorted by first chip index.
    """

    board_shape: Tuple[int, int]
    chip_grid: Tuple[int, int]
    assignments: Dict[Tuple[int, int, int], Tuple[int, int, int]] = field(
        default_factory=dict
    )
    segments: List[BoardSegment] = field(default_factory=list)

    @property
    def occupied_cores(self) -> int:
        """Number of physical cores occupied across the board."""
        return len(self.assignments)

    def chip_of(self, copy: int, layer: int, corelet_index: int) -> int:
        """Board index of the chip hosting one corelet."""
        return self.assignments[(copy, layer, corelet_index)][0]

    def chip_position(self, index: int) -> Tuple[int, int]:
        """(row, col) of a chip on the board grid (row-major indexing)."""
        return index // self.board_shape[1], index % self.board_shape[1]

    def per_chip_occupation(self) -> Dict[int, int]:
        """Occupied core slots per chip (chips stacking ``k`` whole copies
        of an ``n``-core network occupy ``k * n`` slots)."""
        occupation: Dict[int, int] = {}
        for chip, _, _ in self.assignments.values():
            occupation[chip] = occupation.get(chip, 0) + 1
        return occupation

    def occupied_chips(self) -> int:
        """Number of chips hosting at least one corelet."""
        return len({chip for chip, _, _ in self.assignments.values()})

    def split_copies(self) -> Tuple[int, ...]:
        """Copies that span more than one chip, ascending."""
        return tuple(
            sorted(
                segment.copies[0] for segment in self.segments if segment.split
            )
        )

    def transition_chip_distances(self, copy: int) -> List[int]:
        """Worst chip distance per layer transition of one copy.

        Entry ``l`` is the largest Manhattan chip distance between any
        layer-``l`` corelet and any layer-``l + 1`` corelet of the copy —
        the worst mesh path a spike of that transition can take, and hence
        the exact per-transition term of the board-wide drain bound.  All
        zeros for a copy kept on one chip.
        """
        by_layer: Dict[int, List[int]] = {}
        for (c, layer, _), (chip, _, _) in self.assignments.items():
            if c == copy:
                by_layer.setdefault(layer, []).append(chip)
        distances: List[int] = []
        for layer in range(len(by_layer) - 1):
            best = 0
            for a in by_layer[layer]:
                for b in by_layer[layer + 1]:
                    row_a, col_a = self.chip_position(a)
                    row_b, col_b = self.chip_position(b)
                    best = max(best, abs(row_a - row_b) + abs(col_a - col_b))
            distances.append(best)
        return distances

    def mesh_statistics(self) -> Dict[str, int]:
        """Inter-chip traffic statistics of the placement.

        Returns a dict with:

        * ``split_copies`` — copies spanning more than one chip;
        * ``boundary_transitions`` — (copy, layer transition) pairs whose
          spikes cross at least one chip boundary;
        * ``max_chip_distance`` — worst Manhattan chip distance any
          inter-layer spike can travel.
        """
        split = self.split_copies()
        boundary = 0
        max_distance = 0
        for copy in split:
            for distance in self.transition_chip_distances(copy):
                if distance > 0:
                    boundary += 1
                    max_distance = max(max_distance, distance)
        return {
            "split_copies": len(split),
            "boundary_transitions": boundary,
            "max_chip_distance": max_distance,
        }


def place_on_board(
    corelet_network: CoreletNetwork,
    copies: int = 1,
    board_config: BoardConfig = BoardConfig(),
) -> BoardPlacement:
    """Place ``copies`` instances of a corelet network onto a chip mesh.

    Each copy's layers are packed onto as few chips as possible:

    * a copy that fits one chip is placed whole, first-fit over the chips
      in board order (so chips stack as many whole copies as capacity
      allows, and later copies back-fill earlier chips);
    * a copy larger than one chip claims the first run of consecutive
      fully-empty chips and is sharded across them in layer-major corelet
      order; its chips are reserved entirely (no back-fill), so a chip
      hosts either whole copies or one shard — never both.

    Within a chip, corelets occupy core slots row-major from the chip's
    next free slot in assignment order, matching the physical ids
    :meth:`~repro.truenorth.chip.TrueNorthChip.allocate_core` hands out
    when the runtime programs the board.

    Raises ``RuntimeError`` when the board cannot fit the deployment.
    """
    if copies <= 0:
        raise ValueError(f"copies must be positive, got {copies}")
    chip_rows, chip_cols = board_config.chip_config.grid_shape
    capacity = chip_rows * chip_cols
    chip_count = board_config.chip_count
    per_copy = corelet_network.core_count
    flat_corelets = [
        (layer, corelet_index)
        for layer, layer_corelets in enumerate(corelet_network.corelets)
        for corelet_index in range(len(layer_corelets))
    ]

    free = [capacity] * chip_count
    placement = BoardPlacement(
        board_shape=board_config.grid_shape, chip_grid=(chip_rows, chip_cols)
    )
    whole_by_chip: Dict[int, List[int]] = {}

    def assign(copy: int, chip: int, corelets, base_slot: int) -> None:
        for offset, (layer, corelet_index) in enumerate(corelets):
            slot = base_slot + offset
            placement.assignments[(copy, layer, corelet_index)] = (
                chip,
                slot // chip_cols,
                slot % chip_cols,
            )

    for copy in range(copies):
        if per_copy <= capacity:
            chip = next((i for i in range(chip_count) if free[i] >= per_copy), None)
            if chip is None:
                raise RuntimeError(
                    f"copy {copy} needs {per_copy} cores but no chip of the "
                    f"{board_config.grid_shape} board has that many free "
                    f"({copies} copies x {per_copy} cores on "
                    f"{chip_count} x {capacity}-core chips)"
                )
            assign(copy, chip, flat_corelets, capacity - free[chip])
            free[chip] -= per_copy
            whole_by_chip.setdefault(chip, []).append(copy)
        else:
            shards = math.ceil(per_copy / capacity)
            start = next(
                (
                    i
                    for i in range(chip_count - shards + 1)
                    if all(free[i + j] == capacity for j in range(shards))
                ),
                None,
            )
            if start is None:
                raise RuntimeError(
                    f"copy {copy} needs {shards} consecutive empty chips "
                    f"({per_copy} cores at {capacity} per chip) but the "
                    f"{board_config.grid_shape} board has no such run"
                )
            bounds = [0]
            for shard in range(shards):
                lo = shard * capacity
                hi = min(lo + capacity, per_copy)
                assign(copy, start + shard, flat_corelets[lo:hi], 0)
                # A split copy reserves its chips entirely: no whole copy
                # may back-fill the partially used last shard chip.
                free[start + shard] = 0
                bounds.append(hi)
            placement.segments.append(
                BoardSegment(
                    chips=tuple(range(start, start + shards)),
                    copies=(copy,),
                    split=True,
                    shard_bounds=tuple(bounds),
                )
            )

    for chip in sorted(whole_by_chip):
        placement.segments.append(
            BoardSegment(
                chips=(chip,),
                copies=tuple(whole_by_chip[chip]),
                split=False,
            )
        )
    placement.segments.sort(key=lambda segment: segment.chips[0])
    return placement
