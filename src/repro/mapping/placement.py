"""Placement of corelets onto the physical core grid of a chip.

Placement assigns each corelet (of each copy) a physical core on the 64x64
grid.  The paper's results do not depend on *where* cores are placed — only
on how many are occupied — but a placement step is part of any real TrueNorth
deployment, so the reproduction provides a simple locality-aware strategy
(copies are placed in row-major order, layers of one copy kept contiguous)
and reports mesh-distance statistics that the ablation benchmarks use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.mapping.corelet import CoreletNetwork
from repro.truenorth.config import ChipConfig


@dataclass
class ChipPlacement:
    """Assignment of logical corelets to physical core coordinates.

    Attributes:
        assignments: mapping ``(copy, layer, corelet_index) -> (row, col)``.
        grid_shape: shape of the physical core grid.
    """

    assignments: Dict[Tuple[int, int, int], Tuple[int, int]] = field(default_factory=dict)
    grid_shape: Tuple[int, int] = (64, 64)

    @property
    def occupied_cores(self) -> int:
        """Number of physical cores occupied."""
        return len(self.assignments)

    def position(self, copy: int, layer: int, corelet_index: int) -> Tuple[int, int]:
        """Physical (row, col) of one corelet."""
        return self.assignments[(copy, layer, corelet_index)]

    def max_interlayer_distance(self) -> int:
        """Largest Manhattan distance between consecutive-layer corelets.

        A coarse congestion proxy: spikes between adjacent layers travel at
        most this many mesh hops under the simple row-major placement.
        """
        best = 0
        by_copy_layer: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        for (copy, layer, _), pos in self.assignments.items():
            by_copy_layer.setdefault((copy, layer), []).append(pos)
        for (copy, layer), positions in by_copy_layer.items():
            next_positions = by_copy_layer.get((copy, layer + 1))
            if not next_positions:
                continue
            for row_a, col_a in positions:
                for row_b, col_b in next_positions:
                    best = max(best, abs(row_a - row_b) + abs(col_a - col_b))
        return best


def place_on_chip(
    corelet_network: CoreletNetwork,
    copies: int = 1,
    chip_config: ChipConfig = ChipConfig(),
) -> ChipPlacement:
    """Place ``copies`` instances of a corelet network onto one chip.

    Corelets are assigned to physical cores in row-major order, copy by copy
    and layer by layer, which keeps each copy's layers contiguous.  Raises
    ``RuntimeError`` when the chip does not have enough cores.
    """
    if copies <= 0:
        raise ValueError(f"copies must be positive, got {copies}")
    rows, cols = chip_config.grid_shape
    capacity = rows * cols
    needed = copies * corelet_network.core_count
    if needed > capacity:
        raise RuntimeError(
            f"deployment needs {needed} cores but the chip has only {capacity}"
        )
    placement = ChipPlacement(grid_shape=(rows, cols))
    slot = 0
    for copy in range(copies):
        for layer, layer_corelets in enumerate(corelet_network.corelets):
            for corelet_index in range(len(layer_corelets)):
                placement.assignments[(copy, layer, corelet_index)] = (
                    slot // cols,
                    slot % cols,
                )
                slot += 1
    return placement
