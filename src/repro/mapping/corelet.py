"""Corelets: the logical description of one core's programming.

A *corelet* captures everything needed to program a single neuro-synaptic
core from one block of a trained model: which global input channels its axons
receive, the per-connection probabilities and signed synaptic values, and
which global output channels its neurons drive.  Building corelets is the
step between the trained :class:`~repro.core.model.TrueNorthModel` and the
physical programming of a chip (or the fast vectorized evaluator).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.core.model import TrueNorthModel
from repro.core.probability import weights_to_probabilities
from repro.truenorth import constants


@dataclass(frozen=True)
class Corelet:
    """Programming of one neuro-synaptic core.

    Attributes:
        layer: hidden-layer depth this corelet belongs to (0-based).
        index: index of the corelet within its layer.
        input_channels: global ids of the signals delivered to this core's
            axons.  For layer 0 these are input-feature indices; for deeper
            layers they are the global neuron ids of the previous layer.
        probabilities: Bernoulli ON-probability per (axon, neuron) connection.
        synaptic_values: signed synaptic value per connection (the value an ON
            connection contributes when its axon spikes).
        output_channels: global neuron ids assigned to this core's outputs.
    """

    layer: int
    index: int
    input_channels: Tuple[int, ...]
    probabilities: np.ndarray
    synaptic_values: np.ndarray
    output_channels: Tuple[int, ...]

    def __post_init__(self):
        axons = len(self.input_channels)
        neurons = len(self.output_channels)
        if axons == 0 or neurons == 0:
            raise ValueError("corelets must have at least one axon and one neuron")
        if axons > constants.AXONS_PER_CORE or neurons > constants.NEURONS_PER_CORE:
            raise ValueError(
                f"corelet exceeds crossbar: {axons} axons x {neurons} neurons"
            )
        if self.probabilities.shape != (axons, neurons):
            raise ValueError(
                f"probabilities must have shape {(axons, neurons)}, "
                f"got {self.probabilities.shape}"
            )
        if self.synaptic_values.shape != (axons, neurons):
            raise ValueError(
                f"synaptic_values must have shape {(axons, neurons)}, "
                f"got {self.synaptic_values.shape}"
            )
        if self.probabilities.size and (
            self.probabilities.min() < 0.0 or self.probabilities.max() > 1.0
        ):
            raise ValueError("corelet probabilities must lie in [0, 1]")

    @property
    def axon_count(self) -> int:
        """Axons used by this corelet."""
        return len(self.input_channels)

    @property
    def neuron_count(self) -> int:
        """Neurons used by this corelet."""
        return len(self.output_channels)

    def expected_weights(self) -> np.ndarray:
        """Expected deployed weight matrix (probability * synaptic value)."""
        return self.probabilities * self.synaptic_values


@dataclass
class CoreletNetwork:
    """All corelets of one network copy plus readout metadata.

    Attributes:
        corelets: corelets grouped by layer (``corelets[layer][index]``).
        class_assignment: class label of every global output neuron of the
            last layer.
        num_classes: number of classes.
        input_dim: flat input feature count.
    """

    corelets: List[List[Corelet]]
    class_assignment: np.ndarray
    num_classes: int
    input_dim: int
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def core_count(self) -> int:
        """Total cores used by this network copy."""
        return sum(len(layer) for layer in self.corelets)

    @property
    def layer_count(self) -> int:
        """Number of hidden layers."""
        return len(self.corelets)

    def layer_output_dim(self, layer: int) -> int:
        """Total output neurons of a layer."""
        return sum(corelet.neuron_count for corelet in self.corelets[layer])


def build_corelets(model: TrueNorthModel) -> CoreletNetwork:
    """Convert a trained model into corelets (one per core).

    The conversion applies Eq. (7): each real-valued weight ``w`` becomes an
    ON-probability ``|w| / c`` with signed synaptic value ``sign(w) * c``.
    """
    arch = model.architecture
    corelets: List[List[Corelet]] = []
    previous_output_base = 0
    previous_output_dim = arch.input_dim
    for depth, (layer, matrices) in enumerate(zip(arch.layers, model.block_weights)):
        layer_corelets: List[Corelet] = []
        sizes = arch.layer_block_sizes(depth)
        offsets = np.cumsum([0] + sizes)
        output_base = 0
        for core_index, weights in enumerate(matrices):
            mapping = weights_to_probabilities(weights, arch.synaptic_value)
            if depth == 0:
                assert arch.layers[0].input_indices is not None
                input_channels = tuple(arch.layers[0].input_indices[core_index])
            else:
                lo, hi = offsets[core_index], offsets[core_index + 1]
                input_channels = tuple(range(lo, hi))
            output_channels = tuple(
                range(output_base, output_base + layer.neurons_per_core)
            )
            output_base += layer.neurons_per_core
            layer_corelets.append(
                Corelet(
                    layer=depth,
                    index=core_index,
                    input_channels=input_channels,
                    probabilities=mapping.probabilities,
                    synaptic_values=mapping.synaptic_values,
                    output_channels=output_channels,
                )
            )
        corelets.append(layer_corelets)
        previous_output_base += previous_output_dim
        previous_output_dim = layer.output_dim
    return CoreletNetwork(
        corelets=corelets,
        class_assignment=arch.class_assignment(),
        num_classes=arch.num_classes,
        input_dim=arch.input_dim,
        metadata=dict(model.metadata),
    )
