"""Random-number-generator management.

Every stochastic component in the reproduction (dataset synthesis, weight
initialization, connection sampling, spike encoding) draws from a
``numpy.random.Generator`` that is injected explicitly.  This module provides
the helpers used to create and fan out those generators deterministically so
that experiments are reproducible end to end from a single integer seed.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

RngLike = Union[int, np.random.Generator, None]


def new_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator``.

    Accepts ``None`` (fresh entropy), an integer seed, or an existing
    generator (returned unchanged).  All public APIs in the package accept the
    same three forms and route them through this helper.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def clone_rng(rng: np.random.Generator) -> np.random.Generator:
    """Independent generator replaying ``rng``'s stream from its current state.

    The clone gets its own bit-generator instance carrying a copy of
    ``rng``'s state, so consuming the clone never advances the original.
    Used when the same stream must be re-consumed from a known point — e.g.
    each spf level of a chip grid pass replays every repeat's generator from
    its pristine spawned state, so deployments are identical across levels
    and each level draws exactly what a standalone request would have drawn.
    """
    clone = np.random.Generator(type(rng.bit_generator)())
    clone.bit_generator.state = rng.bit_generator.state
    return clone


def spawn_rngs(seed: RngLike, count: int) -> List[np.random.Generator]:
    """Derive ``count`` statistically independent generators from ``seed``.

    Used when one experiment needs several independent random streams (e.g.
    one per network copy) whose results must not depend on evaluation order.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive children by drawing seeds from the parent generator.
        seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


class SeedSequenceFactory:
    """Deterministic factory of named random streams.

    Each distinct ``name`` maps to a distinct child ``SeedSequence`` derived
    from the root seed, so adding a new consumer of randomness never perturbs
    the streams of existing consumers.
    """

    def __init__(self, root_seed: Optional[int] = 0):
        self._root_seed = root_seed
        self._counters: dict = {}

    @property
    def root_seed(self) -> Optional[int]:
        return self._root_seed

    def rng(self, name: str) -> np.random.Generator:
        """Return a fresh generator for the stream ``name``.

        Repeated calls with the same name return *different* generators
        (stream instances), but the overall sequence is a pure function of the
        root seed and the call history for that name.
        """
        index = self._counters.get(name, 0)
        self._counters[name] = index + 1
        # Combine the root seed with a stable hash of the name and the call
        # index.  ``SeedSequence`` accepts a sequence of integers as entropy.
        name_entropy = [ord(c) for c in name]
        entropy: Sequence[int] = [self._root_seed or 0, index, *name_entropy]
        return np.random.default_rng(np.random.SeedSequence(entropy))

    def reset(self) -> None:
        """Forget the per-name call counters (streams restart from index 0)."""
        self._counters.clear()
