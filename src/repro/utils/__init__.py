"""Shared utilities: RNG management, logging, serialization, and table rendering."""

from repro.utils.rng import SeedSequenceFactory, new_rng, spawn_rngs
from repro.utils.tables import format_table
from repro.utils.serialization import save_json, load_json, save_npz, load_npz

__all__ = [
    "SeedSequenceFactory",
    "new_rng",
    "spawn_rngs",
    "format_table",
    "save_json",
    "load_json",
    "save_npz",
    "load_npz",
]
