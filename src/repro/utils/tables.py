"""Plain-text table rendering used by the experiment drivers.

The benchmark harness regenerates each table of the paper as rows of values;
this module renders them in a fixed-width ASCII format so the output can be
compared side by side with the paper.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def _stringify(value) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table string."""
    str_rows: List[List[str]] = [[_stringify(v) for v in row] for row in rows]
    header_row = [str(h) for h in headers]
    for row in str_rows:
        if len(row) != len(header_row):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(header_row)} columns"
            )
    widths = [len(h) for h in header_row]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(header_row))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)
