"""Minimal logging configuration shared by examples and experiment drivers."""

from __future__ import annotations

import logging
import sys

_PACKAGE_LOGGER = "repro"


def get_logger(name: str = _PACKAGE_LOGGER) -> logging.Logger:
    """Return a package logger (children inherit the package configuration)."""
    return logging.getLogger(name)


def configure_logging(level: int = logging.INFO, stream=None) -> logging.Logger:
    """Attach a simple stderr handler to the package logger.

    Safe to call repeatedly: the handler is installed only once.
    """
    logger = logging.getLogger(_PACKAGE_LOGGER)
    logger.setLevel(level)
    if not logger.handlers:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
        )
        logger.addHandler(handler)
    return logger
