"""Serialization helpers for experiment artifacts.

Trained models, deviation maps, and experiment reports are stored either as
JSON (metadata, small tables) or as compressed ``.npz`` archives (arrays).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

import numpy as np

PathLike = Union[str, Path]


def _to_jsonable(obj):
    """Convert numpy scalars/arrays to plain Python types for JSON."""
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    if isinstance(obj, dict):
        return {str(k): _to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_to_jsonable(v) for v in obj]
    return obj


def save_json(path: PathLike, data: dict) -> Path:
    """Write ``data`` as pretty-printed JSON, creating parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(_to_jsonable(data), handle, indent=2, sort_keys=True)
    return path


def load_json(path: PathLike) -> dict:
    """Read a JSON file written by :func:`save_json`."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def save_npz(path: PathLike, arrays: Dict[str, np.ndarray]) -> Path:
    """Write a dict of arrays as a compressed ``.npz`` archive."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **arrays)
    return path


def load_npz(path: PathLike) -> Dict[str, np.ndarray]:
    """Read back an ``.npz`` archive as a plain dict of arrays."""
    with np.load(path) as archive:
        return {key: archive[key] for key in archive.files}
