"""Small shared AST helpers the checkers are built from.

Nothing here knows about rules; these are the reusable questions every
checker asks: "what dotted name does this expression spell", "which module
does this local name alias", "which ``self.<attr>`` does this node touch",
"what fields does this dataclass declare".
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple


def import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the canonical dotted names they import.

    ``import numpy as np`` maps ``np -> numpy``; ``from numpy import random
    as nr`` maps ``nr -> numpy.random``; ``from numpy.random import
    default_rng`` maps ``default_rng -> numpy.random.default_rng``.
    Relative imports carry no absolute module path and are skipped — the
    checkers only resolve third-party/stdlib roots (numpy, random).
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                target = alias.name if alias.asname else alias.name.split(".", 1)[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


def dotted_name(node: ast.expr) -> Optional[str]:
    """The literal dotted spelling of a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def resolve_name(node: ast.expr, aliases: Dict[str, str]) -> Optional[str]:
    """The canonical dotted name of an expression under an alias map.

    ``np.random.default_rng`` with ``np -> numpy`` resolves to
    ``numpy.random.default_rng``; unknown roots resolve to their literal
    spelling so callers can still match on it.
    """
    spelled = dotted_name(node)
    if spelled is None:
        return None
    root, _, rest = spelled.partition(".")
    canonical_root = aliases.get(root, root)
    return f"{canonical_root}.{rest}" if rest else canonical_root


def self_attribute(node: ast.expr) -> Optional[str]:
    """``attr`` when ``node`` is exactly ``self.<attr>``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def self_attribute_reads(node: ast.AST) -> Set[str]:
    """Every ``self.<attr>`` touched anywhere under ``node``."""
    reads: Set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Attribute):
            attr = self_attribute(child)
            if attr is not None:
                reads.add(attr)
    return reads


def walk_with_stack(
    tree: ast.AST,
) -> Iterator[Tuple[ast.AST, Tuple[ast.AST, ...]]]:
    """Depth-first walk yielding ``(node, ancestors)`` pairs.

    ``ancestors`` runs from the module down to the node's direct parent —
    the lexical context checks (is this access inside a ``with``? which
    method/class owns it?) read it directly instead of each checker
    re-implementing parent tracking.
    """
    stack: List[Tuple[ast.AST, Tuple[ast.AST, ...]]] = [(tree, ())]
    while stack:
        node, ancestors = stack.pop()
        yield node, ancestors
        child_ancestors = ancestors + (node,)
        # Reversed so iteration order matches source order despite the stack.
        for child in reversed(list(ast.iter_child_nodes(node))):
            stack.append((child, child_ancestors))


def enclosing_function(
    ancestors: Tuple[ast.AST, ...],
) -> Optional[ast.AST]:
    """The innermost (async) function an ancestor chain sits in."""
    for node in reversed(ancestors):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return node
    return None


def enclosing_class(ancestors: Tuple[ast.AST, ...]) -> Optional[ast.ClassDef]:
    """The innermost class an ancestor chain sits in."""
    for node in reversed(ancestors):
        if isinstance(node, ast.ClassDef):
            return node
    return None


def class_methods(classdef: ast.ClassDef) -> List[ast.FunctionDef]:
    """The directly declared ``def`` methods of a class (no nesting)."""
    return [
        node for node in classdef.body if isinstance(node, ast.FunctionDef)
    ]


def find_class(tree: ast.Module, name: str) -> Optional[ast.ClassDef]:
    """The top-level (or nested) class called ``name``."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def find_function(tree: ast.AST, name: str) -> Optional[ast.FunctionDef]:
    """The first function called ``name`` anywhere under ``tree``."""
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None


def dataclass_field_names(classdef: ast.ClassDef) -> List[str]:
    """Declared field names of a (data)class body, in declaration order.

    Annotated assignments only — exactly how ``dataclasses`` itself decides
    what is a field — with ``ClassVar`` annotations excluded.
    """
    names: List[str] = []
    for node in classdef.body:
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            annotation = ast.unparse(node.annotation)
            if "ClassVar" in annotation:
                continue
            names.append(node.target.id)
    return names


def is_property(method: ast.FunctionDef) -> bool:
    """Whether a method carries the ``@property`` decorator."""
    for decorator in method.decorator_list:
        if isinstance(decorator, ast.Name) and decorator.id == "property":
            return True
        if isinstance(decorator, ast.Attribute) and decorator.attr == "property":
            return True
    return False


def property_reads(classdef: ast.ClassDef) -> Dict[str, Set[str]]:
    """Map each ``@property`` of a class to the ``self.<attr>`` it reads.

    This is how derived-field coverage works: a coalescing key that reads
    ``request.max_copies`` covers ``copy_levels`` because the property's own
    body reads it — no hand-kept alias table.
    """
    reads: Dict[str, Set[str]] = {}
    for method in class_methods(classdef):
        if is_property(method):
            reads[method.name] = self_attribute_reads(method)
    return reads


def string_constants(node: ast.AST) -> Set[str]:
    """Every string literal under ``node``."""
    return {
        child.value
        for child in ast.walk(node)
        if isinstance(child, ast.Constant) and isinstance(child.value, str)
    }


def dict_literal_keys(node: ast.AST) -> Set[str]:
    """Every string key of every dict literal under ``node``."""
    keys: Set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Dict):
            for key in child.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    keys.add(key.value)
    return keys
