"""Checker contract and registry.

Two checker shapes exist, matching the two shapes of invariant:

* :class:`FileChecker` — the invariant is local to one file (RNG discipline,
  dtype explicitness, lock guards).  Ran per file, cached per file content
  hash.
* :class:`ProjectChecker` — the invariant spans modules (request fields
  threaded through codec/client/session; capability exhaustiveness).  The
  checker declares the relative paths it reads (``dependencies``) so the
  cache can key its findings on the joint content hash of exactly those
  files.

Checkers register into one process-global registry; registering a rule id
twice replaces the checker (tests swap in instrumented variants).
"""

from __future__ import annotations

from typing import Dict, List, Tuple, Union

from repro.analysis.findings import Finding
from repro.analysis.project import Project, SourceFile


class FileChecker:
    """Base class for single-file rules.

    Subclasses set :attr:`rule`, :attr:`description`, optionally
    :attr:`path_prefixes` (repo-relative POSIX prefixes the rule applies
    to; empty = every analyzed file), and implement :meth:`check`.
    Bump :attr:`version` whenever the rule's semantics change — it is part
    of the cache key, so stale cached findings can never survive a rule
    change.
    """

    rule: str = ""
    description: str = ""
    version: int = 1
    path_prefixes: Tuple[str, ...] = ()

    def applies_to(self, relpath: str) -> bool:
        """Whether this rule scans ``relpath`` (prefix match)."""
        if not self.path_prefixes:
            return True
        return any(relpath.startswith(prefix) for prefix in self.path_prefixes)

    def check(self, source: SourceFile) -> List[Finding]:
        """Findings for one file."""
        raise NotImplementedError


class ProjectChecker:
    """Base class for cross-module rules.

    Subclasses set :attr:`rule`, :attr:`description`, :attr:`dependencies`
    (the repo-relative paths the invariant spans) and implement
    :meth:`check`.  The runner keys the checker's cache entry on the joint
    content hash of the dependency files, so editing any one of them re-runs
    the rule.
    """

    rule: str = ""
    description: str = ""
    version: int = 1
    dependencies: Tuple[str, ...] = ()

    def check(self, project: Project) -> List[Finding]:
        """Findings for the whole project."""
        raise NotImplementedError


Checker = Union[FileChecker, ProjectChecker]

_REGISTRY: Dict[str, Checker] = {}


def register_checker(checker: Checker) -> Checker:
    """Register a checker under its rule id (replacing any previous one)."""
    if not checker.rule:
        raise ValueError(f"checker {type(checker).__name__} declares no rule id")
    _REGISTRY[checker.rule] = checker
    return checker


def registered_checkers() -> List[Checker]:
    """All registered checkers, ordered by rule id."""
    return [_REGISTRY[rule] for rule in sorted(_REGISTRY)]


def checker_names() -> Tuple[str, ...]:
    """Registered rule ids (sorted)."""
    return tuple(sorted(_REGISTRY))
