"""The one result type every checker produces.

A :class:`Finding` pins a rule violation to a (file, line) anchor with a
human message.  Findings are plain frozen dataclasses so they sort, compare,
and serialize deterministically — the JSON report is a pure function of the
tree being analyzed, which is what lets the per-file cache replay them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation (or suppression problem) at a source location.

    Attributes:
        path: repo-root-relative POSIX path of the offending file.
        line: 1-based line the finding anchors to (0 = whole file).
        rule: rule identifier, e.g. ``"RNG-SEED"``.
        message: human explanation of the violation.
        suppressed: True when a justified ``replint: disable=`` comment
            covers the finding; suppressed findings are reported but do not
            fail the run.
        justification: the suppression's justification text, when suppressed.
    """

    path: str
    line: int
    rule: str
    message: str
    suppressed: bool = False
    justification: Optional[str] = None

    def location(self) -> str:
        """``path:line`` anchor (editor-clickable)."""
        return f"{self.path}:{self.line}"

    def to_json(self) -> Dict[str, Any]:
        """The machine-readable form emitted by ``--json``."""
        payload: Dict[str, Any] = {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
            "suppressed": self.suppressed,
        }
        if self.justification is not None:
            payload["justification"] = self.justification
        return payload

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "Finding":
        """Rebuild a finding from its :meth:`to_json` form (cache replay)."""
        return cls(
            path=str(payload["path"]),
            line=int(payload["line"]),
            rule=str(payload["rule"]),
            message=str(payload["message"]),
            suppressed=bool(payload.get("suppressed", False)),
            justification=(
                None
                if payload.get("justification") is None
                else str(payload["justification"])
            ),
        )
