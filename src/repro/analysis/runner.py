"""The analysis run: select files, run checkers (through the cache),
apply suppressions, and produce one :class:`AnalysisReport`.

The run is deterministic: findings are sorted, cache replay is exact, and
the report is a pure function of the analyzed tree — which is what lets CI
fail on any nonzero error count and lets the self-run test assert the
committed tree is clean.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.analysis.cache import AnalysisCache, joint_digest
from repro.analysis.findings import Finding
from repro.analysis.framework import (
    Checker,
    FileChecker,
    ProjectChecker,
    registered_checkers,
)
from repro.analysis.project import Project, SourceParseError
from repro.analysis.suppressions import (
    Suppression,
    apply_suppressions,
    parse_suppressions,
)

#: Rule id for files that do not parse (nothing else can be checked).
PARSE_RULE = "REPLINT-PARSE"

#: Default cache file, repo-root-relative (gitignored).
DEFAULT_CACHE_NAME = ".replint-cache.json"


@dataclass
class AnalysisReport:
    """Everything one analysis run produced.

    Attributes:
        findings: every finding, suppressed ones included, sorted.
        files_scanned: count of files the file-scoped checkers saw.
        cache_hits / cache_misses: checker runs served from / added to the
            finding cache.
        rules: rule id -> description for every checker that ran.
    """

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    rules: Dict[str, str] = field(default_factory=dict)

    @property
    def errors(self) -> List[Finding]:
        """Findings that fail the run (everything not suppressed)."""
        return [finding for finding in self.findings if not finding.suppressed]

    @property
    def suppressed(self) -> List[Finding]:
        return [finding for finding in self.findings if finding.suppressed]

    @property
    def exit_code(self) -> int:
        return 1 if self.errors else 0

    def to_json(self) -> Dict[str, object]:
        """The ``--json`` payload CI consumes."""
        return {
            "errors": [finding.to_json() for finding in self.errors],
            "suppressed": [finding.to_json() for finding in self.suppressed],
            "summary": {
                "error_count": len(self.errors),
                "suppressed_count": len(self.suppressed),
                "files_scanned": self.files_scanned,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "rules": dict(sorted(self.rules.items())),
            },
        }


def run_analysis(
    root: Path,
    paths: Sequence[str] = ("src",),
    cache_path: Optional[Path] = None,
    rules: Optional[Sequence[str]] = None,
    checkers: Optional[Sequence[Checker]] = None,
) -> AnalysisReport:
    """Run replint over ``paths`` beneath ``root``.

    Args:
        root: repository root; findings carry paths relative to it.
        paths: files/directories selecting what the file-scoped checkers
            scan.  Cross-module checkers always check the invariant files
            they declare, regardless of the selection.
        cache_path: finding-cache file (``None`` = no persistent cache).
        rules: optional rule-id filter (unknown ids are ignored).
        checkers: explicit checker set (defaults to the registry) — the
            fixture tests inject exactly the rule under test.
    """
    project = Project(root, paths)
    cache = AnalysisCache(cache_path)
    active: List[Checker] = list(
        checkers if checkers is not None else registered_checkers()
    )
    if rules is not None:
        wanted = set(rules)
        active = [checker for checker in active if checker.rule in wanted]

    report = AnalysisReport()
    findings: List[Finding] = []
    suppressions: List[Suppression] = []
    parse_failed: Dict[str, bool] = {}

    selected = project.selected_files()
    report.files_scanned = len(selected)

    # Suppressions come from every file findings can land in: the selected
    # files plus every cross-module dependency file.
    suppression_paths = list(selected)
    for checker in active:
        if isinstance(checker, ProjectChecker):
            suppression_paths.extend(checker.dependencies)
    for relpath in sorted(set(suppression_paths)):
        source = project.file(relpath)
        if source is not None:
            suppressions.extend(parse_suppressions(relpath, source.text))

    for checker in active:
        report.rules[checker.rule] = checker.description
        if isinstance(checker, FileChecker):
            for relpath in selected:
                if not checker.applies_to(relpath):
                    continue
                source = project.file(relpath)
                if source is None:
                    continue
                key = cache.key(checker.rule, checker.version, source.digest)
                cached = cache.get(key)
                if cached is not None:
                    findings.extend(cached)
                    continue
                try:
                    produced = sorted(checker.check(source))
                except SourceParseError as error:
                    if not parse_failed.get(relpath):
                        parse_failed[relpath] = True
                        findings.append(
                            Finding(
                                path=relpath,
                                line=error.line,
                                rule=PARSE_RULE,
                                message=f"file does not parse: {error}",
                            )
                        )
                    continue
                cache.put(key, produced)
                findings.extend(produced)
        else:
            digests = []
            for relpath in checker.dependencies:
                source = project.file(relpath)
                digests.append("absent" if source is None else source.digest)
            key = cache.key(
                checker.rule, checker.version, joint_digest(digests)
            )
            cached = cache.get(key)
            if cached is not None:
                findings.extend(cached)
                continue
            try:
                produced = sorted(checker.check(project))
            except SourceParseError as error:
                findings.append(
                    Finding(
                        path=error.path,
                        line=error.line,
                        rule=PARSE_RULE,
                        message=f"file does not parse: {error}",
                    )
                )
                continue
            cache.put(key, produced)
            findings.extend(produced)

    resolved, problems = apply_suppressions(findings, suppressions)
    report.findings = sorted(resolved + problems)
    report.cache_hits = cache.hits
    report.cache_misses = cache.misses
    cache.save()
    return report
