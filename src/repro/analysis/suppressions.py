"""Trailing ``replint: disable=RULE -- justification`` comments.

Suppressions are deliberately narrow: one line, named rules, and a
*required* justification after ``--`` so the reviewer of a suppression sees
why the invariant does not apply at that site.  A suppression missing its
justification, naming no rule, or matching no finding is itself reported
under the ``REPLINT-SUPPRESS`` rule — silence must be earned, and stale
silence must not accumulate.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.findings import Finding

#: Rule id findings about the suppression mechanism itself are filed under.
SUPPRESS_RULE = "REPLINT-SUPPRESS"

_MARKER = re.compile(r"#\s*replint:\s*disable=([^#]*)")


@dataclass(frozen=True)
class Suppression:
    """One parsed suppression comment.

    Attributes:
        path: repo-root-relative path of the file carrying the comment.
        line: 1-based line the comment sits on (findings on this line with a
            matching rule are suppressed).
        rules: rule ids named by the comment.
        justification: the required ``--`` text ("" when missing — invalid).
    """

    path: str
    line: int
    rules: Tuple[str, ...]
    justification: str

    @property
    def valid(self) -> bool:
        """Whether the suppression may actually silence findings."""
        return bool(self.rules) and bool(self.justification)


def parse_suppressions(path: str, text: str) -> List[Suppression]:
    """All suppression comments in one file's source text.

    The scan is textual (comments are invisible to ``ast``); the marker is
    specific enough that matches inside string literals are not a practical
    concern for this codebase, and a false positive would only ever surface
    as an *unused* suppression — loudly, not silently.
    """
    suppressions: List[Suppression] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _MARKER.search(line)
        if match is None:
            continue
        body = match.group(1)
        rules_part, separator, justification = body.partition("--")
        rules = tuple(
            rule.strip() for rule in rules_part.split(",") if rule.strip()
        )
        suppressions.append(
            Suppression(
                path=path,
                line=lineno,
                rules=rules,
                justification=justification.strip() if separator else "",
            )
        )
    return suppressions


def apply_suppressions(
    findings: List[Finding], suppressions: List[Suppression]
) -> Tuple[List[Finding], List[Finding]]:
    """Match suppressions against findings.

    Returns ``(findings, problems)``: the input findings with matching ones
    marked ``suppressed`` (carrying their justification), plus
    ``REPLINT-SUPPRESS`` findings for malformed and unused suppressions.
    """
    used = [False] * len(suppressions)
    resolved: List[Finding] = []
    for finding in findings:
        suppressed_by = None
        for index, suppression in enumerate(suppressions):
            if (
                suppression.valid
                and suppression.path == finding.path
                and suppression.line == finding.line
                and finding.rule in suppression.rules
            ):
                suppressed_by = suppression
                used[index] = True
                break
        if suppressed_by is None:
            resolved.append(finding)
        else:
            resolved.append(
                Finding(
                    path=finding.path,
                    line=finding.line,
                    rule=finding.rule,
                    message=finding.message,
                    suppressed=True,
                    justification=suppressed_by.justification,
                )
            )
    problems: List[Finding] = []
    for index, suppression in enumerate(suppressions):
        if not suppression.rules:
            problems.append(
                Finding(
                    path=suppression.path,
                    line=suppression.line,
                    rule=SUPPRESS_RULE,
                    message=(
                        "suppression names no rule; write a trailing "
                        "comment 'replint: disable=RULE -- justification'"
                    ),
                )
            )
        elif not suppression.justification:
            problems.append(
                Finding(
                    path=suppression.path,
                    line=suppression.line,
                    rule=SUPPRESS_RULE,
                    message=(
                        f"suppression of {', '.join(suppression.rules)} has no "
                        "justification; append ' -- <why this site is exempt>'"
                    ),
                )
            )
        elif not used[index]:
            problems.append(
                Finding(
                    path=suppression.path,
                    line=suppression.line,
                    rule=SUPPRESS_RULE,
                    message=(
                        f"unused suppression of {', '.join(suppression.rules)}: "
                        "no finding matches this line; delete the comment"
                    ),
                )
            )
    return resolved, problems
