"""Per-file finding cache keyed on content hashes.

Replint's checkers are pure functions of file contents, so their findings
replay exactly: a cache entry keys ``(rule, checker version, content
digest)`` — or, for cross-module rules, the joint digest of every file the
rule reads — and stores the findings' JSON form.  Editing a file changes
its digest; changing a rule bumps its version; both invalidate precisely
the affected entries and nothing else.

The cache is one JSON file (atomic rename on save) so it survives runs,
diffs cleanly when inspected, and can simply be deleted.  A corrupt or
unreadable cache is treated as empty — the cache may only ever make a run
faster, never change its outcome.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from repro.analysis.findings import Finding

#: Format version of the cache file; bump on layout changes.
CACHE_FORMAT = 1


def joint_digest(digests: Iterable[str]) -> str:
    """One digest for a cross-module checker's dependency files."""
    combined = hashlib.sha256()
    for digest in digests:
        combined.update(digest.encode("ascii"))
        combined.update(b"\n")
    return combined.hexdigest()


class AnalysisCache:
    """JSON-backed cache of checker findings.

    Args:
        path: cache file location; ``None`` disables persistence (the
            instance still deduplicates within one run).
    """

    def __init__(self, path: Optional[Path] = None) -> None:
        self.path = path
        self.hits = 0
        self.misses = 0
        self._entries: Dict[str, List[Dict[str, object]]] = {}
        self._dirty = False
        if path is not None and path.is_file():
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
                if payload.get("format") == CACHE_FORMAT:
                    entries = payload.get("entries", {})
                    if isinstance(entries, dict):
                        self._entries = entries
            except (OSError, ValueError):
                # An unreadable cache must not change the run's outcome.
                self._entries = {}

    @staticmethod
    def key(rule: str, version: int, digest: str) -> str:
        return f"{rule}:v{version}:{digest}"

    def get(self, key: str) -> Optional[List[Finding]]:
        """Cached findings for ``key``, or ``None`` on a miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        try:
            return [Finding.from_json(item) for item in entry]  # type: ignore[arg-type]
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            self.hits -= 1
            return None

    def put(self, key: str, findings: List[Finding]) -> None:
        self._entries[key] = [finding.to_json() for finding in findings]
        self._dirty = True

    def save(self) -> None:
        """Persist (atomic rename), dropping entries no run refreshed.

        Only called at the end of a successful run; an interrupted run
        leaves the previous cache file intact.
        """
        if self.path is None or not self._dirty:
            return
        payload = {"format": CACHE_FORMAT, "entries": self._entries}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        handle, temp_name = tempfile.mkstemp(
            dir=str(self.path.parent), prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                json.dump(payload, stream, sort_keys=True)
            os.replace(temp_name, self.path)
        except OSError:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
