"""Rendering an :class:`~repro.analysis.runner.AnalysisReport` for humans.

The JSON form lives on the report itself (:meth:`AnalysisReport.to_json`);
this module owns the terminal rendering: one ``path:line: RULE message``
line per finding (editor-clickable), grouped counts, and the cache/file
summary line.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.runner import AnalysisReport


def render_text(report: AnalysisReport, verbose: bool = False) -> str:
    """The human report; empty findings render a one-line all-clear."""
    lines: List[str] = []
    for finding in report.errors:
        lines.append(f"{finding.location()}: {finding.rule} {finding.message}")
    if verbose:
        for finding in report.suppressed:
            lines.append(
                f"{finding.location()}: {finding.rule} suppressed "
                f"({finding.justification}): {finding.message}"
            )
    by_rule: Dict[str, int] = {}
    for finding in report.errors:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    if by_rule:
        breakdown = ", ".join(
            f"{rule}: {count}" for rule, count in sorted(by_rule.items())
        )
        lines.append(
            f"replint: {len(report.errors)} violation"
            f"{'s' if len(report.errors) != 1 else ''} ({breakdown})"
        )
    else:
        lines.append("replint: no violations")
    lines.append(
        f"replint: {report.files_scanned} files scanned, "
        f"{len(report.suppressed)} suppressed, "
        f"cache {report.cache_hits} hits / {report.cache_misses} misses"
    )
    return "\n".join(lines)


def render_rules(rules: Dict[str, str]) -> str:
    """``--list-rules`` output: every rule id with its one-line invariant."""
    width = max((len(rule) for rule in rules), default=0)
    return "\n".join(
        f"{rule.ljust(width)}  {description}"
        for rule, description in sorted(rules.items())
    )
