"""repro.analysis — AST-based invariant linting for the evaluation stack.

The repo's correctness story rests on invariants that used to be enforced
only by reviewer memory: bit-identity (``atol=0``) needs explicit dtypes
and seeded RNG everywhere, every new :class:`~repro.api.protocol.EvalRequest`
field must be hand-threaded through the wire codec, the client, and the
``Session`` coalescing fingerprint, and the serve layer's admission
counters once self-deadlocked on a lock-discipline slip.  ``replint``
encodes those invariants as machine-checked rules — the software analogue
of the design-rule checks hardware flows run before anything ships to
silicon::

    python -m repro.analysis src tests benchmarks

Six project-specific rules ship today (see :mod:`repro.analysis.checkers`):

========================  ====================================================
rule                      invariant
========================  ====================================================
``REQ-SYNC``              every ``EvalRequest`` field is threaded through the
                          wire codec (encode *and* decode), the HTTP client,
                          and the ``Session`` coalescing key
``RNG-SEED``              no ``np.random.*`` / stdlib ``random`` draws in
                          ``src/repro`` outside the sanctioned generator
                          plumbing (``repro.utils.rng``,
                          ``repro.truenorth.prng``)
``LOCK-GUARD``            attributes annotated ``# guarded-by: <lock>`` are
                          only touched inside ``with self.<lock>``, and no
                          method re-acquires a non-reentrant lock it already
                          holds (the PR 4 deadlock shape)
``DTYPE-EXPLICIT``        array-creating numpy calls on the
                          ``repro.truenorth`` / ``repro.eval`` hot paths pass
                          an explicit non-builtin dtype (``dtype=float`` is
                          an error)
``CAP-EXHAUSTIVE``        every chip-only ``EvalRequest`` flag is validated
                          against a ``BackendCapabilities`` field and flows
                          into ``Session`` auto-selection
``FROZEN-MUT``            no ``object.__setattr__`` on frozen dataclasses
                          outside ``__post_init__`` normalization and private
                          memo sites
========================  ====================================================

Findings are suppressed line by line with a *justified* trailing comment
of the form ``replint: disable=RULE-ID -- why this site is exempt``.

A suppression without the ``-- justification`` text is itself a finding
(``REPLINT-SUPPRESS``), as is a suppression that stopped matching anything.
Results cache per file keyed on content hash (``--no-cache`` to disable),
and ``--json`` emits the machine-readable report CI consumes.
"""

from __future__ import annotations

from repro.analysis.findings import Finding
from repro.analysis.framework import (
    Checker,
    FileChecker,
    ProjectChecker,
    checker_names,
    registered_checkers,
    register_checker,
)
from repro.analysis.project import Project, SourceFile
from repro.analysis.runner import AnalysisReport, run_analysis

__all__ = [
    "AnalysisReport",
    "Checker",
    "FileChecker",
    "Finding",
    "Project",
    "ProjectChecker",
    "SourceFile",
    "checker_names",
    "register_checker",
    "registered_checkers",
    "run_analysis",
]

# Importing the checkers package registers the six project rules.
import repro.analysis.checkers  # noqa: E402,F401  (registration side effect)
