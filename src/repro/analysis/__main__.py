"""Command-line entry point: ``python -m repro.analysis [paths...]``.

Exit codes: 0 = clean, 1 = violations found, 2 = usage error.  The CI
``static-analysis`` job runs ``python -m repro.analysis src tests
benchmarks`` and fails the build on any violation; ``--json`` emits the
machine-readable report for tooling.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.framework import checker_names, registered_checkers
from repro.analysis.report import render_rules, render_text
from repro.analysis.runner import DEFAULT_CACHE_NAME, run_analysis


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=__doc__,
        formatter_class=argparse.ArgumentDefaultsHelpFormatter,
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files/directories to scan (relative to --root)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repository root all paths and findings are relative to",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="RULE",
        help="run only this rule (repeatable)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the machine-readable report"
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the per-file finding cache",
    )
    parser.add_argument(
        "--cache-file",
        default=None,
        help=f"finding-cache location (default: <root>/{DEFAULT_CACHE_NAME})",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule and exit",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also print suppressed findings with their justifications",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    root = Path(args.root).resolve()
    if not root.is_dir():
        print(f"replint: root {root} is not a directory", file=sys.stderr)
        return 2
    if args.list_rules:
        print(
            render_rules(
                {
                    checker.rule: checker.description
                    for checker in registered_checkers()
                }
            )
        )
        return 0
    rules: Optional[List[str]] = args.rules
    if rules is not None:
        unknown = sorted(set(rules) - set(checker_names()))
        if unknown:
            print(
                f"replint: unknown rule(s) {', '.join(unknown)}; "
                f"registered: {', '.join(checker_names())}",
                file=sys.stderr,
            )
            return 2
    cache_path: Optional[Path]
    if args.no_cache:
        cache_path = None
    elif args.cache_file is not None:
        cache_path = Path(args.cache_file)
    else:
        cache_path = root / DEFAULT_CACHE_NAME
    report = run_analysis(
        root=root, paths=args.paths, cache_path=cache_path, rules=rules
    )
    if args.json:
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(render_text(report, verbose=args.verbose))
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
