"""FROZEN-MUT — frozen dataclasses stay frozen.

``object.__setattr__`` is the only way to mutate a frozen dataclass, and
the repo sanctions exactly two shapes of it:

* normalization inside ``__post_init__`` (the instance is not yet visible
  to anyone else, so this is construction, not mutation), and
* write-once private memo slots (``_``-prefixed constant attribute names),
  like the ``_evaluation_view`` fingerprint memo on ``EvalRequest`` — an
  idempotent cache whose value is a pure function of the frozen fields.

Anything else — mutating another object, computed attribute names, public
attributes after construction — silently breaks the protocol-layer
assumptions that frozen requests/results can key caches and coalescing
maps and be shared across threads without locks.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Tuple

from repro.analysis import astutils
from repro.analysis.findings import Finding
from repro.analysis.framework import FileChecker, register_checker
from repro.analysis.project import SourceFile


class FrozenMutChecker(FileChecker):
    rule = "FROZEN-MUT"
    description = (
        "object.__setattr__ only in __post_init__ or on _-private "
        "write-once memo slots of self"
    )
    version = 1
    path_prefixes = ("src/repro/",)

    def check(self, source: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        for node, ancestors in astutils.walk_with_stack(source.tree):
            if not isinstance(node, ast.Call):
                continue
            if astutils.dotted_name(node.func) != "object.__setattr__":
                continue
            problem = self._classify(node, ancestors)
            if problem is not None:
                findings.append(
                    Finding(
                        path=source.path,
                        line=node.lineno,
                        rule=self.rule,
                        message=problem,
                    )
                )
        return findings

    def _classify(
        self, call: ast.Call, ancestors: Tuple[ast.AST, ...]
    ) -> Optional[str]:
        """The violation message for one ``object.__setattr__`` call, or
        ``None`` when the call matches a sanctioned shape."""
        if len(call.args) < 2:
            return (
                "object.__setattr__ with fewer than two positional "
                "arguments cannot be audited; spell the target and "
                "attribute name explicitly"
            )
        target, name = call.args[0], call.args[1]
        if not (isinstance(target, ast.Name) and target.id == "self"):
            spelled = astutils.dotted_name(target) or "<expression>"
            return (
                f"object.__setattr__ mutates {spelled}, not self; frozen "
                "instances may only be filled in by their own construction "
                "or memo slots"
            )
        if not (isinstance(name, ast.Constant) and isinstance(name.value, str)):
            return (
                "object.__setattr__ with a computed attribute name cannot "
                "be audited; use a string-literal attribute name"
            )
        function = astutils.enclosing_function(ancestors)
        in_post_init = (
            function is not None and function.name == "__post_init__"
        )
        if in_post_init or name.value.startswith("_"):
            return None
        return (
            f"object.__setattr__(self, {name.value!r}, ...) outside "
            "__post_init__ mutates a public field of a frozen instance; "
            "normalize in __post_init__ or use a _-private memo slot"
        )


register_checker(FrozenMutChecker())
