"""RNG-SEED — all randomness flows through the injected-generator plumbing.

The cross-backend ``atol=0`` equivalence invariants only hold because every
stochastic component draws from a ``numpy.random.Generator`` that is
threaded in explicitly (``repro.utils.rng.new_rng`` / ``spawn_rngs``) or
from the hardware LFSR model (``repro.truenorth.prng``).  A single
``np.random.choice(...)`` (module-level legacy API, hidden global state) or
stdlib ``random.random()`` call silently breaks reproducibility: results
depend on import order and on every other consumer of the global stream.

The rule flags, in ``src/repro`` outside the two sanctioned plumbing
modules:

* any call through ``numpy.random.*`` (``np.random.default_rng`` included —
  fresh generators are minted by ``repro.utils.rng``, nowhere else);
* any import of the stdlib ``random`` module and any call through it.

Type annotations (``np.random.Generator``) and ``isinstance`` checks are
not calls and are untouched.
"""

from __future__ import annotations

import ast
from typing import List, Tuple

from repro.analysis import astutils
from repro.analysis.findings import Finding
from repro.analysis.framework import FileChecker, register_checker
from repro.analysis.project import SourceFile

#: Modules allowed to mint generators: the explicit-injection helpers and
#: the hardware LFSR model (which derives numpy streams from LFSR state).
SANCTIONED_FILES: Tuple[str, ...] = (
    "src/repro/utils/rng.py",
    "src/repro/truenorth/prng.py",
)


class RngSeedChecker(FileChecker):
    rule = "RNG-SEED"
    description = (
        "randomness in src/repro flows through repro.utils.rng / "
        "repro.truenorth.prng, never np.random module state or stdlib random"
    )
    version = 1
    path_prefixes = ("src/repro/",)

    def applies_to(self, relpath: str) -> bool:
        return (
            super().applies_to(relpath) and relpath not in SANCTIONED_FILES
        )

    def check(self, source: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        tree = source.tree
        aliases = astutils.import_aliases(tree)

        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        findings.append(
                            Finding(
                                path=source.path,
                                line=node.lineno,
                                rule=self.rule,
                                message=(
                                    "stdlib random imported; draw from an "
                                    "injected numpy Generator "
                                    "(repro.utils.rng.new_rng) instead"
                                ),
                            )
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module == "random":
                    findings.append(
                        Finding(
                            path=source.path,
                            line=node.lineno,
                            rule=self.rule,
                            message=(
                                "stdlib random imported; draw from an "
                                "injected numpy Generator "
                                "(repro.utils.rng.new_rng) instead"
                            ),
                        )
                    )
            elif isinstance(node, ast.Call):
                resolved = astutils.resolve_name(node.func, aliases)
                if resolved is None:
                    continue
                if resolved.startswith("numpy.random."):
                    findings.append(
                        Finding(
                            path=source.path,
                            line=node.lineno,
                            rule=self.rule,
                            message=(
                                f"call to {resolved} bypasses the injected-"
                                "generator plumbing; route it through "
                                "repro.utils.rng (or repro.truenorth.prng "
                                "for LFSR streams)"
                            ),
                        )
                    )
                elif resolved == "random" or resolved.startswith("random."):
                    # Only flag the stdlib module, not a local variable that
                    # happens to be called "random": the alias map records
                    # the import, so an unimported "random" root resolves
                    # only when the file imported it (already flagged above)
                    # or shadows it locally.
                    if aliases.get(resolved.split(".", 1)[0]) in (
                        "random",
                    ) or _imports_stdlib_random(tree):
                        findings.append(
                            Finding(
                                path=source.path,
                                line=node.lineno,
                                rule=self.rule,
                                message=(
                                    f"call to stdlib {resolved} uses hidden "
                                    "global RNG state; draw from an injected "
                                    "numpy Generator instead"
                                ),
                            )
                        )
        return findings


def _imports_stdlib_random(tree: ast.Module) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import) and any(
            alias.name == "random" for alias in node.names
        ):
            return True
    return False


register_checker(RngSeedChecker())
