"""LOCK-GUARD — annotated shared state is only touched under its lock.

The serving layer (:mod:`repro.serve`) shares queues and counters between
the HTTP threads and the worker pool.  Each class declares which lock
guards which attribute with a trailing comment on the ``__init__``
assignment::

    self._jobs = deque()   # guarded-by: _lock

and this rule machine-checks two things inside the declaring class:

* **access discipline** — every later read or write of a guarded
  attribute sits lexically inside ``with self.<lock>`` (a
  ``threading.Condition`` constructed over a lock counts as that lock:
  ``with self._nonempty`` guards what ``_lock`` guards);
* **re-acquisition** — code already holding a non-reentrant lock neither
  re-enters ``with`` on it nor calls a sibling method that would.  This is
  exactly the deadlock once shipped in the admission controller, where a
  rejection path computed its retry hint via a method that re-acquired the
  queue lock it was already holding.

``__init__`` itself is exempt (the instance is not shared yet).
Annotations naming a lock the class never creates are themselves findings
— a guard that cannot be enforced is documentation pretending to be an
invariant.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis import astutils
from repro.analysis.findings import Finding
from repro.analysis.framework import FileChecker, register_checker
from repro.analysis.project import SourceFile

#: The annotation grammar: ``# guarded-by: _lock`` (``self._lock`` also ok).
GUARD_MARKER = re.compile(r"#\s*guarded-by:\s*(?:self\.)?([A-Za-z_]\w*)")

#: threading constructors that create an acquirable lock attribute.
LOCK_FACTORIES = {
    "threading.Lock": "lock",
    "threading.RLock": "rlock",
    "threading.Condition": "condition",
    "threading.Semaphore": "lock",
    "threading.BoundedSemaphore": "lock",
}


class _ClassLocks:
    """The lock world of one class: guards, lock kinds, and lock groups."""

    def __init__(self) -> None:
        self.guards: Dict[str, Tuple[str, int]] = {}  # attr -> (lock, line)
        self.kinds: Dict[str, str] = {}  # lock attr -> factory kind
        self._parent: Dict[str, str] = {}

    def _find(self, name: str) -> str:
        while self._parent.get(name, name) != name:
            name = self._parent[name]
        return name

    def union(self, a: str, b: str) -> None:
        self._parent.setdefault(a, a)
        self._parent.setdefault(b, b)
        self._parent[self._find(a)] = self._find(b)

    def group(self, name: str) -> str:
        return self._find(name)

    def reentrant(self, name: str) -> bool:
        """Whether any lock of ``name``'s group is an RLock."""
        target = self.group(name)
        return any(
            kind == "rlock" and self.group(lock) == target
            for lock, kind in self.kinds.items()
        )


class LockGuardChecker(FileChecker):
    rule = "LOCK-GUARD"
    description = (
        "attributes annotated '# guarded-by: <lock>' are only accessed "
        "under 'with self.<lock>', and held locks are never re-acquired"
    )
    version = 1
    path_prefixes = ("src/repro/serve/",)

    def check(self, source: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(source, node))
        return findings

    # ------------------------------------------------------------------
    # declaration gathering
    # ------------------------------------------------------------------
    def _gather(
        self, source: SourceFile, classdef: ast.ClassDef
    ) -> Tuple[_ClassLocks, List[Finding]]:
        world = _ClassLocks()
        findings: List[Finding] = []
        init = next(
            (
                method
                for method in astutils.class_methods(classdef)
                if method.name == "__init__"
            ),
            None,
        )
        if init is None:
            return world, findings
        lines = source.lines()
        aliases = astutils.import_aliases(source.tree)
        attached: Set[int] = set()
        for node in ast.walk(init):
            target: Optional[ast.expr]
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                target, value = node.target, node.value
            else:
                continue
            attr = astutils.self_attribute(target)
            if attr is None:
                continue
            line_text = lines[node.lineno - 1] if node.lineno <= len(lines) else ""
            marker = GUARD_MARKER.search(line_text)
            if marker is not None:
                world.guards[attr] = (marker.group(1), node.lineno)
                attached.add(node.lineno)
            if isinstance(value, ast.Call):
                resolved = astutils.resolve_name(value.func, aliases)
                kind = LOCK_FACTORIES.get(resolved or "")
                if kind is not None:
                    world.kinds[attr] = kind
                    if kind == "condition":
                        for arg in value.args:
                            wrapped = astutils.self_attribute(arg)
                            if wrapped is not None:
                                world.union(attr, wrapped)
        # Dangling annotations: a guarded-by comment inside __init__ that no
        # self-assignment carries declares nothing and is itself an error.
        end = init.end_lineno or init.lineno
        for lineno in range(init.lineno, min(end, len(lines)) + 1):
            if lineno in attached:
                continue
            if GUARD_MARKER.search(lines[lineno - 1]):
                findings.append(
                    Finding(
                        path=source.path,
                        line=lineno,
                        rule=self.rule,
                        message=(
                            "guarded-by annotation is not attached to a "
                            "'self.<attr> = ...' assignment and declares "
                            "nothing"
                        ),
                    )
                )
        for attr, (lock, lineno) in world.guards.items():
            if lock not in world.kinds:
                findings.append(
                    Finding(
                        path=source.path,
                        line=lineno,
                        rule=self.rule,
                        message=(
                            f"self.{attr} is declared guarded by "
                            f"self.{lock}, but __init__ creates no such "
                            "threading lock"
                        ),
                    )
                )
        return world, findings

    # ------------------------------------------------------------------
    # enforcement
    # ------------------------------------------------------------------
    def _check_class(
        self, source: SourceFile, classdef: ast.ClassDef
    ) -> List[Finding]:
        world, findings = self._gather(source, classdef)
        if not world.guards and not findings:
            return findings
        # Locks each method acquires directly — the callee side of the
        # re-acquisition rule.
        acquires: Dict[str, Set[str]] = {}
        for method in astutils.class_methods(classdef):
            acquired: Set[str] = set()
            for node in ast.walk(method):
                if isinstance(node, (ast.With, ast.AsyncWith)):
                    acquired.update(self._with_groups(node, world))
            acquires[method.name] = acquired
        for method in astutils.class_methods(classdef):
            if method.name == "__init__":
                continue
            findings.extend(
                self._check_method(source, method, world, acquires)
            )
        return findings

    def _with_groups(
        self, node: ast.AST, world: _ClassLocks
    ) -> Set[str]:
        """Lock groups a ``with`` statement acquires via ``self.<lock>``."""
        groups: Set[str] = set()
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                attr = astutils.self_attribute(item.context_expr)
                if attr is not None and attr in world.kinds:
                    groups.add(world.group(attr))
        return groups

    def _check_method(
        self,
        source: SourceFile,
        method: ast.FunctionDef,
        world: _ClassLocks,
        acquires: Dict[str, Set[str]],
    ) -> List[Finding]:
        findings: List[Finding] = []
        for node, ancestors in astutils.walk_with_stack(method):
            held: Set[str] = set()
            for ancestor in ancestors:
                held.update(self._with_groups(ancestor, world))
            if isinstance(node, ast.Attribute):
                attr = astutils.self_attribute(node)
                if attr in world.guards:
                    lock = world.guards[attr][0]
                    if world.group(lock) not in held:
                        findings.append(
                            Finding(
                                path=source.path,
                                line=node.lineno,
                                rule=self.rule,
                                message=(
                                    f"self.{attr} is guarded by "
                                    f"self.{lock} but accessed outside "
                                    f"'with self.{lock}' in {method.name}()"
                                ),
                            )
                        )
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    attr = astutils.self_attribute(item.context_expr)
                    if attr is None or attr not in world.kinds:
                        continue
                    group = world.group(attr)
                    if group in held and not world.reentrant(attr):
                        findings.append(
                            Finding(
                                path=source.path,
                                line=node.lineno,
                                rule=self.rule,
                                message=(
                                    f"'with self.{attr}' re-acquires a "
                                    "non-reentrant lock already held here "
                                    "(guaranteed deadlock)"
                                ),
                            )
                        )
            elif isinstance(node, ast.Call):
                called = astutils.self_attribute(node.func)
                if called is None or called not in acquires:
                    continue
                conflict = sorted(held & acquires[called])
                if conflict and not all(
                    world.reentrant(group) for group in conflict
                ):
                    findings.append(
                        Finding(
                            path=source.path,
                            line=node.lineno,
                            rule=self.rule,
                            message=(
                                f"self.{called}() acquires "
                                f"self.{conflict[0]} which is already "
                                "held here; the lock is non-reentrant, "
                                "so this deadlocks (compute under the "
                                "held lock instead)"
                            ),
                        )
                    )
        return findings


register_checker(LockGuardChecker())
