"""DTYPE-EXPLICIT — numeric kernels spell their dtypes.

The chip model and the vectorized engine promise *bit-identical* integer
spike counts across backends and platforms.  That promise dies quietly at
any array whose dtype is left to defaulting or to the platform:

* ``dtype=float`` / ``dtype=int`` / ``dtype=bool`` hand numpy a *builtin*
  type.  ``int`` maps to the platform C ``long`` — int32 on Windows,
  int64 on Linux — so the same run truncates differently per platform.
* allocator calls (``np.zeros`` / ``ones`` / ``empty`` / ``full``)
  without any ``dtype=`` default to float64 *today*; the reader cannot
  tell a deliberate float64 accumulator from an accidental one, and an
  integer quantity (spike counts, core ids) allocated this way silently
  does float arithmetic.
* ``.astype(float)`` and friends are the same builtin ambiguity on the
  conversion side.

Inside the numeric core (``repro.truenorth``, ``repro.eval``) every one of
these must name a numpy scalar type (``np.float64``, ``np.int64``,
``np.bool_``) or a dtype string.  ``*_like`` calls and ``np.array``
(which infer from an existing array/data) are exempt.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

from repro.analysis import astutils
from repro.analysis.findings import Finding
from repro.analysis.framework import FileChecker, register_checker
from repro.analysis.project import SourceFile

#: Builtin type names that are ambiguous (platform- or default-dependent)
#: when used as a numpy dtype.
BUILTIN_DTYPES = ("float", "int", "bool", "complex")

#: Suggested explicit spelling per builtin (the Linux/CI-bit-identical one).
EXPLICIT_FOR = {
    "float": "np.float64",
    "int": "np.int64",
    "bool": "np.bool_",
    "complex": "np.complex128",
}

#: numpy allocators whose dtype defaults silently to float64.
ALLOCATORS = ("numpy.zeros", "numpy.ones", "numpy.empty", "numpy.full")


def _builtin_dtype(node: ast.expr) -> Optional[str]:
    """The builtin type name when ``node`` spells one, else ``None``."""
    if isinstance(node, ast.Name) and node.id in BUILTIN_DTYPES:
        return node.id
    return None


class DtypeExplicitChecker(FileChecker):
    rule = "DTYPE-EXPLICIT"
    description = (
        "numeric-core array creation names an explicit numpy dtype; "
        "builtin float/int/bool dtypes and defaulted allocators are errors"
    )
    version = 1
    path_prefixes = ("src/repro/truenorth/", "src/repro/eval/")

    def check(self, source: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        aliases = astutils.import_aliases(source.tree)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            findings.extend(self._check_call(source.path, node, aliases))
        return findings

    def _check_call(
        self, path: str, call: ast.Call, aliases: Dict[str, str]
    ) -> List[Finding]:
        findings: List[Finding] = []
        dtype_kw: Optional[ast.keyword] = None
        for keyword in call.keywords:
            if keyword.arg == "dtype":
                dtype_kw = keyword
        if dtype_kw is not None:
            builtin = _builtin_dtype(dtype_kw.value)
            if builtin is not None:
                findings.append(
                    Finding(
                        path=path,
                        line=call.lineno,
                        rule=self.rule,
                        message=(
                            f"dtype={builtin} is the platform-dependent "
                            f"builtin; spell {EXPLICIT_FOR[builtin]} "
                            "(bit-identity depends on it)"
                        ),
                    )
                )
        resolved = astutils.resolve_name(call.func, aliases)
        if resolved in ALLOCATORS:
            positional_dtype = (
                call.args[1] if len(call.args) >= 2 else None
            )
            if resolved == "numpy.full":
                # full(shape, fill_value[, dtype]) — dtype is the 3rd slot.
                positional_dtype = call.args[2] if len(call.args) >= 3 else None
            if positional_dtype is not None:
                builtin = _builtin_dtype(positional_dtype)
                if builtin is not None:
                    findings.append(
                        Finding(
                            path=path,
                            line=call.lineno,
                            rule=self.rule,
                            message=(
                                f"{resolved} with positional builtin dtype "
                                f"{builtin}; spell {EXPLICIT_FOR[builtin]}"
                            ),
                        )
                    )
            elif dtype_kw is None:
                short = resolved.rsplit(".", 1)[1]
                findings.append(
                    Finding(
                        path=path,
                        line=call.lineno,
                        rule=self.rule,
                        message=(
                            f"np.{short}(...) without dtype= defaults "
                            "silently to float64; name the intended dtype "
                            "explicitly"
                        ),
                    )
                )
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr == "astype"
            and call.args
        ):
            builtin = _builtin_dtype(call.args[0])
            if builtin is not None:
                findings.append(
                    Finding(
                        path=path,
                        line=call.lineno,
                        rule=self.rule,
                        message=(
                            f".astype({builtin}) converts through the "
                            "platform-dependent builtin; spell "
                            f"{EXPLICIT_FOR[builtin]}"
                        ),
                    )
                )
        return findings


register_checker(DtypeExplicitChecker())
