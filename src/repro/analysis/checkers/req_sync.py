"""REQ-SYNC — every ``EvalRequest`` field is threaded through the stack.

Adding a field to :class:`repro.api.protocol.EvalRequest` is a four-site
change: the wire codec must encode *and* decode it, the HTTP client must
expose it, and the session's coalescing key must incorporate it (or two
requests differing only in the new field would silently share one engine
pass and return wrong results).  Each site has historically been a
hand-kept list — exactly the kind that drifts.

This rule derives the field list from the dataclass itself and checks
every coverage site:

* ``codec.WireRequest`` declares a same-named field;
* ``codec.encode_request`` writes the field into its payload literal;
* ``codec.decode_request`` mentions the field name (reads it from the
  payload and validates it);
* ``client.ServeClient.evaluate`` takes it as a parameter;
* ``session.Session._coalesce_key`` reads ``request.<field>`` — possibly
  through an ``EvalRequest`` ``@property`` (``request.max_copies`` covers
  ``copy_levels`` because the property body reads it; derived coverage is
  computed from the property source, not a hand-kept alias table).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.analysis import astutils
from repro.analysis.findings import Finding
from repro.analysis.framework import ProjectChecker, register_checker
from repro.analysis.project import Project, SourceFile

PROTOCOL = "src/repro/api/protocol.py"
SESSION = "src/repro/api/session.py"
CODEC = "src/repro/serve/codec.py"
CLIENT = "src/repro/serve/client.py"


def _missing_finding(rule: str, path: str, name: str) -> Finding:
    return Finding(
        path=path,
        line=1,
        rule=rule,
        message=f"cannot check request-field sync: {name} not found",
    )


def _function_params(function: ast.FunctionDef) -> Set[str]:
    names = {arg.arg for arg in function.args.args}
    names.update(arg.arg for arg in function.args.posonlyargs)
    names.update(arg.arg for arg in function.args.kwonlyargs)
    names.discard("self")
    return names


def _attribute_reads_of(function: ast.FunctionDef, variable: str) -> Set[str]:
    """Every ``<variable>.<attr>`` spelled inside ``function``."""
    reads: Set[str] = set()
    for node in ast.walk(function):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == variable
        ):
            reads.add(node.attr)
    return reads


def expand_property_reads(
    reads: Set[str], properties: Dict[str, Set[str]]
) -> Set[str]:
    """Field names covered by ``reads``, expanding ``@property`` bodies.

    Expansion iterates to a fixed point so a property reading another
    property still resolves down to the underlying fields.
    """
    covered = set(reads)
    changed = True
    while changed:
        changed = False
        for name in list(covered):
            for read in properties.get(name, ()):
                if read not in covered:
                    covered.add(read)
                    changed = True
    return covered


class ReqSyncChecker(ProjectChecker):
    rule = "REQ-SYNC"
    description = (
        "every EvalRequest field reaches the wire codec (encode+decode), "
        "the HTTP client, and the Session coalescing key"
    )
    version = 1
    dependencies = (PROTOCOL, SESSION, CODEC, CLIENT)

    def check(self, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        protocol = project.file(PROTOCOL)
        if protocol is None:
            return [_missing_finding(self.rule, PROTOCOL, "protocol module")]
        request_class = astutils.find_class(protocol.tree, "EvalRequest")
        if request_class is None:
            return [
                _missing_finding(self.rule, PROTOCOL, "class EvalRequest")
            ]
        fields = astutils.dataclass_field_names(request_class)
        properties = astutils.property_reads(request_class)

        findings.extend(self._check_codec(project, fields))
        findings.extend(self._check_client(project, fields))
        findings.extend(self._check_session(project, fields, properties))
        return findings

    # ------------------------------------------------------------------
    def _check_codec(
        self, project: Project, fields: List[str]
    ) -> List[Finding]:
        codec = project.file(CODEC)
        if codec is None:
            return [_missing_finding(self.rule, CODEC, "codec module")]
        findings: List[Finding] = []
        wire = astutils.find_class(codec.tree, "WireRequest")
        if wire is None:
            findings.append(
                _missing_finding(self.rule, CODEC, "class WireRequest")
            )
        else:
            wire_fields = set(astutils.dataclass_field_names(wire))
            findings.extend(
                self._uncovered(
                    codec,
                    wire.lineno,
                    fields,
                    wire_fields,
                    "WireRequest declares no same-named field",
                )
            )
        encode = astutils.find_function(codec.tree, "encode_request")
        if encode is None:
            findings.append(
                _missing_finding(self.rule, CODEC, "encode_request")
            )
        else:
            findings.extend(
                self._uncovered(
                    codec,
                    encode.lineno,
                    fields,
                    astutils.dict_literal_keys(encode),
                    "encode_request never writes it into the wire payload",
                )
            )
        decode = astutils.find_function(codec.tree, "decode_request")
        if decode is None:
            findings.append(
                _missing_finding(self.rule, CODEC, "decode_request")
            )
        else:
            findings.extend(
                self._uncovered(
                    codec,
                    decode.lineno,
                    fields,
                    astutils.string_constants(decode),
                    "decode_request never reads it from the wire payload",
                )
            )
        return findings

    def _check_client(
        self, project: Project, fields: List[str]
    ) -> List[Finding]:
        client = project.file(CLIENT)
        if client is None:
            return [_missing_finding(self.rule, CLIENT, "client module")]
        serve_client = astutils.find_class(client.tree, "ServeClient")
        if serve_client is None:
            return [_missing_finding(self.rule, CLIENT, "class ServeClient")]
        evaluate: Optional[ast.FunctionDef] = None
        for method in astutils.class_methods(serve_client):
            if method.name == "evaluate":
                evaluate = method
        if evaluate is None:
            return [
                _missing_finding(self.rule, CLIENT, "ServeClient.evaluate")
            ]
        covered = _function_params(evaluate) | astutils.dict_literal_keys(
            evaluate
        )
        return self._uncovered(
            client,
            evaluate.lineno,
            fields,
            covered,
            "ServeClient.evaluate neither takes it nor sends it",
        )

    def _check_session(
        self,
        project: Project,
        fields: List[str],
        properties: Dict[str, Set[str]],
    ) -> List[Finding]:
        session = project.file(SESSION)
        if session is None:
            return [_missing_finding(self.rule, SESSION, "session module")]
        session_class = astutils.find_class(session.tree, "Session")
        if session_class is None:
            return [_missing_finding(self.rule, SESSION, "class Session")]
        key_method: Optional[ast.FunctionDef] = None
        for method in astutils.class_methods(session_class):
            if method.name == "_coalesce_key":
                key_method = method
        if key_method is None:
            return [
                _missing_finding(
                    self.rule, SESSION, "Session._coalesce_key"
                )
            ]
        reads = _attribute_reads_of(key_method, "request")
        covered = expand_property_reads(reads, properties)
        return self._uncovered(
            session,
            key_method.lineno,
            fields,
            covered,
            "Session._coalesce_key never reads it (requests differing in "
            "it would coalesce onto one engine pass)",
        )

    # ------------------------------------------------------------------
    def _uncovered(
        self,
        source: SourceFile,
        line: int,
        fields: List[str],
        covered: Set[str],
        consequence: str,
    ) -> List[Finding]:
        return [
            Finding(
                path=source.path,
                line=line,
                rule=self.rule,
                message=(
                    f"EvalRequest field {name!r} is not synced: "
                    f"{consequence}"
                ),
            )
            for name in fields
            if name not in covered
        ]


register_checker(ReqSyncChecker())
