"""CAP-EXHAUSTIVE — backend-gated request features are capability-gated.

A request feature only some backends can serve (a *backend-gated*
field: chip-only like ``router_delay``, board-only like ``link_delay``)
must be impossible to lose silently.  Gated fields are *derived*, not
listed: they are exactly the ``EvalRequest`` fields read by the gating
properties in :data:`GATING_PROPERTIES` (``needs_cycle_accuracy`` for
the cycle-accurate backends, ``needs_board_mesh`` for the multi-chip
board — version 3 extends the derivation to board-only fields).  For
each one this rule requires, across the protocol / backends / session
modules:

* ``_check_capabilities`` contains a guard whose test reads the field
  (directly or through a gating property) *and* consults some
  ``caps.<capability>``, and whose body raises
  ``UnsupportedRequestError`` — the no-silent-fallback rule, enforced;
* every ``caps.<capability>`` such a guard consults is a declared
  ``BackendCapabilities`` field (a typo'd capability read would be
  ``True``-ish never, i.e. a guard that never fires);
* ``Session.select_backend`` consults the field (directly or through a
  gating property) — ``backend="auto"`` must route the request to a
  backend that can serve it rather than letting validation reject it
  later;
* ``Session._coalesce_key`` reads the field — the coalescer folds
  same-key requests onto one union engine pass, so a gated field
  missing from the key would group requests that differ in it and serve
  all but one of them a silently wrong result (version 2: this clause
  covers the chip's grid passes, where coalescing is now the common
  case rather than an identical-request dedup).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.analysis import astutils
from repro.analysis.checkers.req_sync import (
    _attribute_reads_of,
    expand_property_reads,
)
from repro.analysis.findings import Finding
from repro.analysis.framework import ProjectChecker, register_checker
from repro.analysis.project import Project

PROTOCOL = "src/repro/api/protocol.py"
BACKENDS = "src/repro/api/backends.py"
SESSION = "src/repro/api/session.py"

#: The properties whose reads define the backend-gated field set.
GATING_PROPERTIES = ("needs_cycle_accuracy", "needs_board_mesh")


class _Guard:
    """One ``if`` of ``_check_capabilities``: what it reads, what it does."""

    def __init__(self, node: ast.If, raises: bool) -> None:
        self.line = node.lineno
        self.request_reads: Set[str] = set()
        self.caps_reads: Set[str] = set()
        for child in ast.walk(node.test):
            if isinstance(child, ast.Attribute) and isinstance(
                child.value, ast.Name
            ):
                if child.value.id == "request":
                    self.request_reads.add(child.attr)
                elif child.value.id == "caps":
                    self.caps_reads.add(child.attr)
        self.raises = raises


def _raises_unsupported(node: ast.If) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Raise) and child.exc is not None:
            spelled = astutils.dotted_name(
                child.exc.func if isinstance(child.exc, ast.Call) else child.exc
            )
            if spelled is not None and spelled.endswith(
                "UnsupportedRequestError"
            ):
                return True
    return False


class CapExhaustiveChecker(ProjectChecker):
    rule = "CAP-EXHAUSTIVE"
    description = (
        "every backend-gated EvalRequest field has a BackendCapabilities-"
        "consulting guard that raises UnsupportedRequestError, and the "
        "Session auto-selector and request coalescer consult it"
    )
    version = 3
    dependencies = (PROTOCOL, BACKENDS, SESSION)

    def check(self, project: Project) -> List[Finding]:
        protocol = project.file(PROTOCOL)
        if protocol is None:
            return [self._missing(PROTOCOL, 1, "protocol module")]
        request_class = astutils.find_class(protocol.tree, "EvalRequest")
        caps_class = astutils.find_class(protocol.tree, "BackendCapabilities")
        if request_class is None or caps_class is None:
            return [
                self._missing(
                    PROTOCOL, 1, "EvalRequest / BackendCapabilities classes"
                )
            ]
        properties = astutils.property_reads(request_class)
        absent = [
            name for name in GATING_PROPERTIES if name not in properties
        ]
        if absent:
            return [
                self._missing(
                    PROTOCOL,
                    request_class.lineno,
                    f"EvalRequest.{name} property (defines part of the "
                    "backend-gated field set)",
                )
                for name in absent
            ]
        gated_reads: Set[str] = set()
        for name in GATING_PROPERTIES:
            gated_reads |= expand_property_reads(
                set(properties[name]), properties
            )
        chip_only = sorted(
            gated_reads & set(astutils.dataclass_field_names(request_class))
        )
        caps_fields = set(astutils.dataclass_field_names(caps_class))

        findings: List[Finding] = []
        findings.extend(
            self._check_backends(project, chip_only, caps_fields, properties)
        )
        findings.extend(self._check_session(project, chip_only, properties))
        findings.extend(self._check_coalescer(project, chip_only, properties))
        return findings

    # ------------------------------------------------------------------
    def _check_backends(
        self,
        project: Project,
        chip_only: List[str],
        caps_fields: Set[str],
        properties: Dict[str, Set[str]],
    ) -> List[Finding]:
        backends = project.file(BACKENDS)
        if backends is None:
            return [self._missing(BACKENDS, 1, "backends module")]
        validator = astutils.find_function(
            backends.tree, "_check_capabilities"
        )
        if validator is None:
            return [self._missing(BACKENDS, 1, "_check_capabilities")]
        guards = [
            _Guard(node, _raises_unsupported(node))
            for node in ast.walk(validator)
            if isinstance(node, ast.If)
        ]
        findings: List[Finding] = []
        for guard in guards:
            for capability in sorted(guard.caps_reads - caps_fields):
                findings.append(
                    Finding(
                        path=BACKENDS,
                        line=guard.line,
                        rule=self.rule,
                        message=(
                            f"guard consults caps.{capability}, which is "
                            "not a declared BackendCapabilities field "
                            "(the guard can never fire)"
                        ),
                    )
                )
        for field in chip_only:
            gated = any(
                guard.raises
                and guard.caps_reads & caps_fields
                and field
                in expand_property_reads(guard.request_reads, properties)
                for guard in guards
            )
            if not gated:
                findings.append(
                    Finding(
                        path=BACKENDS,
                        line=validator.lineno,
                        rule=self.rule,
                        message=(
                            f"backend-gated field {field!r} has no "
                            "_check_capabilities guard consulting a "
                            "BackendCapabilities field and raising "
                            "UnsupportedRequestError — an incapable "
                            "backend would serve it silently wrong"
                        ),
                    )
                )
        return findings

    def _check_session(
        self,
        project: Project,
        chip_only: List[str],
        properties: Dict[str, Set[str]],
    ) -> List[Finding]:
        session = project.file(SESSION)
        if session is None:
            return [self._missing(SESSION, 1, "session module")]
        session_class = astutils.find_class(session.tree, "Session")
        if session_class is None:
            return [self._missing(SESSION, 1, "class Session")]
        selector: Optional[ast.FunctionDef] = None
        for method in astutils.class_methods(session_class):
            if method.name == "select_backend":
                selector = method
        if selector is None:
            return [self._missing(SESSION, 1, "Session.select_backend")]
        covered = expand_property_reads(
            _attribute_reads_of(selector, "request"), properties
        )
        return [
            Finding(
                path=SESSION,
                line=selector.lineno,
                rule=self.rule,
                message=(
                    f"backend-gated field {field!r} is invisible to "
                    "Session.select_backend — backend='auto' would route "
                    "the request to a backend that must reject it"
                ),
            )
            for field in chip_only
            if field not in covered
        ]

    def _check_coalescer(
        self,
        project: Project,
        chip_only: List[str],
        properties: Dict[str, Set[str]],
    ) -> List[Finding]:
        """Every chip-only field must be part of the coalescing key.

        ``Session.flush`` folds requests with equal ``_coalesce_key`` onto
        one union engine pass and slices the result per member.  Two
        requests differing in a gated field (say ``router_delay``)
        produce different chip dynamics, so a key that omits the field
        would hand one of them the other's result — the silent-wrong
        failure this rule exists to prevent, one layer up from backend
        validation.
        """
        session = project.file(SESSION)
        if session is None:
            return [self._missing(SESSION, 1, "session module")]
        session_class = astutils.find_class(session.tree, "Session")
        if session_class is None:
            return [self._missing(SESSION, 1, "class Session")]
        coalescer: Optional[ast.FunctionDef] = None
        for method in astutils.class_methods(session_class):
            if method.name == "_coalesce_key":
                coalescer = method
        if coalescer is None:
            return [self._missing(SESSION, 1, "Session._coalesce_key")]
        covered = expand_property_reads(
            _attribute_reads_of(coalescer, "request"), properties
        )
        return [
            Finding(
                path=SESSION,
                line=coalescer.lineno,
                rule=self.rule,
                message=(
                    f"backend-gated field {field!r} is missing from "
                    "Session._coalesce_key — requests differing in it "
                    "would coalesce onto one engine pass and all but one "
                    "would receive a silently wrong result"
                ),
            )
            for field in chip_only
            if field not in covered
        ]

    # ------------------------------------------------------------------
    def _missing(self, path: str, line: int, name: str) -> Finding:
        return Finding(
            path=path,
            line=line,
            rule=self.rule,
            message=f"cannot check capability exhaustiveness: {name} not found",
        )


register_checker(CapExhaustiveChecker())
