"""The six project rules replint ships.

Importing this package registers every checker into the
:mod:`repro.analysis.framework` registry.  Each module owns one rule and
documents the invariant it encodes plus the incident or review-memory gap
that motivated it.
"""

from __future__ import annotations

from repro.analysis.checkers.cap_exhaustive import CapExhaustiveChecker
from repro.analysis.checkers.dtype_explicit import DtypeExplicitChecker
from repro.analysis.checkers.frozen_mut import FrozenMutChecker
from repro.analysis.checkers.lock_guard import LockGuardChecker
from repro.analysis.checkers.req_sync import ReqSyncChecker
from repro.analysis.checkers.rng_seed import RngSeedChecker

__all__ = [
    "CapExhaustiveChecker",
    "DtypeExplicitChecker",
    "FrozenMutChecker",
    "LockGuardChecker",
    "ReqSyncChecker",
    "RngSeedChecker",
]
