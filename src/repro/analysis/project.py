"""The analyzed tree: lazily parsed source files addressed by relative path.

Checkers never touch the filesystem directly; they see
:class:`SourceFile` objects (text + parsed AST + content hash) handed out by
one :class:`Project`.  Cross-module checkers address the files they need by
*repo-root-relative path* (``src/repro/api/protocol.py``), which is what
lets the fixture tests run the same checkers against miniature trees laid
out under a temporary root.
"""

from __future__ import annotations

import ast
import hashlib
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence


class SourceParseError(Exception):
    """A file under analysis does not parse as Python."""

    def __init__(self, path: str, error: SyntaxError) -> None:
        super().__init__(f"{path}:{error.lineno or 0}: {error.msg}")
        self.path = path
        self.line = int(error.lineno or 0)


class SourceFile:
    """One parsed Python source file.

    Attributes:
        path: repo-root-relative POSIX path (the anchor findings carry).
        text: full source text.
    """

    def __init__(self, path: str, text: str) -> None:
        self.path = path
        self.text = text
        self._tree: Optional[ast.Module] = None
        self._digest: Optional[str] = None

    @property
    def tree(self) -> ast.Module:
        """The parsed module (raises :class:`SourceParseError` once, lazily)."""
        if self._tree is None:
            try:
                self._tree = ast.parse(self.text, filename=self.path)
            except SyntaxError as error:
                raise SourceParseError(self.path, error) from error
        return self._tree

    @property
    def digest(self) -> str:
        """Content hash keying the per-file finding cache."""
        if self._digest is None:
            self._digest = hashlib.sha256(self.text.encode("utf-8")).hexdigest()
        return self._digest

    def lines(self) -> List[str]:
        return self.text.splitlines()


class Project:
    """A root directory plus the set of files selected for analysis.

    Args:
        root: the repository root all relative paths are resolved against.
        paths: files or directories (relative to ``root`` or absolute)
            selecting which ``*.py`` files the file-scoped checkers scan.
            Cross-module checkers are not limited by the selection — they
            pull the specific files their invariant spans via :meth:`file`.
    """

    def __init__(self, root: Path, paths: Sequence[str] = ("src",)):
        self.root = Path(root).resolve()
        self.paths = tuple(paths)
        self._files: Dict[str, Optional[SourceFile]] = {}
        self._selected: Optional[List[str]] = None

    # ------------------------------------------------------------------
    def _relative(self, path: Path) -> str:
        return path.resolve().relative_to(self.root).as_posix()

    def selected_files(self) -> List[str]:
        """Relative paths of every ``*.py`` file under the selected paths."""
        if self._selected is None:
            found: List[str] = []
            for entry in self.paths:
                base = Path(entry)
                if not base.is_absolute():
                    base = self.root / base
                if base.is_file() and base.suffix == ".py":
                    found.append(self._relative(base))
                elif base.is_dir():
                    found.extend(
                        self._relative(candidate)
                        for candidate in sorted(base.rglob("*.py"))
                    )
            self._selected = sorted(set(found))
        return list(self._selected)

    def file(self, relpath: str) -> Optional[SourceFile]:
        """The parsed file at ``relpath``, or ``None`` when absent.

        Cross-module checkers treat an absent file as "invariant target does
        not exist here" and emit a finding for it — an analysis run must not
        crash because a fixture tree (or a refactor) moved a module.
        """
        if relpath not in self._files:
            absolute = self.root / relpath
            if absolute.is_file():
                self._files[relpath] = SourceFile(
                    relpath, absolute.read_text(encoding="utf-8")
                )
            else:
                self._files[relpath] = None
        return self._files[relpath]

    def files(self, relpaths: Iterable[str]) -> List[SourceFile]:
        """The existing files among ``relpaths`` (order preserved)."""
        found = (self.file(relpath) for relpath in relpaths)
        return [item for item in found if item is not None]
