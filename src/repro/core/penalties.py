"""Weight penalties (Eq. 16-17 of the paper).

Training minimizes ``E_hat(w) = E_D(w) + lambda * E_W(w)`` where ``E_D`` is
the data loss and ``E_W`` one of the penalties below.  The paper compares

* no penalty (Tea learning baseline),
* the L1 norm ``sum_k |w_k|`` — sparsifies but concentrates probability mass
  near p = 0 *and* leaves mass near the worst point p = 0.5,
* the proposed biasing penalty ``sum_k | |w_k - a| - b |`` which is an L1
  norm on the transformed variable ``s = |w - a| - b`` and therefore pulls
  every weight toward the two poles ``a - b`` and ``a + b``.  With
  ``a = b = 0.5`` (probabilities in [0, 1]) the poles are exactly the
  deterministic states p = 0 and p = 1 and the worst-variance point p = 0.5
  receives the largest penalty.

All penalties implement the :class:`repro.nn.regularizers.Regularizer`
protocol so they plug directly into the trainer.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.nn.regularizers import Regularizer


class Penalty(Regularizer):
    """Base class for scalar weight penalties with analytic subgradients."""

    def penalty_value(self, weights: np.ndarray) -> float:
        """Penalty contributed by one weight array."""
        raise NotImplementedError

    def penalty_gradient(self, weights: np.ndarray) -> np.ndarray:
        """(Sub)gradient of the penalty w.r.t. one weight array."""
        raise NotImplementedError

    # Regularizer protocol -------------------------------------------------
    def penalty(self, params: Dict[str, np.ndarray]) -> float:
        return float(sum(self.penalty_value(array) for array in params.values()))

    def gradient(self, params: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        return {name: self.penalty_gradient(array) for name, array in params.items()}


class L2Penalty(Penalty):
    """Standard weight decay ``0.5 * sum w^2``."""

    def penalty_value(self, weights: np.ndarray) -> float:
        return 0.5 * float(np.sum(np.square(weights)))

    def penalty_gradient(self, weights: np.ndarray) -> np.ndarray:
        return np.asarray(weights, dtype=float)


class L1Penalty(Penalty):
    """L1 norm ``sum |w|`` — biases weights toward zero (sparsity)."""

    def penalty_value(self, weights: np.ndarray) -> float:
        return float(np.sum(np.abs(weights)))

    def penalty_gradient(self, weights: np.ndarray) -> np.ndarray:
        return np.sign(np.asarray(weights, dtype=float))


class BiasingPenalty(Penalty):
    """The paper's probability-biasing penalty ``sum_k | |w_k - a| - b |``.

    Args:
        centroid: ``a`` — the point the penalty biases *away from* (the
            worst-variance probability).  Default 0.5.
        half_width: ``b`` — the distance from the centroid to the two poles
            the penalty pulls weights *toward* (``a - b`` and ``a + b``).
            Default 0.5, placing the poles at 0 and 1.
    """

    def __init__(self, centroid: float = 0.5, half_width: float = 0.5):
        if half_width <= 0:
            raise ValueError(f"half_width must be positive, got {half_width}")
        self.centroid = float(centroid)
        self.half_width = float(half_width)

    @property
    def poles(self) -> Tuple[float, float]:
        """The two attractor values ``(a - b, a + b)``."""
        return (self.centroid - self.half_width, self.centroid + self.half_width)

    def penalty_value(self, weights: np.ndarray) -> float:
        weights = np.asarray(weights, dtype=float)
        return float(np.sum(np.abs(np.abs(weights - self.centroid) - self.half_width)))

    def penalty_gradient(self, weights: np.ndarray) -> np.ndarray:
        weights = np.asarray(weights, dtype=float)
        inner = weights - self.centroid
        outer = np.abs(inner) - self.half_width
        # d/dw | |w - a| - b | = sign(|w - a| - b) * sign(w - a)
        return np.sign(outer) * np.sign(inner)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BiasingPenalty(centroid={self.centroid}, half_width={self.half_width})"


class ProbabilitySpacePenalty(Penalty):
    """Apply a penalty to connectivity probabilities rather than raw weights.

    The paper's networks carry signed weights ``w`` with ``|w| <= c``; the
    deployed connectivity probability is ``p = |w| / c`` (Eq. 7).  Wrapping a
    penalty in this adapter makes it act on ``p`` while still producing
    gradients with respect to ``w`` through the chain rule
    ``dE/dw = (dE/dp) * sign(w) / c``.  This is how the biasing penalty is
    used in practice: it pulls ``p`` toward 0 or 1 without collapsing the sign
    structure of the weights.
    """

    def __init__(self, inner: Penalty, synaptic_value: float = 1.0):
        if synaptic_value <= 0:
            raise ValueError(f"synaptic_value must be positive, got {synaptic_value}")
        self.inner = inner
        self.synaptic_value = float(synaptic_value)

    def penalty_value(self, weights: np.ndarray) -> float:
        probabilities = np.abs(np.asarray(weights, dtype=float)) / self.synaptic_value
        return self.inner.penalty_value(probabilities)

    def penalty_gradient(self, weights: np.ndarray) -> np.ndarray:
        weights = np.asarray(weights, dtype=float)
        probabilities = np.abs(weights) / self.synaptic_value
        inner_grad = self.inner.penalty_gradient(probabilities)
        return inner_grad * np.sign(weights) / self.synaptic_value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProbabilitySpacePenalty({self.inner!r}, "
            f"synaptic_value={self.synaptic_value})"
        )


# ----------------------------------------------------------------------
# Histogram / distribution diagnostics used by Figure 5 and Section 3.3
# ----------------------------------------------------------------------
def penalty_histogram(
    weights: np.ndarray, bins: int = 20, value_range: Tuple[float, float] = (0.0, 1.0)
) -> Tuple[np.ndarray, np.ndarray]:
    """Histogram of connectivity probabilities (Figure 5).

    Returns (counts, bin_edges) with ``bins`` equal-width bins over
    ``value_range``.
    """
    weights = np.asarray(weights, dtype=float).ravel()
    if bins <= 0:
        raise ValueError(f"bins must be positive, got {bins}")
    counts, edges = np.histogram(weights, bins=bins, range=value_range)
    return counts, edges


def zero_fraction(weights: np.ndarray, tolerance: float = 1e-3) -> float:
    """Fraction of weights within ``tolerance`` of zero (Section 3.3 sparsity)."""
    weights = np.asarray(weights, dtype=float).ravel()
    if weights.size == 0:
        raise ValueError("cannot compute zero fraction of an empty array")
    return float(np.mean(np.abs(weights) <= tolerance))


def pole_fraction(
    probabilities: np.ndarray,
    poles: Tuple[float, float] = (0.0, 1.0),
    tolerance: float = 0.05,
) -> float:
    """Fraction of probabilities within ``tolerance`` of either pole.

    The paper's Figure 5(c) claim is that after biasing-penalty training
    "almost all" connectivity probabilities sit at the deterministic states;
    this is the scalar that quantifies it.
    """
    probabilities = np.asarray(probabilities, dtype=float).ravel()
    if probabilities.size == 0:
        raise ValueError("cannot compute pole fraction of an empty array")
    near_low = np.abs(probabilities - poles[0]) <= tolerance
    near_high = np.abs(probabilities - poles[1]) <= tolerance
    return float(np.mean(near_low | near_high))


def centroid_fraction(
    probabilities: np.ndarray, centroid: float = 0.5, tolerance: float = 0.15
) -> float:
    """Fraction of probabilities within ``tolerance`` of the worst point."""
    probabilities = np.asarray(probabilities, dtype=float).ravel()
    if probabilities.size == 0:
        raise ValueError("cannot compute centroid fraction of an empty array")
    return float(np.mean(np.abs(probabilities - centroid) <= tolerance))
