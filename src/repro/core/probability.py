"""Weight <-> connectivity-probability mapping (Eqs. 6-7).

A TrueNorth synapse is ON with Bernoulli probability ``p_i`` and, when ON,
carries the integer weight ``c_i`` chosen by the axon type.  To make the
expected deployed weight equal the trained real-valued weight ``w_i`` the
deployment sets ``p_i = w_i / c_i`` (Eq. 7).  Negative weights use a negative
``c_i`` (a different axon type), so the probability is always ``|w_i| / |c_i|``
with the sign carried by the synaptic value.

This module centralizes that mapping, including the clipping of weights whose
magnitude exceeds ``|c_i|`` (which cannot be represented by any probability).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class ProbabilityMapping:
    """Result of converting a weight matrix to deployment parameters.

    Attributes:
        probabilities: Bernoulli ON probability per connection, in [0, 1].
        synaptic_values: signed synaptic value per connection (``+c`` for
            positive weights, ``-c`` for negative ones, 0 where the weight is
            exactly zero).
        clipped_fraction: fraction of weights whose magnitude exceeded the
            synaptic value and had to be clipped to probability 1.
    """

    probabilities: np.ndarray
    synaptic_values: np.ndarray
    clipped_fraction: float


def weights_to_probabilities(
    weights: np.ndarray, synaptic_value: float = 1.0
) -> ProbabilityMapping:
    """Convert real-valued weights into (probability, signed value) pairs.

    Args:
        weights: trained real-valued weights of any shape.
        synaptic_value: magnitude ``c`` of the integer synaptic weight used
            when a connection is ON.

    Returns:
        a :class:`ProbabilityMapping`; ``probabilities * synaptic_values``
        reconstructs the representable part of ``weights`` exactly.
    """
    if synaptic_value <= 0:
        raise ValueError(f"synaptic_value must be positive, got {synaptic_value}")
    weights = np.asarray(weights, dtype=float)
    magnitudes = np.abs(weights) / synaptic_value
    clipped_fraction = float(np.mean(magnitudes > 1.0)) if weights.size else 0.0
    probabilities = np.clip(magnitudes, 0.0, 1.0)
    synaptic_values = np.sign(weights) * synaptic_value
    return ProbabilityMapping(
        probabilities=probabilities,
        synaptic_values=synaptic_values,
        clipped_fraction=clipped_fraction,
    )


def probabilities_to_weights(
    probabilities: np.ndarray, synaptic_values: np.ndarray
) -> np.ndarray:
    """Inverse of :func:`weights_to_probabilities`: expected deployed weight."""
    probabilities = np.asarray(probabilities, dtype=float)
    synaptic_values = np.asarray(synaptic_values, dtype=float)
    if probabilities.shape != synaptic_values.shape:
        raise ValueError(
            f"shape mismatch: {probabilities.shape} vs {synaptic_values.shape}"
        )
    if probabilities.size and (
        probabilities.min() < 0.0 or probabilities.max() > 1.0
    ):
        raise ValueError("probabilities must lie in [0, 1]")
    return probabilities * synaptic_values


def clip_weights_to_probability_range(
    weights: np.ndarray, synaptic_value: float = 1.0
) -> np.ndarray:
    """Clamp weights into the representable range ``[-c, +c]``.

    Used during constrained training so that every weight corresponds to a
    valid connection probability at deployment time.
    """
    if synaptic_value <= 0:
        raise ValueError(f"synaptic_value must be positive, got {synaptic_value}")
    return np.clip(np.asarray(weights, dtype=float), -synaptic_value, synaptic_value)


def split_excitatory_inhibitory(
    weights: np.ndarray, synaptic_value: float = 1.0
) -> Tuple[np.ndarray, np.ndarray]:
    """Split a signed weight matrix into excitatory and inhibitory probabilities.

    On the chip a signed fractional weight is realized by assigning the axon
    an excitatory type (value ``+c``) when the weight is positive and an
    inhibitory type (value ``-c``) when negative.  This helper returns the two
    probability matrices (one of which is zero at every position).
    """
    mapping = weights_to_probabilities(weights, synaptic_value)
    positive = np.where(mapping.synaptic_values > 0, mapping.probabilities, 0.0)
    negative = np.where(mapping.synaptic_values < 0, mapping.probabilities, 0.0)
    return positive, negative
