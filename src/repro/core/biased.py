"""Probability-biased learning — the paper's proposed method (Section 3.3).

The method is Tea learning plus the biasing penalty of Eq. (17) applied to the
connectivity probabilities: training minimizes

    E_hat(w) = E_D(w) + lambda * sum_k | |p_k - a| - b |,   p_k = |w_k| / c,

with ``a = b = 0.5`` by default so the penalty is zero at the deterministic
poles p = 0 / p = 1 and maximal at the worst-variance point p = 0.5.  A model
trained this way deploys with almost all synapses deterministic, which
collapses the sampling variance (Eq. 15) and therefore needs far fewer
spatial/temporal copies for the same accuracy.

An :class:`L1Learning` variant is also provided because the paper uses plain
L1 as a second baseline (it sparsifies but does *not* reduce variance —
Figure 5(b)).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.penalties import BiasingPenalty, L1Penalty, ProbabilitySpacePenalty
from repro.core.tea import TeaLearning
from repro.nn.regularizers import Regularizer


@dataclass
class ProbabilityBiasedLearning(TeaLearning):
    """Tea learning augmented with the probability-biasing penalty.

    Args:
        penalty_weight: regularization coefficient lambda of Eq. (16).
        centroid: ``a`` of Eq. (17); defaults to 0.5.
        half_width: ``b`` of Eq. (17); defaults to 0.5 (poles at 0 and 1).
        (remaining arguments inherited from :class:`TeaLearning`)
    """

    penalty_weight: float = 0.0002
    centroid: float = 0.5
    half_width: float = 0.5
    penalty_warmup_fraction: float = 0.4
    method_name: str = "biased"

    def __post_init__(self):
        if self.penalty_weight < 0:
            raise ValueError(
                f"penalty_weight must be non-negative, got {self.penalty_weight}"
            )

    def regularizer(self) -> Regularizer:
        """The biasing penalty, applied in connectivity-probability space."""
        return ProbabilitySpacePenalty(
            BiasingPenalty(centroid=self.centroid, half_width=self.half_width),
            synaptic_value=1.0,
        )

    def penalty_coefficient(self) -> float:
        return self.penalty_weight


@dataclass
class L1Learning(TeaLearning):
    """Tea learning augmented with a plain L1 penalty (paper's second baseline).

    L1 zeroes out a large fraction of weights (Section 3.3 reports 88.47%,
    83.23% and 29.6% per layer on a LeNet-300-100 style MLP) but pushes the
    probability histogram away from the p = 1 pole, so the deployed accuracy
    does not improve — that contrast motivates the biasing penalty.
    """

    penalty_weight: float = 0.0005
    method_name: str = "l1"

    def __post_init__(self):
        if self.penalty_weight < 0:
            raise ValueError(
                f"penalty_weight must be non-negative, got {self.penalty_weight}"
            )

    def regularizer(self) -> Regularizer:
        return ProbabilitySpacePenalty(L1Penalty(), synaptic_value=1.0)

    def penalty_coefficient(self) -> float:
        return self.penalty_weight
