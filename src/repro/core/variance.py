"""Deployment-variance analysis (Eqs. 9-15 of the paper).

The deployed pre-activation is ``y' = sum_i w'_i x'_i`` where the synaptic
weights ``w'_i`` are Bernoulli(p_i)-gated values ``c_i`` and the input spikes
``x'_i`` are Bernoulli(x_i).  This module provides closed-form expressions
for:

* the per-synapse weight variance ``var{w'_i} = c_i^2 p_i (1 - p_i)``
  (Eq. 15), which the biasing penalty minimizes,
* the mean and variance of the weighted-input sum ``y'`` (used by the erf
  activation of Eq. 11 and by the analysis tests),
* the variance of the deviation ``Δy = y' - y`` (Eq. 14),
* the neuron firing probability (Eq. 11).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np
from scipy.special import erf  # type: ignore[import-untyped]


def synaptic_variance(probabilities: np.ndarray, synaptic_values: np.ndarray) -> np.ndarray:
    """Per-synapse variance ``c^2 p (1 - p)`` (Eq. 15)."""
    probabilities = np.asarray(probabilities, dtype=float)
    synaptic_values = np.asarray(synaptic_values, dtype=float)
    if probabilities.size and (
        probabilities.min() < 0.0 or probabilities.max() > 1.0
    ):
        raise ValueError("probabilities must lie in [0, 1]")
    return synaptic_values**2 * probabilities * (1.0 - probabilities)


@dataclass(frozen=True)
class SumStatistics:
    """Mean and variance of the weighted-input sum ``y'`` for one neuron."""

    mean: float
    variance: float

    @property
    def std(self) -> float:
        """Standard deviation of ``y'``."""
        return math.sqrt(max(self.variance, 0.0))


def presynaptic_sum_statistics(
    probabilities: np.ndarray,
    synaptic_values: np.ndarray,
    spike_probabilities: np.ndarray,
) -> SumStatistics:
    """Mean and variance of ``y' = sum_i w'_i x'_i`` for one neuron.

    With ``w'_i = c_i * Bernoulli(p_i)`` and ``x'_i = Bernoulli(x_i)``
    independent,

        E[w'_i x'_i]   = c_i p_i x_i
        E[(w'_i x'_i)^2] = c_i^2 p_i x_i
        var[w'_i x'_i] = c_i^2 p_i x_i (1 - p_i x_i)

    and the terms are independent across ``i`` so the variance of the sum is
    the sum of the variances (Eq. 14 applied to ``y'`` itself).
    """
    probabilities = np.asarray(probabilities, dtype=float).ravel()
    synaptic_values = np.asarray(synaptic_values, dtype=float).ravel()
    spike_probabilities = np.asarray(spike_probabilities, dtype=float).ravel()
    if not (
        probabilities.shape == synaptic_values.shape == spike_probabilities.shape
    ):
        raise ValueError("probabilities, synaptic_values, spike_probabilities must match")
    if probabilities.size and (
        probabilities.min() < 0.0
        or probabilities.max() > 1.0
        or spike_probabilities.min() < 0.0
        or spike_probabilities.max() > 1.0
    ):
        raise ValueError("probabilities and spike_probabilities must lie in [0, 1]")
    joint = probabilities * spike_probabilities
    mean = float(np.sum(synaptic_values * joint))
    variance = float(np.sum(synaptic_values**2 * joint * (1.0 - joint)))
    return SumStatistics(mean=mean, variance=variance)


def deviation_variance(
    probabilities: np.ndarray,
    synaptic_values: np.ndarray,
    spike_probabilities: np.ndarray,
) -> float:
    """Variance of the deviation ``Δy = y' - y`` (Eq. 14).

    ``y`` is deterministic given the trained weights, so
    ``var{Δy} = var{y'}``; the function exists to mirror the paper's notation
    and is used by the analysis tests and the ablation benchmarks.
    """
    return presynaptic_sum_statistics(
        probabilities, synaptic_values, spike_probabilities
    ).variance


def firing_probability(mean: float, std: float, threshold: float = 0.0) -> float:
    """Probability that the neuron spikes, ``P(y' >= threshold)`` (Eq. 11).

    Uses the Gaussian approximation of ``y'`` justified by the central limit
    theorem.  When ``std`` is zero the result degenerates to a step function.
    """
    if std < 0:
        raise ValueError(f"std must be non-negative, got {std}")
    if std == 0.0:
        return 1.0 if mean >= threshold else 0.0
    z = (threshold - mean) / (math.sqrt(2.0) * std)
    return float(1.0 - 0.5 * (1.0 + erf(z)))


def worst_case_probability() -> Tuple[float, float]:
    """Return (p, variance_factor) of the worst-variance connection.

    The per-synapse variance ``c^2 p (1-p)`` is maximized at p = 0.5 with
    value ``0.25 c^2``; returned as a named helper because several benchmarks
    report distance-from-worst-case statistics.
    """
    return 0.5, 0.25


def mean_synaptic_variance(
    probabilities: np.ndarray, synaptic_values: np.ndarray
) -> float:
    """Average per-synapse variance across a weight matrix.

    This is the scalar the biasing penalty drives toward zero; the ablation
    benchmarks report it for Tea, L1, and biased models.
    """
    variances = synaptic_variance(probabilities, synaptic_values)
    if variances.size == 0:
        raise ValueError("cannot average an empty variance array")
    return float(variances.mean())
