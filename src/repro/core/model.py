"""Network architecture and deployable model description.

Two objects connect training and deployment:

* :class:`NetworkArchitecture` — the structural description of a TrueNorth
  network (which pixels feed which core, how many neurons per core, how many
  hidden layers, how outputs merge into classes).  It validates the crossbar
  constraints (at most 256 axons and 256 neurons per core) and can build the
  matching trainable :class:`repro.nn.network.Sequential`.
* :class:`TrueNorthModel` — the trained, deployable model: the architecture
  plus the trained real-valued weight matrices of every block.  The mapping
  layer (:mod:`repro.mapping.deploy`) consumes this to sample crossbar
  connectivities or program the chip simulator; the evaluation layer uses it
  to measure deployed accuracy under different duplication levels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.nn.activations import TrueNorthErf
from repro.nn.layers import BlockDense, FixedDense, Gather
from repro.nn.network import Sequential
from repro.truenorth import constants
from repro.utils.rng import RngLike, new_rng


@dataclass(frozen=True)
class LayerSpec:
    """One hidden layer of neuro-synaptic cores.

    Attributes:
        input_indices: for the first layer, the flat input-feature indices
            wired into each core (one array per core; arrays may overlap when
            the block stride is smaller than the block size).  For deeper
            layers this is ``None`` and the previous layer's outputs are
            partitioned contiguously across ``core_count`` cores.
        core_count: number of cores this layer occupies.
        neurons_per_core: output neurons used in each core (<= 256).
    """

    core_count: int
    neurons_per_core: int
    input_indices: Optional[Tuple[Tuple[int, ...], ...]] = None

    def __post_init__(self):
        if self.core_count <= 0:
            raise ValueError(f"core_count must be positive, got {self.core_count}")
        if not (0 < self.neurons_per_core <= constants.NEURONS_PER_CORE):
            raise ValueError(
                f"neurons_per_core must be in (0, {constants.NEURONS_PER_CORE}], "
                f"got {self.neurons_per_core}"
            )
        if self.input_indices is not None:
            if len(self.input_indices) != self.core_count:
                raise ValueError(
                    f"input_indices has {len(self.input_indices)} blocks but "
                    f"core_count is {self.core_count}"
                )
            for block in self.input_indices:
                if not (0 < len(block) <= constants.AXONS_PER_CORE):
                    raise ValueError(
                        f"each input block must have 1..{constants.AXONS_PER_CORE} "
                        f"entries, got {len(block)}"
                    )

    @property
    def output_dim(self) -> int:
        """Total outputs of the layer (core_count * neurons_per_core)."""
        return self.core_count * self.neurons_per_core


@dataclass(frozen=True)
class NetworkArchitecture:
    """Structure of a TrueNorth classification network.

    Attributes:
        input_dim: flat input feature count (e.g. 784 for 28x28 images).
        layers: hidden layer specifications, shallow to deep.  The first
            layer must carry explicit ``input_indices``.
        num_classes: number of output classes.
        synaptic_value: magnitude ``c`` of the integer synaptic weight; the
            trainable weights are constrained to ``[-c, +c]``.
        activation_sigma: smoothing constant of the erf activation (Eq. 11)
            used during training.
        weight_init_scale: multiplier applied to the Glorot initialization of
            the block weights (then clipped into ``[-c, +c]``).  Values above
            1 start training with connectivity probabilities spread over
            [0, 1] — the regime of the paper's Figure 5 histograms — instead
            of clustered near zero.
        name: label used in reports.
    """

    input_dim: int
    layers: Tuple[LayerSpec, ...]
    num_classes: int
    synaptic_value: float = 1.0
    activation_sigma: float = 1.0
    weight_init_scale: float = 1.0
    name: str = "truenorth-network"

    def __post_init__(self):
        if self.input_dim <= 0:
            raise ValueError(f"input_dim must be positive, got {self.input_dim}")
        if not self.layers:
            raise ValueError("at least one hidden layer is required")
        if self.num_classes <= 1:
            raise ValueError(f"num_classes must be > 1, got {self.num_classes}")
        if self.synaptic_value <= 0:
            raise ValueError("synaptic_value must be positive")
        if self.activation_sigma <= 0:
            raise ValueError("activation_sigma must be positive")
        if self.weight_init_scale <= 0:
            raise ValueError("weight_init_scale must be positive")
        first = self.layers[0]
        if first.input_indices is None:
            raise ValueError("the first layer must define input_indices")
        for block in first.input_indices:
            block_array = np.asarray(block, dtype=int)
            if block_array.min() < 0 or block_array.max() >= self.input_dim:
                raise ValueError(
                    "first-layer input indices must lie inside [0, input_dim)"
                )
        # Validate deeper layers: the contiguous partition of the previous
        # layer's outputs must fit in a core's axons.
        previous_dim = first.output_dim
        for depth, layer in enumerate(self.layers[1:], start=2):
            if layer.input_indices is not None:
                raise ValueError(
                    f"layer {depth} must not define input_indices (only layer 1 may)"
                )
            block_size = int(np.ceil(previous_dim / layer.core_count))
            if block_size > constants.AXONS_PER_CORE:
                raise ValueError(
                    f"layer {depth}: {previous_dim} inputs split over "
                    f"{layer.core_count} cores gives blocks of {block_size} axons, "
                    f"exceeding {constants.AXONS_PER_CORE}"
                )
            previous_dim = layer.output_dim
        if previous_dim < self.num_classes:
            raise ValueError(
                "the last hidden layer must have at least num_classes outputs"
            )

    # ------------------------------------------------------------------
    @property
    def cores_per_network(self) -> int:
        """Total neuro-synaptic cores occupied by one copy of the network."""
        return sum(layer.core_count for layer in self.layers)

    @property
    def cores_per_layer(self) -> Tuple[int, ...]:
        """Core count of each hidden layer (Table 3's "cores per layer")."""
        return tuple(layer.core_count for layer in self.layers)

    def layer_block_sizes(self, depth: int) -> List[int]:
        """Input-block sizes of the cores of layer ``depth`` (0-based)."""
        layer = self.layers[depth]
        if depth == 0:
            assert layer.input_indices is not None
            return [len(block) for block in layer.input_indices]
        previous_dim = self.layers[depth - 1].output_dim
        return split_sizes(previous_dim, layer.core_count)

    def class_assignment(self) -> np.ndarray:
        """Class label assigned to each output neuron of the last layer.

        Neurons are assigned round-robin so every class receives (nearly) the
        same number of readout neurons, mirroring the population-merge the
        paper describes ("output axons ... merged to 10 output classes").
        """
        output_dim = self.layers[-1].output_dim
        return np.arange(output_dim) % self.num_classes

    def merge_matrix(self) -> np.ndarray:
        """Fixed merge matrix from last-layer neurons to class scores.

        Entry ``(j, k)`` is ``1 / n_k`` when neuron ``j`` is assigned to class
        ``k`` (``n_k`` = neurons assigned to that class), else 0; class scores
        are therefore mean spiking probabilities, insensitive to how many
        readout neurons each class happens to receive.
        """
        assignment = self.class_assignment()
        matrix = np.zeros((assignment.size, self.num_classes))
        counts = np.bincount(assignment, minlength=self.num_classes).astype(float)
        matrix[np.arange(assignment.size), assignment] = 1.0 / counts[assignment]
        return matrix

    # ------------------------------------------------------------------
    def build_network(self, rng: RngLike = None) -> Sequential:
        """Construct the trainable network matching this architecture.

        The network is::

            Gather(first-layer pixel indices)
            BlockDense(first layer, erf activation, no bias)
            BlockDense(deeper layers, erf activation, no bias) ...
            FixedDense(merge matrix, identity)

        All trainable weights are initialized inside ``[-c, +c]``.
        """
        rng = new_rng(rng)
        layers_list = []
        first = self.layers[0]
        assert first.input_indices is not None
        flat_indices = np.concatenate(
            [np.asarray(block, dtype=int) for block in first.input_indices]
        )
        layers_list.append(Gather(flat_indices, input_dim=self.input_dim))
        activation = TrueNorthErf(sigma=self.activation_sigma)
        layers_list.append(
            BlockDense(
                block_sizes=[len(block) for block in first.input_indices],
                neurons_per_block=[first.neurons_per_core] * first.core_count,
                activation=activation,
                rng=rng,
                use_bias=False,
            )
        )
        previous_dim = first.output_dim
        for layer in self.layers[1:]:
            sizes = split_sizes(previous_dim, layer.core_count)
            layers_list.append(
                BlockDense(
                    block_sizes=sizes,
                    neurons_per_block=[layer.neurons_per_core] * layer.core_count,
                    activation=TrueNorthErf(sigma=self.activation_sigma),
                    rng=rng,
                    use_bias=False,
                )
            )
            previous_dim = layer.output_dim
        layers_list.append(FixedDense(self.merge_matrix()))
        network = Sequential(layers_list)
        # Spread the initial weights and clip into the representable [-c, +c].
        for array in network.penalized_params().values():
            array *= self.weight_init_scale
            np.clip(array, -self.synaptic_value, self.synaptic_value, out=array)
        return network


def split_sizes(total: int, parts: int) -> List[int]:
    """Split ``total`` items into ``parts`` contiguous groups as evenly as possible."""
    if total <= 0 or parts <= 0:
        raise ValueError("total and parts must be positive")
    if parts > total:
        raise ValueError(f"cannot split {total} items into {parts} non-empty parts")
    base = total // parts
    remainder = total % parts
    return [base + (1 if i < remainder else 0) for i in range(parts)]


@dataclass
class TrueNorthModel:
    """A trained network ready for deployment.

    Attributes:
        architecture: the structural description.
        block_weights: trained real-valued weight matrices, one list per
            hidden layer, one matrix per core of that layer; each matrix has
            shape (axons_used, neurons_per_core) and entries in
            ``[-synaptic_value, +synaptic_value]``.
        float_accuracy: test accuracy of the floating-point model (the "Caffe
            accuracy" of the paper), recorded by the learning method.
        metadata: free-form details recorded by the learning method (penalty
            type, coefficient, epochs, ...).
    """

    architecture: NetworkArchitecture
    block_weights: List[List[np.ndarray]]
    float_accuracy: float = float("nan")
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self):
        arch = self.architecture
        if len(self.block_weights) != len(arch.layers):
            raise ValueError(
                f"expected weights for {len(arch.layers)} layers, "
                f"got {len(self.block_weights)}"
            )
        for depth, (layer, matrices) in enumerate(zip(arch.layers, self.block_weights)):
            if len(matrices) != layer.core_count:
                raise ValueError(
                    f"layer {depth}: expected {layer.core_count} weight matrices, "
                    f"got {len(matrices)}"
                )
            sizes = arch.layer_block_sizes(depth)
            for core_index, matrix in enumerate(matrices):
                expected = (sizes[core_index], layer.neurons_per_core)
                if matrix.shape != expected:
                    raise ValueError(
                        f"layer {depth} core {core_index}: expected weight shape "
                        f"{expected}, got {matrix.shape}"
                    )

    # ------------------------------------------------------------------
    @classmethod
    def from_network(
        cls,
        architecture: NetworkArchitecture,
        network: Sequential,
        float_accuracy: float = float("nan"),
        metadata: Optional[Dict[str, object]] = None,
    ) -> "TrueNorthModel":
        """Extract the deployable weights from a trained Sequential network."""
        block_layers = [layer for layer in network.layers if isinstance(layer, BlockDense)]
        if len(block_layers) != len(architecture.layers):
            raise ValueError(
                f"network has {len(block_layers)} BlockDense layers but the "
                f"architecture defines {len(architecture.layers)}"
            )
        block_weights: List[List[np.ndarray]] = []
        for block_layer in block_layers:
            block_weights.append([block.weights.copy() for block in block_layer.blocks])
        return cls(
            architecture=architecture,
            block_weights=block_weights,
            float_accuracy=float_accuracy,
            metadata=dict(metadata or {}),
        )

    # ------------------------------------------------------------------
    @property
    def cores_per_copy(self) -> int:
        """Cores occupied by one copy of the deployed network."""
        return self.architecture.cores_per_network

    def all_probabilities(self) -> np.ndarray:
        """Flattened connectivity probabilities of every trained connection.

        This is the quantity whose histogram the paper plots in Figure 5.
        """
        value = self.architecture.synaptic_value
        chunks = [
            np.abs(matrix).ravel() / value
            for matrices in self.block_weights
            for matrix in matrices
        ]
        return np.clip(np.concatenate(chunks), 0.0, 1.0)

    def all_weights(self) -> np.ndarray:
        """Flattened signed weights of every trained connection."""
        return np.concatenate(
            [matrix.ravel() for matrices in self.block_weights for matrix in matrices]
        )

    def float_forward(self, features: np.ndarray) -> np.ndarray:
        """Evaluate the floating-point model (class scores) on a feature batch.

        This re-implements the forward pass directly from the stored block
        weights (rather than keeping the training network around), so the
        deployable artifact is self-contained.
        """
        features = np.asarray(features, dtype=float)
        arch = self.architecture
        activation = TrueNorthErf(sigma=arch.activation_sigma)
        current = features
        for depth, (layer, matrices) in enumerate(zip(arch.layers, self.block_weights)):
            outputs = []
            if depth == 0:
                assert layer.input_indices is not None
                blocks = [np.asarray(b, dtype=int) for b in layer.input_indices]
                for block, weights in zip(blocks, matrices):
                    outputs.append(activation.forward(current[:, block] @ weights))
            else:
                sizes = arch.layer_block_sizes(depth)
                offsets = np.cumsum([0] + sizes)
                for core_index, weights in enumerate(matrices):
                    lo, hi = offsets[core_index], offsets[core_index + 1]
                    outputs.append(activation.forward(current[:, lo:hi] @ weights))
            current = np.concatenate(outputs, axis=1)
        return current @ arch.merge_matrix()

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predicted class labels of the floating-point model."""
        return self.float_forward(features).argmax(axis=1)
