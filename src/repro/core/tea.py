"""Tea learning — the baseline training/deployment recipe of TrueNorth.

"Tea learning" is IBM's name for the standard procedure of Section 3.1:
train a network whose weights are interpreted as connectivity-probability-
scaled synaptic values (``w = p * c``, clipped into ``[-c, +c]``), using the
erf spiking-probability activation (Eq. 11), and then deploy by sampling each
synapse's connectivity from its Bernoulli probability.  No weight penalty is
applied — this is the reference point our probability-biased method is
compared against throughout the paper's evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.model import NetworkArchitecture, TrueNorthModel
from repro.datasets.base import DatasetSplits
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.metrics import accuracy_score
from repro.nn.optim import Adam, Optimizer
from repro.nn.regularizers import NullRegularizer, Regularizer
from repro.nn.trainer import Trainer, TrainingHistory
from repro.utils.rng import RngLike, new_rng


@dataclass
class LearningResult:
    """Output of a learning method.

    Attributes:
        model: the deployable trained model.
        history: per-epoch training metrics.
        float_accuracy: test accuracy of the floating-point model (the
            "accuracy in Caffe" column of Table 3).
        method: name of the learning method that produced the model.
        details: free-form extra information (penalty settings, epochs, ...).
    """

    model: TrueNorthModel
    history: TrainingHistory
    float_accuracy: float
    method: str
    details: Dict[str, object] = field(default_factory=dict)


@dataclass
class TeaLearning:
    """The baseline learning method (no penalty).

    Args:
        epochs: training epochs.
        batch_size: mini-batch size.
        learning_rate: Adam learning rate.
        logit_scale: multiplier applied to the merged class scores before the
            softmax loss; class scores are mean spiking probabilities in
            [0, 1], so a scale > 1 gives the softmax a usable dynamic range.
        penalty_warmup_fraction: fraction of the epochs trained *without* the
            weight penalty before it is switched on.  Penalized methods fit
            the data first and are then pulled toward the poles; the baseline
            (no penalty) is unaffected.
        seed: seed for weight initialization and batch shuffling.
    """

    epochs: int = 10
    batch_size: int = 32
    learning_rate: float = 0.01
    logit_scale: float = 10.0
    penalty_warmup_fraction: float = 0.5
    seed: int = 0
    method_name: str = "tea"

    # ------------------------------------------------------------------
    def regularizer(self) -> Regularizer:
        """Penalty added to the objective; the baseline uses none."""
        return NullRegularizer()

    def penalty_coefficient(self) -> float:
        """Weight of the penalty term (lambda in Eq. 16)."""
        return 0.0

    def make_optimizer(self) -> Optimizer:
        """Optimizer used for training."""
        return Adam(learning_rate=self.learning_rate)

    # ------------------------------------------------------------------
    def train(
        self,
        architecture: NetworkArchitecture,
        splits: DatasetSplits,
        rng: RngLike = None,
        epochs: Optional[int] = None,
    ) -> LearningResult:
        """Train a model for ``architecture`` on ``splits`` and return it.

        The returned model's weights are guaranteed to lie inside
        ``[-synaptic_value, +synaptic_value]`` so every connection maps to a
        valid Bernoulli probability at deployment time.
        """
        rng = new_rng(self.seed if rng is None else rng)
        network = architecture.build_network(rng=rng)
        value = architecture.synaptic_value
        total_epochs = epochs or self.epochs
        if not (0.0 <= self.penalty_warmup_fraction <= 1.0):
            raise ValueError(
                "penalty_warmup_fraction must lie in [0, 1], got "
                f"{self.penalty_warmup_fraction}"
            )
        coefficient = self.penalty_coefficient()
        warmup_epochs = (
            int(round(total_epochs * self.penalty_warmup_fraction))
            if coefficient > 0
            else 0
        )
        warmup_epochs = min(warmup_epochs, max(total_epochs - 1, 0))
        trainer = Trainer(
            network=network,
            loss=_ScaledSoftmaxCrossEntropy(self.logit_scale),
            optimizer=self.make_optimizer(),
            regularizer=self.regularizer(),
            penalty_coefficient=coefficient,
            clip_probabilities=(-value, value),
        )
        history = TrainingHistory()
        if warmup_epochs > 0:
            trainer.penalty_coefficient = 0.0
            history = trainer.fit(
                splits.train.features,
                splits.train.labels,
                epochs=warmup_epochs,
                batch_size=self.batch_size,
                validation_data=(splits.test.features, splits.test.labels),
                rng=rng,
            )
            trainer.penalty_coefficient = coefficient
        penalized_history = trainer.fit(
            splits.train.features,
            splits.train.labels,
            epochs=total_epochs - warmup_epochs,
            batch_size=self.batch_size,
            validation_data=(splits.test.features, splits.test.labels),
            rng=rng,
        )
        history.merge(penalized_history)
        predictions = network.predict(splits.test.features)
        float_accuracy = accuracy_score(splits.test.labels, predictions)
        model = TrueNorthModel.from_network(
            architecture,
            network,
            float_accuracy=float_accuracy,
            metadata={
                "method": self.method_name,
                "epochs": total_epochs,
                "warmup_epochs": warmup_epochs,
                "batch_size": self.batch_size,
                "learning_rate": self.learning_rate,
            },
        )
        return LearningResult(
            model=model,
            history=history,
            float_accuracy=float_accuracy,
            method=self.method_name,
            details=dict(model.metadata),
        )


class _ScaledSoftmaxCrossEntropy(SoftmaxCrossEntropy):
    """Softmax cross-entropy applied to ``scale * scores``.

    The networks produce class scores that are mean spiking probabilities in
    [0, 1]; scaling them before the softmax sharpens the loss without
    affecting the argmax used for prediction.
    """

    def __init__(self, scale: float = 10.0):
        super().__init__()
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self.scale = scale

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        return super().forward(self.scale * np.asarray(predictions, dtype=float), targets)

    def backward(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        grad = super().backward(
            self.scale * np.asarray(predictions, dtype=float), targets
        )
        return self.scale * grad
