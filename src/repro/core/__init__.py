"""The paper's primary contribution: probability-biased learning for TrueNorth.

Contents:

* :mod:`repro.core.penalties` — weight penalties added to the training
  objective: L2, L1, and the probability-biasing penalty of Eq. (17)
  ``E_b(w) = sum_k | |w_k - a| - b |`` that pushes connectivity probabilities
  toward the deterministic poles.
* :mod:`repro.core.probability` — the weight <-> connectivity-probability
  mapping of Eqs. (6)-(7) (``w_i = p_i * c_i``), with clipping rules for
  weights outside the representable range.
* :mod:`repro.core.variance` — the deployment-variance analysis of
  Eqs. (12)-(15): per-synapse Bernoulli variance, per-neuron pre-activation
  variance, and expected firing probability (Eq. 11).
* :mod:`repro.core.model` — :class:`TrueNorthModel`, the trained-network
  description shared between learning and deployment.
* :mod:`repro.core.tea` — the baseline Tea learning method (train with the
  erf activation, no penalty).
* :mod:`repro.core.biased` — the proposed probability-biased learning method
  (same training with the biasing penalty).
"""

from repro.core.penalties import (
    Penalty,
    L1Penalty,
    L2Penalty,
    BiasingPenalty,
    ProbabilitySpacePenalty,
    penalty_histogram,
    zero_fraction,
    pole_fraction,
)
from repro.core.probability import (
    weights_to_probabilities,
    probabilities_to_weights,
    clip_weights_to_probability_range,
)
from repro.core.variance import (
    synaptic_variance,
    presynaptic_sum_statistics,
    firing_probability,
    deviation_variance,
)
from repro.core.model import TrueNorthModel, NetworkArchitecture, LayerSpec
from repro.core.tea import TeaLearning, LearningResult
from repro.core.biased import ProbabilityBiasedLearning, L1Learning

__all__ = [
    "Penalty",
    "L1Penalty",
    "L2Penalty",
    "BiasingPenalty",
    "ProbabilitySpacePenalty",
    "penalty_histogram",
    "zero_fraction",
    "pole_fraction",
    "weights_to_probabilities",
    "probabilities_to_weights",
    "clip_weights_to_probability_range",
    "synaptic_variance",
    "presynaptic_sum_statistics",
    "firing_probability",
    "deviation_variance",
    "TrueNorthModel",
    "NetworkArchitecture",
    "LayerSpec",
    "TeaLearning",
    "LearningResult",
    "ProbabilityBiasedLearning",
    "L1Learning",
]
