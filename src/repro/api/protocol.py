"""The evaluation-backend protocol: requests, results, capabilities.

The repo grew three ways to score a deployed network — the vectorized
engine (:mod:`repro.eval.engine`), the batched chip simulator
(:mod:`repro.mapping.pipeline`), and the per-corelet reference loop — each
with its own call signature and RNG conventions.  This module pins down the
*shared contract* they all serve:

* :class:`EvalRequest` — one frozen, normalized description of an
  evaluation: which trained model, which dataset, which (copies, spf) grid,
  how many repeats, which seed, which encoder, plus the chip-only options
  (spike counters, router delay).
* :class:`EvalResult` — one normalized result shape: an accumulated
  class-score tensor of shape ``(repeats, len(copy_levels),
  len(spf_levels), batch, num_classes)`` plus the per-grid-point accuracy
  derived from it, regardless of which backend produced it.
* :class:`BackendCapabilities` / :class:`EvaluationBackend` — what a
  backend must implement and how callers (and the
  :class:`~repro.api.session.Session` auto-selector) discover what it can
  serve.  A backend that cannot serve a request raises
  :class:`UnsupportedRequestError` — never a silent fallback.

Canonical randomness
--------------------

All backends draw from the same stream layout so results are comparable
across them: ``spawn_rngs(new_rng(seed), repeats)`` yields one generator
per repeat; each repeat deploys ``max(copy_levels)`` copies from that
generator and then encodes the input spikes from its advanced state.  Two
backends given the same request therefore sample identical connectivities
and identical spike volumes — which is what makes the cross-backend
equivalence invariants (bit-identical scores for vectorized vs reference,
bit-identical readout spike counts for the chip) testable at ``atol=0``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Optional, Protocol, Tuple, runtime_checkable

import numpy as np

from repro.core.model import TrueNorthModel
from repro.datasets.base import Dataset

if TYPE_CHECKING:
    from repro.eval.sweep import SweepResult

#: Encoders understood by the protocol.  Only the paper's Bernoulli encoder
#: is implemented today; the field exists so new encoders extend the request
#: instead of forking a fourth call signature.
KNOWN_ENCODERS = ("stochastic",)


class UnsupportedRequestError(ValueError):
    """A backend cannot serve a request feature it was asked for.

    Raised instead of silently falling back to another backend or silently
    ignoring the feature (e.g. asking the vectorized backend for per-core
    spike counters, or the chip backend for a multi-spf grid).
    """


class ResultShapeError(ValueError):
    """A result tensor does not match its declared grid/readout layout.

    Raised by :meth:`EvalResult.class_counts` and the chip backend's
    spike-counter plumbing when the copies axis (or the class axis) of a
    tensor disagrees with the declared levels — instead of letting numpy
    broadcasting silently produce a wrong-shaped (or wrong-valued) array.
    """


@dataclass(frozen=True)
class BackendCapabilities:
    """What one evaluation backend can serve.

    Attributes:
        name: registry name of the backend.
        description: one-line human summary.
        spf_grids: can evaluate several spikes-per-frame levels in one
            request (derived from one pass over the largest level).
        cycle_accurate: simulates the chip tick by tick — supports
            ``collect_spike_counters`` and ``router_delay`` requests.
        cacheable: integer-seed results are deterministic cache keys the
            session layer may serve from its score cache.
        multicopy_chips: batches all requested copies through one
            multi-copy chip image instead of one chip (and one pass) per
            copy — same results, ~C x less tick-loop work, ~C x one chip's
            crossbar memory.
        stochastic_synapses: can serve ``stochastic_synapses`` requests
            (per-tick Bernoulli re-sampling of every synapse from per-copy
            hardware LFSR streams).
        board_mesh: simulates a multi-chip board mesh — supports
            ``link_delay`` requests (spikes crossing a chip boundary pay a
            per-hop link delay on top of the router delay).
        multi_chip_copies: a cycle-accurate backend whose copy budget is
            not bounded by one chip's core capacity (copies spill onto
            further chips of the board).
        cores_per_chip: core capacity of one simulated chip, or ``None``
            when the backend has no per-chip budget (functional backends).
            The session's auto-selector compares the requested duplication
            footprint against this to route chip-overflowing requests to a
            board-capable backend.
    """

    name: str
    description: str
    spf_grids: bool
    cycle_accurate: bool
    cacheable: bool
    multicopy_chips: bool = False
    stochastic_synapses: bool = False
    board_mesh: bool = False
    multi_chip_copies: bool = False
    cores_per_chip: Optional[int] = None


@dataclass(frozen=True)
class EvalRequest:
    """One normalized evaluation request, servable by any capable backend.

    Attributes:
        model: trained model to deploy and score.
        dataset: evaluation dataset (features in [0, 1], integer labels).
        copy_levels: spatial duplication levels to report (deduplicated,
            sorted ascending; every level is a nested prefix of the largest).
        spf_levels: temporal duplication levels to report.
        repeats: independent deployment + encoding repeats.
        seed: integer root seed (cacheable, reproducible) or ``None`` for
            fresh entropy (never cached, never coalesced).
        encoder: spike-encoding scheme; only ``"stochastic"`` exists today.
        max_samples: optional cap on evaluated samples.
        collect_spike_counters: chip-only — also return per-core readout
            spike counters.
        router_delay: chip-only — override the router delivery delay.
        stochastic_synapses: chip-only — deploy with per-tick Bernoulli
            synapse re-sampling from per-copy LFSR streams instead of one
            frozen connectivity sample per copy (the paper's temporal
            averaging alternative to spatial duplication).
        link_delay: board-only — simulate a multi-chip board whose mesh
            links add ``link_delay`` ticks per chip hop to every spike that
            crosses a chip boundary (``0`` = ideal links, still a board).
            ``None`` (the default) requests no board mesh at all.
    """

    model: TrueNorthModel
    dataset: Dataset
    copy_levels: Tuple[int, ...] = (1,)
    spf_levels: Tuple[int, ...] = (1,)
    repeats: int = 1
    seed: Optional[int] = 0
    encoder: str = "stochastic"
    max_samples: Optional[int] = None
    collect_spike_counters: bool = False
    router_delay: Optional[int] = None
    stochastic_synapses: bool = False
    link_delay: Optional[int] = None

    def __post_init__(self) -> None:
        copy_levels = tuple(sorted(set(int(c) for c in self.copy_levels)))
        spf_levels = tuple(sorted(set(int(s) for s in self.spf_levels)))
        object.__setattr__(self, "copy_levels", copy_levels)
        object.__setattr__(self, "spf_levels", spf_levels)
        if not copy_levels or copy_levels[0] <= 0:
            raise ValueError("copy_levels must be positive integers")
        if not spf_levels or spf_levels[0] <= 0:
            raise ValueError("spf_levels must be positive integers")
        if self.repeats <= 0:
            raise ValueError(f"repeats must be positive, got {self.repeats}")
        if self.seed is not None and (
            not isinstance(self.seed, (int, np.integer)) or isinstance(self.seed, bool)
        ):
            raise ValueError(
                f"seed must be an integer or None, got {self.seed!r}; generators "
                "carry hidden state and cannot key caches or coalescing"
            )
        if self.seed is not None:
            object.__setattr__(self, "seed", int(self.seed))
        if self.encoder not in KNOWN_ENCODERS:
            raise ValueError(
                f"unknown encoder {self.encoder!r}; known: {KNOWN_ENCODERS}"
            )
        if self.max_samples is not None and self.max_samples <= 0:
            raise ValueError(f"max_samples must be positive, got {self.max_samples}")
        if self.router_delay is not None and self.router_delay < 1:
            raise ValueError(f"router_delay must be >= 1, got {self.router_delay}")
        if self.link_delay is not None and self.link_delay < 0:
            raise ValueError(f"link_delay must be >= 0, got {self.link_delay}")

    # ------------------------------------------------------------------
    @property
    def max_copies(self) -> int:
        """Largest requested spatial duplication level."""
        return self.copy_levels[-1]

    @property
    def max_spf(self) -> int:
        """Largest requested temporal duplication level."""
        return self.spf_levels[-1]

    @property
    def needs_cycle_accuracy(self) -> bool:
        """Whether the request uses a chip-only feature."""
        return (
            self.collect_spike_counters
            or self.router_delay is not None
            or self.stochastic_synapses
            or self.link_delay is not None
        )

    @property
    def needs_board_mesh(self) -> bool:
        """Whether the request uses a board-only feature (mesh link delay)."""
        return self.link_delay is not None

    def evaluation_dataset(self) -> Dataset:
        """The (possibly capped) dataset the request evaluates.

        The taken view is memoized on the (frozen, hence immutable) request
        so repeated calls — the session key path plus the backend — share
        one object and its fingerprint memo instead of re-hashing a fresh
        copy per call.
        """
        if self.max_samples is None:
            return self.dataset
        cached = getattr(self, "_evaluation_view", None)
        if cached is None:
            cached = self.dataset.take(self.max_samples)
            object.__setattr__(self, "_evaluation_view", cached)
        return cached

    def with_levels(
        self, copy_levels: Tuple[int, ...], spf_levels: Tuple[int, ...]
    ) -> "EvalRequest":
        """A copy of this request covering a different grid (same everything
        else) — the session uses it to build coalesced union requests."""
        return replace(self, copy_levels=copy_levels, spf_levels=spf_levels)


@dataclass(frozen=True)
class EvalResult:
    """One normalized evaluation result.

    Attributes:
        backend: name of the backend that produced the result.
        copy_levels / spf_levels: the reported grid (ascending).
        scores: accumulated class-mean score tensor of shape ``(repeats,
            len(copy_levels), len(spf_levels), batch, num_classes)``;
            ``scores[r, i, j]`` is the score a ``(copy_levels[i],
            spf_levels[j])`` deployment accumulates for repeat ``r``.
        accuracy: per-repeat accuracy grid ``(repeats, len(copy_levels),
            len(spf_levels))`` (argmax of ``scores`` against the labels).
        labels: evaluated ground-truth labels ``(batch,)``.
        class_neuron_counts: readout neurons per class ``n_k`` — the
            class-mean denominator, kept so integer readout spike counts can
            be recovered exactly from the float scores.
        cores: total cores occupied at each copy level.
        seed: the request's root seed (``None`` = fresh entropy).
        repeats: number of independent repeats in the tensors.
        spike_counters: chip backend only (``collect_spike_counters``):
            per-core readout spike counters of shape ``(repeats, max_copies,
            cores_per_copy, batch)``; ``None`` elsewhere.
    """

    backend: str
    copy_levels: Tuple[int, ...]
    spf_levels: Tuple[int, ...]
    scores: np.ndarray
    accuracy: np.ndarray
    labels: np.ndarray
    class_neuron_counts: np.ndarray
    cores: np.ndarray
    seed: Optional[int]
    repeats: int
    spike_counters: Optional[np.ndarray] = field(default=None, compare=False)

    # ------------------------------------------------------------------
    @property
    def mean_accuracy(self) -> np.ndarray:
        """Accuracy grid averaged over repeats."""
        return self.accuracy.mean(axis=0)

    @property
    def std_accuracy(self) -> np.ndarray:
        """Accuracy standard deviation over repeats."""
        return self.accuracy.std(axis=0)

    def accuracy_at(self, copies: int, spikes_per_frame: int) -> float:
        """Mean accuracy of one grid point."""
        row = self.copy_levels.index(copies)
        col = self.spf_levels.index(spikes_per_frame)
        return float(self.mean_accuracy[row, col])

    def class_counts(self) -> np.ndarray:
        """Accumulated integer readout spike counts per class.

        Scores are per-class *means* (``counts / n_k``); multiplying back by
        ``n_k`` and rounding recovers the exact integers because every count
        is a small integer and the float error of the accumulated means is
        orders of magnitude below 1/2.  Shape matches :attr:`scores`, dtype
        int64 — the quantity the chip backend's equivalence invariant is
        stated on.

        Raises:
            ResultShapeError: when the score tensor's grid axes disagree
                with the declared copy/spf levels or its class axis
                disagrees with ``class_neuron_counts`` — numpy would
                otherwise broadcast a mismatched ``n_k`` silently and
                return well-shaped wrong integers.
        """
        scores = np.asarray(self.scores)
        n_k = np.asarray(self.class_neuron_counts)
        if scores.ndim != 5:
            raise ResultShapeError(
                "scores must be (repeats, copies, spf, batch, classes); got "
                f"{scores.ndim}-D shape {scores.shape}"
            )
        expected_grid = (len(self.copy_levels), len(self.spf_levels))
        if scores.shape[1:3] != expected_grid:
            raise ResultShapeError(
                f"scores grid axes {scores.shape[1:3]} do not match the "
                f"declared levels {expected_grid} "
                f"(copy_levels={self.copy_levels}, spf_levels={self.spf_levels})"
            )
        if n_k.ndim != 1 or scores.shape[-1] != n_k.shape[0]:
            raise ResultShapeError(
                f"class axis of scores ({scores.shape[-1]} classes) does not "
                f"match class_neuron_counts of shape {n_k.shape}"
            )
        return np.rint(scores * n_k).astype(np.int64)

    def sweep(self, label: str = "") -> "SweepResult":
        """This result as a :class:`repro.eval.sweep.SweepResult`.

        Keeps the comparison/matching machinery of Table 2 and Figures 8-9
        working unchanged on top of any backend.
        """
        from repro.eval.sweep import SweepResult

        return SweepResult(
            copy_levels=self.copy_levels,
            spf_levels=self.spf_levels,
            mean_accuracy=self.mean_accuracy,
            std_accuracy=self.std_accuracy,
            cores=self.cores,
            repeats=self.repeats,
            label=label,
        )


@runtime_checkable
class EvaluationBackend(Protocol):
    """What every registered evaluation backend implements.

    ``capabilities()`` advertises what the backend can serve (the session's
    auto-selector and validation read it); ``evaluate(request)`` serves one
    request or raises :class:`UnsupportedRequestError`.  Backends validate
    — they never silently drop a request feature they do not implement.
    """

    name: str

    def capabilities(self) -> BackendCapabilities:
        """Describe what this backend can serve."""
        ...

    def evaluate(self, request: EvalRequest) -> EvalResult:
        """Serve one evaluation request."""
        ...
