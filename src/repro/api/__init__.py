"""repro.api — unified evaluation-backend protocol and serving facade.

One stable API in front of the repo's evaluation engines:

* :class:`EvalRequest` / :class:`EvalResult` — normalized request and
  result shapes (grids, seeds, encoder choice, score/accuracy tensors)
  shared by every backend.
* :class:`EvaluationBackend` + the registry (:func:`register_backend`,
  :func:`create_backend`, :func:`backend_names`) — pluggable engines:
  ``vectorized`` (SweepRunner / VectorizedEvaluator), ``chip`` (batched
  cycle-accurate TrueNorth simulation), ``board`` (multi-chip board mesh
  with link delays for duplication levels past one chip's core budget),
  ``reference`` (the per-corelet ground-truth loop).
* :class:`Session` — the serving facade: backend selection (explicit or
  capability-based ``auto``), the persistent score caches, and request
  batching that coalesces queued requests onto shared engine passes.

Quickstart::

    from repro.api import EvalRequest, Session
    from repro.experiments.runner import ExperimentContext

    context = ExperimentContext(train_size=400, epochs=3)
    session = Session(backend="vectorized", cache_dir="/tmp/scores")
    result = session.evaluate(
        EvalRequest(
            model=context.result("tea").model,
            dataset=context.evaluation_dataset(),
            copy_levels=(1, 2, 4),
            spf_levels=(1, 2),
            repeats=2,
            seed=0,
        )
    )
    print(result.mean_accuracy)       # (copies, spf) accuracy grid
    print(result.accuracy_at(4, 2))   # one grid point

Switching ``backend="vectorized"`` to ``"reference"`` or ``"chip"`` changes
nothing but the engine: the same request produces bit-identical score
tensors on the vectorized and reference backends, and bit-identical integer
readout counts (``result.class_counts()``) on the chip backend.  See the
top-level README for the full backend-choice guide.
"""

from repro.api.backends import (
    BoardBackend,
    ChipBackend,
    ReferenceBackend,
    VectorizedBackend,
    backend_names,
    create_backend,
    register_backend,
)
from repro.api.protocol import (
    KNOWN_ENCODERS,
    BackendCapabilities,
    EvalRequest,
    EvalResult,
    EvaluationBackend,
    ResultShapeError,
    UnsupportedRequestError,
)
from repro.api.session import (
    AUTO,
    PendingEvaluation,
    ResultMemo,
    Session,
    SessionStats,
)

__all__ = [
    "AUTO",
    "BackendCapabilities",
    "BoardBackend",
    "ChipBackend",
    "EvalRequest",
    "EvalResult",
    "EvaluationBackend",
    "KNOWN_ENCODERS",
    "PendingEvaluation",
    "ReferenceBackend",
    "ResultMemo",
    "ResultShapeError",
    "Session",
    "SessionStats",
    "UnsupportedRequestError",
    "VectorizedBackend",
    "backend_names",
    "create_backend",
    "register_backend",
]
