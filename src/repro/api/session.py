"""The serving facade: backend selection, caching, request coalescing.

:class:`Session` is the one object experiment drivers, examples, and the
future service front end talk to.  It owns

* **backend selection** — explicit (``Session(backend="chip")``) or by
  capability (``backend="auto"``: requests using a chip-only feature go to
  the cycle-accurate backend, everything else to the vectorized engine).
  A request the selected backend cannot serve raises
  :class:`~repro.api.protocol.UnsupportedRequestError` — never a silent
  fallback to a different backend.
* **the score caches** — ``cache_dir`` (with optional ``cache_max_bytes``
  LRU bounding) and the in-memory cache are threaded into the vectorized
  backend, so a long-running session re-serves repeated configurations
  from memory or disk instead of re-evaluating.
* **request batching** — :meth:`submit` queues requests;
  :meth:`flush` groups queued requests that share one *coalescing key*
  (backend, model fingerprint, dataset fingerprint, seed, repeats,
  encoder, and the grid maxima) and serves each group with **one** engine
  pass over the union of the requested levels, slicing every request's
  sub-grid out of the shared cumulative tensors.

Coalescing never changes results: a request's scores are defined by the
evaluation at its own ``(max(copy_levels), max(spf_levels))`` — every
smaller level is a nested prefix of that pass — so only requests with
identical maxima share a pass, and the sliced results are bit-identical to
evaluating each request alone (the property tests assert it).  Requests
with ``seed=None`` ask for fresh entropy and are therefore never coalesced
(each must be an independent random sample) and never cached.

:class:`ResultMemo` extends the same determinism argument one level up:
it memoizes whole :class:`EvalResult` objects under the coalescing key.
Where the score caches only cover backends that declare ``cacheable``
(the vectorized engine), the memo covers *every* backend — a repeated
deterministic chip or board request is a memo hit even though the
cycle-accurate runners never touch a score cache.  The serving layer
shares one memo across its worker sessions (and, with process workers,
consults it in the dispatching parent), which is what lets a
journal-warmed server answer a repeated burst without recomputation.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, cast

import numpy as np

from repro.api.backends import backend_names, create_backend
from repro.api.protocol import (
    BackendCapabilities,
    EvalRequest,
    EvalResult,
    EvaluationBackend,
)
from repro.eval.runner import ScoreCache, dataset_fingerprint, model_fingerprint

#: Sentinel for capability-based backend selection.
AUTO = "auto"


@dataclass
class PendingEvaluation:
    """Handle for a queued request; resolved by :meth:`Session.flush`."""

    request: EvalRequest
    backend_name: str
    _session: "Session" = field(repr=False)
    _result: Optional[EvalResult] = field(default=None, repr=False)
    _error: Optional[BaseException] = field(default=None, repr=False)

    @property
    def done(self) -> bool:
        """Whether the request has been served (or failed)."""
        return self._result is not None or self._error is not None

    def result(self) -> EvalResult:
        """The evaluation result, flushing the session's queue if needed.

        A request that failed (e.g. with
        :class:`~repro.api.protocol.UnsupportedRequestError`) re-raises its
        error here; failures never abort the other requests of a flush.
        """
        if not self.done:
            self._session.flush()
        if self._error is not None:
            raise self._error
        if self._result is None:
            raise RuntimeError("request was never served (flush did not reach it)")
        return self._result


@dataclass
class SessionStats:
    """Counters of what a session actually did.

    ``engine_passes`` counts evaluation passes the backends actually
    computed — cache-served requests are excluded when the backend exposes
    a ``passes`` counter.  ``coalesced_requests`` counts requests served by
    slicing another request's engine pass instead of running their own.

    The instance doubles as the session's stats *hook*: calling it
    (``session.stats()``) returns a plain-dict snapshot of the counters
    plus the score-cache telemetry aggregated over the session's
    instantiated backends — the shape the serving layer's ``/metrics``
    endpoint publishes.
    """

    submitted: int = 0
    flushes: int = 0
    engine_passes: int = 0
    coalesced_requests: int = 0
    _session: Optional["Session"] = field(
        default=None, repr=False, compare=False
    )

    def __call__(self) -> Dict[str, object]:
        """Snapshot of the counters plus aggregated cache telemetry.

        ``cache_hit_rate`` is ``None`` until at least one cacheable lookup
        happened (no traffic is not a 0% hit rate).
        """
        snapshot: Dict[str, object] = {
            "submitted": self.submitted,
            "flushes": self.flushes,
            "engine_passes": self.engine_passes,
            "coalesced_requests": self.coalesced_requests,
            "cache_hits": 0,
            "cache_misses": 0,
            "cache_hit_rate": None,
        }
        if self._session is not None:
            hits, misses = self._session._cache_counts()
            snapshot["cache_hits"] = hits
            snapshot["cache_misses"] = misses
            if hits + misses:
                snapshot["cache_hit_rate"] = hits / (hits + misses)
        return snapshot


class ResultMemo:
    """Thread-safe LRU memo of :class:`EvalResult` by coalescing key.

    One entry per coalescing key, holding the *widest* union result seen
    for that key.  A lookup hits when the memoized result's level grids
    cover every level the request asks for — the slice served off it is
    then bit-identical to a fresh evaluation, by the same nested-prefix
    argument that makes coalescing exact (the key pins the grid maxima,
    the seed, and every behavioural flag).

    Requests with ``seed=None`` have no coalescing key and therefore can
    never be memoized — fresh entropy stays fresh.
    """

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple, EvalResult]" = (
            OrderedDict()
        )  # guarded-by: _lock
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock

    @staticmethod
    def _covers(result: EvalResult, request: EvalRequest) -> bool:
        return set(request.copy_levels) <= set(result.copy_levels) and set(
            request.spf_levels
        ) <= set(result.spf_levels)

    def lookup(self, key: Tuple, request: EvalRequest) -> Optional[EvalResult]:
        """The memoized result covering ``request``'s levels, or ``None``.

        Returns the stored union result (covering at least the requested
        levels) — the caller slices the request's sub-grid out of it with
        :func:`_slice_result`.
        """
        with self._lock:
            stored = self._entries.get(key)
            if stored is not None and self._covers(stored, request):
                self._entries.move_to_end(key)
                self.hits += 1
                return stored
            self.misses += 1
            return None

    def store(self, key: Tuple, result: EvalResult) -> None:
        """Memoize ``result`` under ``key`` (keeping a wider stored one)."""
        with self._lock:
            stored = self._entries.get(key)
            keep_stored = (
                stored is not None
                and set(result.copy_levels) <= set(stored.copy_levels)
                and set(result.spf_levels) <= set(stored.spf_levels)
            )
            if not keep_stored:
                self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def snapshot(self) -> Dict[str, object]:
        """The ``/metrics`` view of the memo."""
        with self._lock:
            hits, misses = self.hits, self.misses
            entries = len(self._entries)
        return {
            "entries": entries,
            "max_entries": self.max_entries,
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / (hits + misses) if (hits + misses) else None,
        }


class Session:
    """Unified front end over the registered evaluation backends.

    Args:
        backend: default backend name for :meth:`evaluate` / :meth:`submit`
            (``"vectorized"``, ``"reference"``, ``"chip"``, or ``"auto"``
            to select by request capability).
        cache: in-memory score cache for the vectorized backend (``None``
            shares the process-global cache).
        cache_dir: persistent on-disk score cache directory shared across
            sessions, processes, and restarts.
        cache_max_bytes: size bound for ``cache_dir`` (mtime-LRU eviction).
        workers: fan independent passes over N processes (vectorized:
            per-repeat passes; chip: per-spf-level grid passes).
        result_memo: result-level memo consulted (and filled) by
            :meth:`flush` for deterministic requests on *every* backend;
            share one :class:`ResultMemo` across sessions to share served
            results (the serving layer does).  ``None`` disables
            result memoization (the default — a bare session re-evaluates
            except where the score caches apply).
    """

    def __init__(
        self,
        backend: str = AUTO,
        cache: Optional[ScoreCache] = None,
        cache_dir: Optional[str] = None,
        cache_max_bytes: Optional[int] = None,
        workers: Optional[int] = None,
        result_memo: Optional[ResultMemo] = None,
    ):
        if backend != AUTO and backend not in backend_names():
            raise KeyError(
                f"unknown evaluation backend {backend!r}; registered: "
                f"{backend_names()} (or 'auto')"
            )
        self.default_backend = backend
        self.cache = cache
        self.cache_dir = cache_dir
        self.cache_max_bytes = cache_max_bytes
        self.workers = workers
        self.result_memo = result_memo
        self.stats = SessionStats(_session=self)
        self._backends: Dict[str, object] = {}
        self._queue: List[PendingEvaluation] = []

    def _cache_objects(self) -> List[object]:
        """The distinct score-cache objects this session's backends use.

        Runners may share one cache object (the session-level ``cache``),
        so caches are deduplicated by identity — a shared cache's counters
        must not be counted once per runner.  The serve layer unions these
        lists across worker sessions for the same reason.

        The backend/runner dicts are snapshotted (``list`` is atomic under
        the GIL) because a metrics scrape may run while a worker thread is
        lazily creating a backend or runner — iterating the live dict would
        raise ``RuntimeError: dictionary changed size during iteration``.
        """
        caches: Dict[int, object] = {}
        for backend in list(self._backends.values()):
            for runner in list(getattr(backend, "_runners", {}).values()):
                for cache in (runner.cache, getattr(runner, "disk_cache", None)):
                    if cache is not None:
                        caches[id(cache)] = cache
        return list(caches.values())

    def _cache_counts(self) -> Tuple[int, int]:
        """Aggregate (hits, misses) over the distinct score caches in use."""
        caches = self._cache_objects()
        hits = sum(cache.hits for cache in caches)
        misses = sum(cache.misses for cache in caches)
        return hits, misses

    # ------------------------------------------------------------------
    # backends
    # ------------------------------------------------------------------
    def backend(self, name: str) -> EvaluationBackend:
        """The (lazily created, cached) backend instance for ``name``."""
        if name not in self._backends:
            if name == "vectorized":
                self._backends[name] = create_backend(
                    name,
                    cache=self.cache,
                    cache_dir=self.cache_dir,
                    cache_max_bytes=self.cache_max_bytes,
                    workers=self.workers,
                )
            elif name in ("chip", "board"):
                self._backends[name] = create_backend(name, workers=self.workers)
            else:
                self._backends[name] = create_backend(name)
        # The registry is duck-typed (factories return object); every
        # registered backend satisfies the runtime-checkable protocol.
        return cast(EvaluationBackend, self._backends[name])

    def capabilities(self, name: str) -> BackendCapabilities:
        """Capabilities of one registered backend."""
        return self.backend(name).capabilities()

    def select_backend(self, request: EvalRequest) -> str:
        """Backend name that will serve ``request``.

        With an explicit default backend this simply returns it (the
        backend itself rejects requests it cannot serve); in ``auto`` mode
        the request's capability needs pick the backend: board-only
        features (mesh link delay) or a duplication footprint overflowing
        the chip backend's single-chip core budget route to the board,
        other chip-only features to the cycle-accurate chip backend,
        everything else to the vectorized engine.
        """
        if self.default_backend != AUTO:
            return self.default_backend
        if request.needs_board_mesh:
            return "board"
        if request.needs_cycle_accuracy:
            chip_caps = self.capabilities("chip")
            footprint = (
                request.max_copies
                * request.model.architecture.cores_per_network
            )
            if (
                chip_caps.cores_per_chip is not None
                and footprint > chip_caps.cores_per_chip
            ):
                return "board"
            return "chip"
        return "vectorized"

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def evaluate(
        self, request: EvalRequest, backend: Optional[str] = None
    ) -> EvalResult:
        """Serve one request now (submit + flush)."""
        pending = self.submit(request, backend=backend)
        self.flush()
        return pending.result()

    def submit(
        self, request: EvalRequest, backend: Optional[str] = None
    ) -> PendingEvaluation:
        """Queue a request for the next :meth:`flush`.

        Queued requests with the same coalescing key are served by one
        shared engine pass.  The returned handle's ``result()`` flushes on
        demand, so callers may also treat ``submit`` as a lazy evaluate.
        """
        if not isinstance(request, EvalRequest):
            raise TypeError(f"expected an EvalRequest, got {type(request).__name__}")
        name = backend if backend is not None else self.select_backend(request)
        if name not in backend_names():
            raise KeyError(
                f"unknown evaluation backend {name!r}; registered: {backend_names()}"
            )
        pending = PendingEvaluation(request=request, backend_name=name, _session=self)
        self._queue.append(pending)
        self.stats.submitted += 1
        return pending

    def flush(self) -> None:
        """Serve every queued request, coalescing shared engine passes."""
        if not self._queue:
            return
        queue, self._queue = self._queue, []
        self.stats.flushes += 1
        groups: Dict[Tuple, List[PendingEvaluation]] = {}
        singles: List[PendingEvaluation] = []
        for pending in queue:
            # A failure while computing the key (e.g. a backend factory that
            # cannot be constructed) resolves that handle alone — it must
            # not abort the already-detached queue.
            try:
                key = self._coalesce_key(pending.backend_name, pending.request)
            except Exception as error:
                pending._error = error
                continue
            if key is None:
                singles.append(pending)
            else:
                groups.setdefault(key, []).append(pending)
        for pending in singles:
            # Backend construction sits inside the guard too: a factory
            # that raises must resolve this handle alone, not lose the
            # rest of the detached queue.
            try:
                backend = self.backend(pending.backend_name)
                passes_before = getattr(backend, "passes", None)
                pending._result = backend.evaluate(pending.request)
            except Exception as error:
                pending._error = error
                continue
            self._count_engine_passes(backend, passes_before)
        for key, members in groups.items():
            self._serve_group(key, members)

    def _count_engine_passes(self, backend, passes_before) -> None:
        """Add a backend's actually-computed passes to the session stats.

        Backends exposing a ``passes`` counter (which excludes cache-served
        requests) contribute their delta, so ``engine_passes`` reflects real
        engine work; backends without one count one pass per evaluation.
        """
        if passes_before is None:
            self.stats.engine_passes += 1
        else:
            self.stats.engine_passes += backend.passes - passes_before

    def _serve_group(self, key: Tuple, members: List[PendingEvaluation]) -> None:
        """One engine pass over the union grid, sliced per member request.

        With a :class:`ResultMemo` attached, a memoized union result that
        covers every member's levels serves the whole group without an
        engine pass (and a freshly computed union result is memoized for
        the next flush — on this session or any session sharing the memo).
        """
        copy_union = tuple(
            sorted({c for m in members for c in m.request.copy_levels})
        )
        spf_union = tuple(sorted({s for m in members for s in m.request.spf_levels}))
        union_request = members[0].request.with_levels(copy_union, spf_union)
        if self.result_memo is not None:
            memoized = self.result_memo.lookup(key, union_request)
            if memoized is not None:
                for member in members:
                    member._result = _slice_result(memoized, member.request)
                return
        try:
            backend = self.backend(members[0].backend_name)
            passes_before = getattr(backend, "passes", None)
            union_result = backend.evaluate(union_request)
        except Exception as error:
            for member in members:
                member._error = error
            return
        self._count_engine_passes(backend, passes_before)
        self.stats.coalesced_requests += len(members) - 1
        if self.result_memo is not None:
            self.result_memo.store(key, union_result)
        for member in members:
            member._result = _slice_result(union_result, member.request)

    # ------------------------------------------------------------------
    # result memoization (see ResultMemo)
    # ------------------------------------------------------------------
    def cached_result(
        self, request: EvalRequest, backend: Optional[str] = None
    ) -> Optional[EvalResult]:
        """A memoized result for ``request``, without evaluating anything.

        ``None`` when the session has no :class:`ResultMemo`, the request
        is non-deterministic (``seed=None``), or the memo holds nothing
        covering the request's levels.  The serving layer's process-worker
        dispatcher uses this to answer repeated requests in the parent
        without shipping them to a worker.
        """
        if self.result_memo is None:
            return None
        name = backend if backend is not None else self.select_backend(request)
        key = self._coalesce_key(name, request)
        if key is None:
            return None
        memoized = self.result_memo.lookup(key, request)
        if memoized is None:
            return None
        return _slice_result(memoized, request)

    def memoize_result(
        self,
        request: EvalRequest,
        result: EvalResult,
        backend: Optional[str] = None,
    ) -> None:
        """Feed an externally computed result into the session's memo.

        No-op for sessions without a memo or for ``seed=None`` requests.
        The process-worker dispatcher calls this with results computed in
        worker processes, so the parent-side memo warms exactly as a
        threaded worker's flush would warm it.
        """
        if self.result_memo is None:
            return
        name = backend if backend is not None else self.select_backend(request)
        key = self._coalesce_key(name, request)
        if key is None:
            return
        self.result_memo.store(key, result)

    # ------------------------------------------------------------------
    def _coalesce_key(
        self, backend_name: str, request: EvalRequest
    ) -> Optional[Tuple]:
        """Key under which queued requests may share one engine pass.

        ``None`` marks an uncoalescible request (fresh entropy).  The grid
        *maxima* are part of the key — only passes over the same largest
        configuration produce bit-identical nested prefixes — while the
        reported levels below the maxima are free to differ (that is the
        coalescing win: many sub-grid reads off one tensor).
        """
        if request.seed is None:
            return None
        # Every built-in backend now serves multi-spf grids (the chip runs
        # one folded pass per level), so grid-capable backends group on the
        # spf *maximum*: the chip's levels are mutually independent passes
        # and the union's extra levels cannot perturb a member's slice.
        # Keying on max_spf (not the union) also keeps spike counters
        # consistent — the chip reports them at the largest level, which is
        # then the same level for every member of the group.  A non-grid
        # out-of-tree backend still must only group identical spf tuples,
        # or the union request could become multi-spf and fail where each
        # member alone would not.
        if self.capabilities(backend_name).spf_grids:
            spf_key = request.max_spf
        else:
            spf_key = request.spf_levels
        # Keyed on the *source* dataset's memoized fingerprint plus the cap
        # (equivalent to fingerprinting the taken view, without building and
        # re-hashing a fresh view per request).
        return (
            backend_name,
            model_fingerprint(request.model),
            dataset_fingerprint(request.dataset),
            request.max_samples,
            request.seed,
            request.repeats,
            request.encoder,
            request.max_copies,
            spf_key,
            request.collect_spike_counters,
            request.router_delay,
            request.stochastic_synapses,
            request.link_delay,
        )


def _slice_result(union: EvalResult, request: EvalRequest) -> EvalResult:
    """A member request's result, read off a union-grid result.

    Exact by construction: the union pass is keyed on the same grid maxima,
    so every requested level indexes a nested prefix the member's own pass
    would have produced bit for bit.
    """
    copy_index = np.asarray(
        [union.copy_levels.index(c) for c in request.copy_levels], dtype=int
    )
    spf_index = np.asarray(
        [union.spf_levels.index(s) for s in request.spf_levels], dtype=int
    )
    return EvalResult(
        backend=union.backend,
        copy_levels=request.copy_levels,
        spf_levels=request.spf_levels,
        scores=union.scores[:, copy_index][:, :, spf_index],
        accuracy=union.accuracy[:, copy_index][:, :, spf_index],
        labels=union.labels,
        class_neuron_counts=union.class_neuron_counts,
        cores=union.cores[copy_index],
        seed=request.seed,
        repeats=request.repeats,
        spike_counters=union.spike_counters,
    )
