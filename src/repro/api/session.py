"""The serving facade: backend selection, caching, request coalescing.

:class:`Session` is the one object experiment drivers, examples, and the
future service front end talk to.  It owns

* **backend selection** — explicit (``Session(backend="chip")``) or by
  capability (``backend="auto"``: requests using a chip-only feature go to
  the cycle-accurate backend, everything else to the vectorized engine).
  A request the selected backend cannot serve raises
  :class:`~repro.api.protocol.UnsupportedRequestError` — never a silent
  fallback to a different backend.
* **the score caches** — ``cache_dir`` (with optional ``cache_max_bytes``
  LRU bounding) and the in-memory cache are threaded into the vectorized
  backend, so a long-running session re-serves repeated configurations
  from memory or disk instead of re-evaluating.
* **request batching** — :meth:`submit` queues requests;
  :meth:`flush` groups queued requests that share one *coalescing key*
  (backend, model fingerprint, dataset fingerprint, seed, repeats,
  encoder, and the grid maxima) and serves each group with **one** engine
  pass over the union of the requested levels, slicing every request's
  sub-grid out of the shared cumulative tensors.

Coalescing never changes results: a request's scores are defined by the
evaluation at its own ``(max(copy_levels), max(spf_levels))`` — every
smaller level is a nested prefix of that pass — so only requests with
identical maxima share a pass, and the sliced results are bit-identical to
evaluating each request alone (the property tests assert it).  Requests
with ``seed=None`` ask for fresh entropy and are therefore never coalesced
(each must be an independent random sample) and never cached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, cast

import numpy as np

from repro.api.backends import backend_names, create_backend
from repro.api.protocol import (
    BackendCapabilities,
    EvalRequest,
    EvalResult,
    EvaluationBackend,
)
from repro.eval.runner import ScoreCache, dataset_fingerprint, model_fingerprint

#: Sentinel for capability-based backend selection.
AUTO = "auto"


@dataclass
class PendingEvaluation:
    """Handle for a queued request; resolved by :meth:`Session.flush`."""

    request: EvalRequest
    backend_name: str
    _session: "Session" = field(repr=False)
    _result: Optional[EvalResult] = field(default=None, repr=False)
    _error: Optional[BaseException] = field(default=None, repr=False)

    @property
    def done(self) -> bool:
        """Whether the request has been served (or failed)."""
        return self._result is not None or self._error is not None

    def result(self) -> EvalResult:
        """The evaluation result, flushing the session's queue if needed.

        A request that failed (e.g. with
        :class:`~repro.api.protocol.UnsupportedRequestError`) re-raises its
        error here; failures never abort the other requests of a flush.
        """
        if not self.done:
            self._session.flush()
        if self._error is not None:
            raise self._error
        if self._result is None:
            raise RuntimeError("request was never served (flush did not reach it)")
        return self._result


@dataclass
class SessionStats:
    """Counters of what a session actually did.

    ``engine_passes`` counts evaluation passes the backends actually
    computed — cache-served requests are excluded when the backend exposes
    a ``passes`` counter.  ``coalesced_requests`` counts requests served by
    slicing another request's engine pass instead of running their own.

    The instance doubles as the session's stats *hook*: calling it
    (``session.stats()``) returns a plain-dict snapshot of the counters
    plus the score-cache telemetry aggregated over the session's
    instantiated backends — the shape the serving layer's ``/metrics``
    endpoint publishes.
    """

    submitted: int = 0
    flushes: int = 0
    engine_passes: int = 0
    coalesced_requests: int = 0
    _session: Optional["Session"] = field(
        default=None, repr=False, compare=False
    )

    def __call__(self) -> Dict[str, object]:
        """Snapshot of the counters plus aggregated cache telemetry.

        ``cache_hit_rate`` is ``None`` until at least one cacheable lookup
        happened (no traffic is not a 0% hit rate).
        """
        snapshot: Dict[str, object] = {
            "submitted": self.submitted,
            "flushes": self.flushes,
            "engine_passes": self.engine_passes,
            "coalesced_requests": self.coalesced_requests,
            "cache_hits": 0,
            "cache_misses": 0,
            "cache_hit_rate": None,
        }
        if self._session is not None:
            hits, misses = self._session._cache_counts()
            snapshot["cache_hits"] = hits
            snapshot["cache_misses"] = misses
            if hits + misses:
                snapshot["cache_hit_rate"] = hits / (hits + misses)
        return snapshot


class Session:
    """Unified front end over the registered evaluation backends.

    Args:
        backend: default backend name for :meth:`evaluate` / :meth:`submit`
            (``"vectorized"``, ``"reference"``, ``"chip"``, or ``"auto"``
            to select by request capability).
        cache: in-memory score cache for the vectorized backend (``None``
            shares the process-global cache).
        cache_dir: persistent on-disk score cache directory shared across
            sessions, processes, and restarts.
        cache_max_bytes: size bound for ``cache_dir`` (mtime-LRU eviction).
        workers: fan independent passes over N processes (vectorized:
            per-repeat passes; chip: per-spf-level grid passes).
    """

    def __init__(
        self,
        backend: str = AUTO,
        cache: Optional[ScoreCache] = None,
        cache_dir: Optional[str] = None,
        cache_max_bytes: Optional[int] = None,
        workers: Optional[int] = None,
    ):
        if backend != AUTO and backend not in backend_names():
            raise KeyError(
                f"unknown evaluation backend {backend!r}; registered: "
                f"{backend_names()} (or 'auto')"
            )
        self.default_backend = backend
        self.cache = cache
        self.cache_dir = cache_dir
        self.cache_max_bytes = cache_max_bytes
        self.workers = workers
        self.stats = SessionStats(_session=self)
        self._backends: Dict[str, object] = {}
        self._queue: List[PendingEvaluation] = []

    def _cache_objects(self) -> List[object]:
        """The distinct score-cache objects this session's backends use.

        Runners may share one cache object (the session-level ``cache``),
        so caches are deduplicated by identity — a shared cache's counters
        must not be counted once per runner.  The serve layer unions these
        lists across worker sessions for the same reason.

        The backend/runner dicts are snapshotted (``list`` is atomic under
        the GIL) because a metrics scrape may run while a worker thread is
        lazily creating a backend or runner — iterating the live dict would
        raise ``RuntimeError: dictionary changed size during iteration``.
        """
        caches: Dict[int, object] = {}
        for backend in list(self._backends.values()):
            for runner in list(getattr(backend, "_runners", {}).values()):
                for cache in (runner.cache, getattr(runner, "disk_cache", None)):
                    if cache is not None:
                        caches[id(cache)] = cache
        return list(caches.values())

    def _cache_counts(self) -> Tuple[int, int]:
        """Aggregate (hits, misses) over the distinct score caches in use."""
        caches = self._cache_objects()
        hits = sum(cache.hits for cache in caches)
        misses = sum(cache.misses for cache in caches)
        return hits, misses

    # ------------------------------------------------------------------
    # backends
    # ------------------------------------------------------------------
    def backend(self, name: str) -> EvaluationBackend:
        """The (lazily created, cached) backend instance for ``name``."""
        if name not in self._backends:
            if name == "vectorized":
                self._backends[name] = create_backend(
                    name,
                    cache=self.cache,
                    cache_dir=self.cache_dir,
                    cache_max_bytes=self.cache_max_bytes,
                    workers=self.workers,
                )
            elif name in ("chip", "board"):
                self._backends[name] = create_backend(name, workers=self.workers)
            else:
                self._backends[name] = create_backend(name)
        # The registry is duck-typed (factories return object); every
        # registered backend satisfies the runtime-checkable protocol.
        return cast(EvaluationBackend, self._backends[name])

    def capabilities(self, name: str) -> BackendCapabilities:
        """Capabilities of one registered backend."""
        return self.backend(name).capabilities()

    def select_backend(self, request: EvalRequest) -> str:
        """Backend name that will serve ``request``.

        With an explicit default backend this simply returns it (the
        backend itself rejects requests it cannot serve); in ``auto`` mode
        the request's capability needs pick the backend: board-only
        features (mesh link delay) or a duplication footprint overflowing
        the chip backend's single-chip core budget route to the board,
        other chip-only features to the cycle-accurate chip backend,
        everything else to the vectorized engine.
        """
        if self.default_backend != AUTO:
            return self.default_backend
        if request.needs_board_mesh:
            return "board"
        if request.needs_cycle_accuracy:
            chip_caps = self.capabilities("chip")
            footprint = (
                request.max_copies
                * request.model.architecture.cores_per_network
            )
            if (
                chip_caps.cores_per_chip is not None
                and footprint > chip_caps.cores_per_chip
            ):
                return "board"
            return "chip"
        return "vectorized"

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def evaluate(
        self, request: EvalRequest, backend: Optional[str] = None
    ) -> EvalResult:
        """Serve one request now (submit + flush)."""
        pending = self.submit(request, backend=backend)
        self.flush()
        return pending.result()

    def submit(
        self, request: EvalRequest, backend: Optional[str] = None
    ) -> PendingEvaluation:
        """Queue a request for the next :meth:`flush`.

        Queued requests with the same coalescing key are served by one
        shared engine pass.  The returned handle's ``result()`` flushes on
        demand, so callers may also treat ``submit`` as a lazy evaluate.
        """
        if not isinstance(request, EvalRequest):
            raise TypeError(f"expected an EvalRequest, got {type(request).__name__}")
        name = backend if backend is not None else self.select_backend(request)
        if name not in backend_names():
            raise KeyError(
                f"unknown evaluation backend {name!r}; registered: {backend_names()}"
            )
        pending = PendingEvaluation(request=request, backend_name=name, _session=self)
        self._queue.append(pending)
        self.stats.submitted += 1
        return pending

    def flush(self) -> None:
        """Serve every queued request, coalescing shared engine passes."""
        if not self._queue:
            return
        queue, self._queue = self._queue, []
        self.stats.flushes += 1
        groups: Dict[Tuple, List[PendingEvaluation]] = {}
        singles: List[PendingEvaluation] = []
        for pending in queue:
            # A failure while computing the key (e.g. a backend factory that
            # cannot be constructed) resolves that handle alone — it must
            # not abort the already-detached queue.
            try:
                key = self._coalesce_key(pending)
            except Exception as error:
                pending._error = error
                continue
            if key is None:
                singles.append(pending)
            else:
                groups.setdefault(key, []).append(pending)
        for pending in singles:
            # Backend construction sits inside the guard too: a factory
            # that raises must resolve this handle alone, not lose the
            # rest of the detached queue.
            try:
                backend = self.backend(pending.backend_name)
                passes_before = getattr(backend, "passes", None)
                pending._result = backend.evaluate(pending.request)
            except Exception as error:
                pending._error = error
                continue
            self._count_engine_passes(backend, passes_before)
        for members in groups.values():
            self._serve_group(members)

    def _count_engine_passes(self, backend, passes_before) -> None:
        """Add a backend's actually-computed passes to the session stats.

        Backends exposing a ``passes`` counter (which excludes cache-served
        requests) contribute their delta, so ``engine_passes`` reflects real
        engine work; backends without one count one pass per evaluation.
        """
        if passes_before is None:
            self.stats.engine_passes += 1
        else:
            self.stats.engine_passes += backend.passes - passes_before

    def _serve_group(self, members: List[PendingEvaluation]) -> None:
        """One engine pass over the union grid, sliced per member request."""
        copy_union = tuple(
            sorted({c for m in members for c in m.request.copy_levels})
        )
        spf_union = tuple(sorted({s for m in members for s in m.request.spf_levels}))
        try:
            union_request = members[0].request.with_levels(copy_union, spf_union)
            backend = self.backend(members[0].backend_name)
            passes_before = getattr(backend, "passes", None)
            union_result = backend.evaluate(union_request)
        except Exception as error:
            for member in members:
                member._error = error
            return
        self._count_engine_passes(backend, passes_before)
        self.stats.coalesced_requests += len(members) - 1
        for member in members:
            member._result = _slice_result(union_result, member.request)

    # ------------------------------------------------------------------
    def _coalesce_key(self, pending: PendingEvaluation) -> Optional[Tuple]:
        """Key under which queued requests may share one engine pass.

        ``None`` marks an uncoalescible request (fresh entropy).  The grid
        *maxima* are part of the key — only passes over the same largest
        configuration produce bit-identical nested prefixes — while the
        reported levels below the maxima are free to differ (that is the
        coalescing win: many sub-grid reads off one tensor).
        """
        request = pending.request
        if request.seed is None:
            return None
        # Every built-in backend now serves multi-spf grids (the chip runs
        # one folded pass per level), so grid-capable backends group on the
        # spf *maximum*: the chip's levels are mutually independent passes
        # and the union's extra levels cannot perturb a member's slice.
        # Keying on max_spf (not the union) also keeps spike counters
        # consistent — the chip reports them at the largest level, which is
        # then the same level for every member of the group.  A non-grid
        # out-of-tree backend still must only group identical spf tuples,
        # or the union request could become multi-spf and fail where each
        # member alone would not.
        if self.capabilities(pending.backend_name).spf_grids:
            spf_key = request.max_spf
        else:
            spf_key = request.spf_levels
        # Keyed on the *source* dataset's memoized fingerprint plus the cap
        # (equivalent to fingerprinting the taken view, without building and
        # re-hashing a fresh view per request).
        return (
            pending.backend_name,
            model_fingerprint(request.model),
            dataset_fingerprint(request.dataset),
            request.max_samples,
            request.seed,
            request.repeats,
            request.encoder,
            request.max_copies,
            spf_key,
            request.collect_spike_counters,
            request.router_delay,
            request.stochastic_synapses,
            request.link_delay,
        )


def _slice_result(union: EvalResult, request: EvalRequest) -> EvalResult:
    """A member request's result, read off a union-grid result.

    Exact by construction: the union pass is keyed on the same grid maxima,
    so every requested level indexes a nested prefix the member's own pass
    would have produced bit for bit.
    """
    copy_index = np.asarray(
        [union.copy_levels.index(c) for c in request.copy_levels], dtype=int
    )
    spf_index = np.asarray(
        [union.spf_levels.index(s) for s in request.spf_levels], dtype=int
    )
    return EvalResult(
        backend=union.backend,
        copy_levels=request.copy_levels,
        spf_levels=request.spf_levels,
        scores=union.scores[:, copy_index][:, :, spf_index],
        accuracy=union.accuracy[:, copy_index][:, :, spf_index],
        labels=union.labels,
        class_neuron_counts=union.class_neuron_counts,
        cores=union.cores[copy_index],
        seed=request.seed,
        repeats=request.repeats,
        spike_counters=union.spike_counters,
    )
