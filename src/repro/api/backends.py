"""Registered evaluation backends serving the :mod:`repro.api` protocol.

Three backends wrap the repo's three evaluation engines behind one
:class:`~repro.api.protocol.EvaluationBackend` contract:

* ``vectorized`` — :class:`repro.eval.runner.SweepRunner` over
  :class:`repro.eval.engine.VectorizedEvaluator`: the fast functional path
  (folded firing gate, one GEMM per corelet per layer, streamed encoding)
  with the in-memory and on-disk score caches.
* ``reference`` — the kept per-corelet equivalence loop
  (:func:`repro.eval.engine.evaluate_scores_reference`): slow by design,
  never cached, the ground truth the vectorized backend must match bit for
  bit.
* ``chip`` — the batched cycle-accurate TrueNorth simulator
  (:func:`repro.mapping.pipeline.run_chip_inference_multicopy`): all
  deployed copies programmed side by side into one multi-copy chip image,
  lock-step ticks over ``copies x batch`` rows, per-core spike counters,
  router-delay control, and stochastic-synapse sweeps on per-copy LFSR
  streams.  ``ChipBackend(multicopy=False)`` keeps the bit-identical
  one-chip-per-copy loop the property tests pin the engine against.

All three consume the canonical randomness layout documented in
:mod:`repro.api.protocol`, so a request produces the same sampled
connectivities and the same input spike realizations on every backend.
Each backend's ``evaluate`` returns per-repeat *cumulative* score tensors
sliced to the requested grid; the shared helpers here do the slicing and
accuracy derivation so result shapes cannot drift apart between backends.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.api.protocol import (
    BackendCapabilities,
    EvalRequest,
    EvalResult,
    ResultShapeError,
    UnsupportedRequestError,
)
from repro.datasets.base import Dataset
from repro.encoding.stochastic import StochasticEncoder
from repro.eval.engine import class_counts as class_neuron_counts
from repro.eval.engine import evaluate_scores_reference
from repro.eval.runner import ScoreCache, SweepRunner
from repro.mapping.corelet import build_corelets
from repro.mapping.duplication import deploy_with_copies
from repro.mapping.pipeline import (
    program_chip,
    program_chip_multicopy,
    run_chip_inference_batch,
    run_chip_inference_multicopy,
    stochastic_neuron_config,
)
from repro.truenorth.config import NeuronConfig
from repro.utils.rng import new_rng, spawn_rngs


def _check_capabilities(request: EvalRequest, caps: BackendCapabilities) -> None:
    """Reject request features the backend does not implement.

    Raising here (instead of ignoring the feature or quietly delegating to
    another backend) is the protocol's no-silent-fallback rule.
    """
    if request.needs_cycle_accuracy and not caps.cycle_accurate:
        features = []
        if request.collect_spike_counters:
            features.append("collect_spike_counters")
        if request.router_delay is not None:
            features.append(f"router_delay={request.router_delay}")
        if request.stochastic_synapses:
            features.append("stochastic_synapses")
        raise UnsupportedRequestError(
            f"backend {caps.name!r} is not cycle-accurate and cannot serve "
            f"{', '.join(features)}; use the 'chip' backend (or backend='auto')"
        )
    if request.stochastic_synapses and not caps.stochastic_synapses:
        raise UnsupportedRequestError(
            f"backend {caps.name!r} cannot re-sample synapses per tick "
            "(stochastic_synapses); use the 'chip' backend (or backend='auto')"
        )
    if len(request.spf_levels) > 1 and not caps.spf_grids:
        raise UnsupportedRequestError(
            f"backend {caps.name!r} cannot derive a multi-spf grid in one "
            f"pass (requested spf_levels={request.spf_levels}); submit one "
            "request per spf level or use a grid-capable backend"
        )


def _result_from_cumulative(
    request: EvalRequest,
    backend_name: str,
    tensors: List[np.ndarray],
    evaluation: Dataset,
    n_k: np.ndarray,
    cores_per_copy: int,
    spike_counters: Optional[np.ndarray] = None,
    spf_axis_levels: Optional[Tuple[int, ...]] = None,
) -> EvalResult:
    """Slice per-repeat cumulative ``(max_c, max_s, batch, classes)`` tensors
    down to the requested grid and derive the accuracy tensor.

    Every backend funnels through this one helper, which is what keeps the
    result shape (and the accuracy convention: argmax of accumulated
    class-mean scores against the labels) identical across backends.

    ``spf_axis_levels`` names the spf levels the tensors' second axis holds
    when it is not the dense ``1..max_spf`` range (the chip backend reports
    a single level with a singleton axis).

    Raises:
        ResultShapeError: when the copies axis of the cumulative tensors or
            of the spike counters does not cover the requested grid —
            instead of a bare ``IndexError`` (or, worse, silent numpy
            broadcasting) deep inside the slicing below.
    """
    copy_index = np.asarray(request.copy_levels, dtype=int) - 1
    if spf_axis_levels is None:
        spf_index = np.asarray(request.spf_levels, dtype=int) - 1
    else:
        spf_index = np.asarray(
            [spf_axis_levels.index(s) for s in request.spf_levels], dtype=int
        )
    stacked = np.stack(tensors)  # (repeats, max_c, max_s, batch, classes)
    if stacked.ndim != 5 or stacked.shape[1] < request.max_copies:
        raise ResultShapeError(
            f"backend {backend_name!r} produced cumulative tensors of shape "
            f"{stacked.shape}; the request needs a (repeats, >= "
            f"{request.max_copies} copies, spf, batch, classes) tensor"
        )
    if spike_counters is not None:
        batch = len(np.asarray(evaluation.labels))
        if spike_counters.ndim != 4 or spike_counters.shape[:2] != (
            request.repeats,
            request.max_copies,
        ) or spike_counters.shape[3] != batch:
            raise ResultShapeError(
                f"backend {backend_name!r} produced spike counters of shape "
                f"{spike_counters.shape}; expected (repeats="
                f"{request.repeats}, copies={request.max_copies}, "
                f"cores_per_copy, batch={batch})"
            )
    scores = stacked[:, copy_index][:, :, spf_index]
    predictions = scores.argmax(axis=-1)
    labels = np.asarray(evaluation.labels)
    accuracy = (predictions == labels).mean(axis=-1)
    return EvalResult(
        backend=backend_name,
        copy_levels=request.copy_levels,
        spf_levels=request.spf_levels,
        scores=scores,
        accuracy=accuracy,
        labels=labels,
        class_neuron_counts=n_k,
        cores=np.array([c * cores_per_copy for c in request.copy_levels]),
        seed=request.seed,
        repeats=request.repeats,
        spike_counters=spike_counters,
    )


class VectorizedBackend:
    """The fast functional path: ``SweepRunner`` + ``VectorizedEvaluator``.

    Args:
        cache: in-memory score cache shared across requests; ``None`` uses
            the process-global cache.
        cache_dir: optional persistent on-disk score cache directory.
        cache_max_bytes: optional size bound for ``cache_dir`` (mtime-LRU
            eviction, see :class:`repro.eval.runner.DiskScoreCache`).
        workers: fan independent per-repeat passes over N processes.
    """

    name = "vectorized"

    def __init__(
        self,
        cache: Optional[ScoreCache] = None,
        cache_dir: Optional[str] = None,
        cache_max_bytes: Optional[int] = None,
        workers: Optional[int] = None,
    ):
        self.cache = cache
        self.cache_dir = cache_dir
        self.cache_max_bytes = cache_max_bytes
        self.workers = workers
        #: engine passes actually computed (cache-served requests excluded).
        self.passes = 0
        #: one long-lived runner per grid config, so the disk cache (and its
        #: hit/miss/eviction telemetry) persists across requests instead of
        #: being rebuilt per call.
        self._runners: Dict[Tuple, SweepRunner] = {}

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name=self.name,
            description=(
                "vectorized multi-copy engine (folded gate, streamed "
                "encoding, score caches)"
            ),
            spf_grids=True,
            cycle_accurate=False,
            cacheable=True,
        )

    def _runner(self, request: EvalRequest) -> SweepRunner:
        key = (request.copy_levels, request.spf_levels, request.repeats)
        runner = self._runners.get(key)
        if runner is None:
            runner = SweepRunner(
                copy_levels=request.copy_levels,
                spf_levels=request.spf_levels,
                repeats=request.repeats,
                cache=self.cache,
                cache_dir=self.cache_dir,
                cache_max_bytes=self.cache_max_bytes,
            )
            self._runners[key] = runner
        return runner

    def evaluate(self, request: EvalRequest) -> EvalResult:
        _check_capabilities(request, self.capabilities())
        evaluation = request.evaluation_dataset()
        runner = self._runner(request)
        cache_hits_before = runner.cache.hits + (
            runner.disk_cache.hits if runner.disk_cache is not None else 0
        )
        tensors = runner.cumulative_scores(
            request.model, evaluation, rng=request.seed, workers=self.workers
        )
        cache_hits_after = runner.cache.hits + (
            runner.disk_cache.hits if runner.disk_cache is not None else 0
        )
        if cache_hits_after == cache_hits_before:
            self.passes += 1
        network = build_corelets(request.model)
        return _result_from_cumulative(
            request,
            self.name,
            list(tensors),
            evaluation,
            class_neuron_counts(network),
            request.model.architecture.cores_per_network,
        )


class ReferenceBackend:
    """The kept per-corelet equivalence loop — slow, uncached ground truth.

    Never served from a cache: its whole point is to recompute from first
    principles so the vectorized backend has something independent to be
    bit-identical against.
    """

    name = "reference"

    def __init__(self) -> None:
        self.passes = 0

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name=self.name,
            description="per-(copy, frame, corelet) reference loop (uncached)",
            spf_grids=True,
            cycle_accurate=False,
            cacheable=False,
        )

    def evaluate(self, request: EvalRequest) -> EvalResult:
        _check_capabilities(request, self.capabilities())
        evaluation = request.evaluation_dataset()
        network = build_corelets(request.model)
        tensors: List[np.ndarray] = []
        self.passes += 1
        for repeat_rng in spawn_rngs(new_rng(request.seed), request.repeats):
            deployment = deploy_with_copies(
                request.model,
                copies=request.max_copies,
                rng=repeat_rng,
                corelet_network=network,
            )
            scores = evaluate_scores_reference(
                deployment.copies,
                evaluation.features,
                request.max_spf,
                rng=repeat_rng,
            )
            tensors.append(np.cumsum(np.cumsum(scores, axis=0), axis=1))
        return _result_from_cumulative(
            request,
            self.name,
            tensors,
            evaluation,
            class_neuron_counts(network),
            network.core_count,
        )


class ChipBackend:
    """The cycle-accurate path: batched TrueNorth chip simulation.

    By default (``multicopy=True``) all requested copies are programmed
    side by side into **one** multi-copy chip image
    (:func:`~repro.mapping.pipeline.program_chip_multicopy`: stacked
    per-core crossbar tensors, shared route table, per-copy LFSR streams)
    and the whole ``copies x batch`` volume advances in lock-step ticks
    (:func:`~repro.mapping.pipeline.run_chip_inference_multicopy`).
    ``multicopy=False`` keeps the one-chip-per-copy loop — bit-identical
    results (class counts, per-core spike counters, and in stochastic mode
    the LFSR streams; the property tests enforce it), just C chip programs
    and C tick loops instead of one.

    ``stochastic_synapses`` requests deploy the corelets' Bernoulli
    probabilities onto the crossbars and re-sample every synapse per tick;
    each copy draws from its own seeded LFSR stream, so (copies, spf)
    stochastic sweeps run at batch speed with hardware semantics.

    The chip reports no per-tick score breakdown, so a request may carry
    only a single spf level (``spf_grids=False``); copy levels are served
    as nested prefixes via an exact integer cumsum over the per-copy
    readout counts.  Scores are the class-mean convention ``counts / n_k``,
    so :meth:`EvalResult.class_counts` recovers the chip's integer readout
    counts exactly — the cross-backend invariant the property tests assert
    against the vectorized backend.
    """

    name = "chip"

    def __init__(self, multicopy: bool = True) -> None:
        self.multicopy = bool(multicopy)
        self.passes = 0

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name=self.name,
            description=(
                "batched cycle-accurate TrueNorth simulation (multi-copy "
                "chip images, spike counters, router delay, stochastic "
                "synapses)"
                if self.multicopy
                else "batched cycle-accurate TrueNorth simulation (one chip "
                "per copy, spike counters, router delay, stochastic "
                "synapses)"
            ),
            spf_grids=False,
            cycle_accurate=True,
            cacheable=False,
            multicopy_chips=self.multicopy,
            stochastic_synapses=True,
        )

    def _run_multicopy(
        self,
        deployment,
        volumes: np.ndarray,
        request: EvalRequest,
        neuron_config: Optional[NeuronConfig],
        copy_seeds: Optional[List[int]],
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """One multi-copy chip pass -> ``(counts, counters)``.

        ``counts`` is ``(copies, batch, classes)``; ``counters`` is
        ``(copies, cores_per_copy, batch)`` or ``None``.
        """
        chip, core_ids = program_chip_multicopy(
            deployment.copies,
            neuron_config=neuron_config,
            router_delay=request.router_delay,
        )
        counts = run_chip_inference_multicopy(
            chip, deployment.copies, core_ids, volumes, copy_seeds=copy_seeds
        )
        counters = None
        if request.collect_spike_counters:
            flat_ids = [cid for layer in core_ids for cid in layer]
            counters = np.stack(
                [chip.core(cid).multicopy_spike_counts for cid in flat_ids],
                axis=1,
            )
        return counts, counters

    def _run_percopy(
        self,
        deployment,
        volumes: np.ndarray,
        request: EvalRequest,
        neuron_config: Optional[NeuronConfig],
        copy_seeds: Optional[List[int]],
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """The kept one-chip-per-copy loop -> ``(counts, counters)``."""
        per_copy_counts: List[np.ndarray] = []
        per_copy_counters: List[np.ndarray] = []
        for index, copy in enumerate(deployment.copies):
            chip, core_ids = program_chip(
                copy,
                neuron_config=neuron_config,
                router_delay=request.router_delay,
                core_seed=0 if copy_seeds is None else copy_seeds[index],
            )
            per_copy_counts.append(
                run_chip_inference_batch(chip, copy, core_ids, volumes)
            )
            if request.collect_spike_counters:
                flat_ids = [cid for layer in core_ids for cid in layer]
                per_copy_counters.append(
                    np.stack(
                        [chip.core(cid).batch_spike_counts for cid in flat_ids]
                    )
                )
        counters = (
            np.stack(per_copy_counters) if request.collect_spike_counters else None
        )
        return np.stack(per_copy_counts), counters

    def evaluate(self, request: EvalRequest) -> EvalResult:
        _check_capabilities(request, self.capabilities())
        evaluation = request.evaluation_dataset()
        network = build_corelets(request.model)
        n_k = class_neuron_counts(network)
        spf = request.max_spf
        encoder = StochasticEncoder(spikes_per_frame=spf)
        neuron_config = (
            stochastic_neuron_config(network)
            if request.stochastic_synapses
            else None
        )
        tensors: List[np.ndarray] = []
        counter_repeats: List[np.ndarray] = []
        self.passes += 1
        run = self._run_multicopy if self.multicopy else self._run_percopy
        for repeat_rng in spawn_rngs(new_rng(request.seed), request.repeats):
            deployment = deploy_with_copies(
                request.model,
                copies=request.max_copies,
                rng=repeat_rng,
                corelet_network=network,
            )
            frames = encoder.encode(evaluation.features, rng=repeat_rng)
            volumes = np.ascontiguousarray(frames.transpose(1, 0, 2))
            copy_seeds = None
            if request.stochastic_synapses:
                # Drawn after deployment and encoding so deterministic
                # requests keep their exact historical streams; identical
                # in both chip modes, which is what keeps them
                # bit-identical to each other.  Sampled *without*
                # replacement — the LFSR seed space is only 16 bits, and
                # two copies sharing a seed would replay byte-identical
                # streams, silently collapsing the copies-averaging
                # statistic the sweep measures.
                copy_seeds = [
                    int(seed)
                    for seed in repeat_rng.choice(
                        np.arange(1, 2**16),
                        size=request.max_copies,
                        replace=False,
                    )
                ]
            counts, counters = run(
                deployment, volumes, request, neuron_config, copy_seeds
            )
            cumulative = np.cumsum(counts, axis=0)
            # (max_copies, batch, classes) ints -> class-mean score tensor
            # with a singleton spf axis; the integer counts stay exactly
            # recoverable through EvalResult.class_counts().
            tensors.append(cumulative[:, None].astype(float) / n_k)
            if request.collect_spike_counters:
                counter_repeats.append(counters)
        spike_counters = (
            np.stack(counter_repeats) if request.collect_spike_counters else None
        )
        return _result_from_cumulative(
            request,
            self.name,
            tensors,
            evaluation,
            n_k,
            network.core_count,
            spike_counters=spike_counters,
            spf_axis_levels=(spf,),
        )


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Callable[..., object]] = {}


def register_backend(name: str, factory: Callable[..., object]) -> None:
    """Register an :class:`EvaluationBackend` factory under ``name``.

    Re-registering a name replaces the factory (useful for tests and for
    out-of-tree backends like a future GPU engine).
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"backend name must be a non-empty string, got {name!r}")
    _REGISTRY[name] = factory


def backend_names() -> Tuple[str, ...]:
    """Names of all registered backends (sorted)."""
    return tuple(sorted(_REGISTRY))


def create_backend(name: str, **config) -> object:
    """Instantiate a registered backend by name.

    Keyword arguments are passed to the backend factory (e.g. ``cache_dir``
    for the vectorized backend).
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown evaluation backend {name!r}; registered: {backend_names()}"
        ) from None
    return factory(**config)


register_backend("vectorized", VectorizedBackend)
register_backend("reference", ReferenceBackend)
register_backend("chip", ChipBackend)
