"""Registered evaluation backends serving the :mod:`repro.api` protocol.

Four backends wrap the repo's evaluation engines behind one
:class:`~repro.api.protocol.EvaluationBackend` contract:

* ``vectorized`` — :class:`repro.eval.runner.SweepRunner` over
  :class:`repro.eval.engine.VectorizedEvaluator`: the fast functional path
  (folded firing gate, one GEMM per corelet per layer, streamed encoding)
  with the in-memory and on-disk score caches.
* ``reference`` — the kept per-corelet equivalence loop
  (:func:`repro.eval.engine.evaluate_scores_reference`): slow by design,
  never cached, the ground truth the vectorized backend must match bit for
  bit.
* ``chip`` — the batched cycle-accurate TrueNorth simulator
  (:func:`repro.mapping.pipeline.run_chip_inference_multicopy`): all
  deployed copies of **all repeats** programmed side by side into one
  multi-copy chip image per spf level, lock-step ticks over
  ``repeats x copies x batch`` rows, per-core spike counters,
  router-delay control, and stochastic-synapse sweeps on per-copy LFSR
  streams.  Full ``(copies, spf, repeats)`` grids are served in
  ``len(spf_levels)`` passes (one folded pass per level, optionally
  fanned over worker processes); copy and repeat levels fall out of one
  pass via exact integer cumsums.  ``ChipBackend(multicopy=False)``
  keeps the bit-identical one-chip-per-copy loop the property tests pin
  the engine against.
* ``board`` — the multi-chip board mesh
  (:func:`repro.mapping.pipeline.run_board_inference_multicopy`):
  duplication sweeps whose core footprint overflows one chip spill onto a
  mesh of chips, boundary-crossing spikes pay a configurable per-hop link
  delay, and ``workers=N`` shards each pass over its placement segments
  (one worker per simulated chip group).  On a 1x1 board with ideal
  links it is bit-identical to ``chip``.

All four consume the canonical randomness layout documented in
:mod:`repro.api.protocol`, so a request produces the same sampled
connectivities and the same input spike realizations on every backend.
Each backend's ``evaluate`` returns per-repeat *cumulative* score tensors
sliced to the requested grid; the shared helpers here do the slicing and
accuracy derivation so result shapes cannot drift apart between backends.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.api.protocol import (
    BackendCapabilities,
    EvalRequest,
    EvalResult,
    ResultShapeError,
    UnsupportedRequestError,
)
from repro.board.topology import BoardConfig, board_shape_for
from repro.core.model import TrueNorthModel
from repro.datasets.base import Dataset
from repro.encoding.stochastic import StochasticEncoder
from repro.eval.engine import class_counts as class_neuron_counts
from repro.eval.engine import evaluate_scores_reference
from repro.eval.runner import ScoreCache, SweepRunner, parallel_map
from repro.mapping.corelet import CoreletNetwork, build_corelets
from repro.mapping.duplication import DuplicatedDeployment, deploy_with_copies
from repro.mapping.placement import place_on_board
from repro.mapping.pipeline import (
    board_spike_counters,
    program_board_multicopy,
    program_chip,
    program_chip_multicopy,
    run_board_inference_multicopy,
    run_chip_inference_batch,
    run_chip_inference_multicopy,
    stochastic_neuron_config,
)
from repro.truenorth.config import ChipConfig
from repro.utils.rng import clone_rng, new_rng, spawn_rngs


def _check_capabilities(request: EvalRequest, caps: BackendCapabilities) -> None:
    """Reject request features the backend does not implement.

    Raising here (instead of ignoring the feature or quietly delegating to
    another backend) is the protocol's no-silent-fallback rule.
    """
    if request.needs_board_mesh and not caps.board_mesh:
        raise UnsupportedRequestError(
            f"backend {caps.name!r} cannot simulate inter-chip mesh links "
            f"(link_delay={request.link_delay}); use the 'board' backend "
            "(or backend='auto')"
        )
    if request.needs_cycle_accuracy and not caps.cycle_accurate:
        features = []
        if request.collect_spike_counters:
            features.append("collect_spike_counters")
        if request.router_delay is not None:
            features.append(f"router_delay={request.router_delay}")
        if request.stochastic_synapses:
            features.append("stochastic_synapses")
        if request.link_delay is not None:
            features.append(f"link_delay={request.link_delay}")
        raise UnsupportedRequestError(
            f"backend {caps.name!r} is not cycle-accurate and cannot serve "
            f"{', '.join(features)}; use the 'chip' backend (or backend='auto')"
        )
    if (
        caps.cycle_accurate
        and not caps.multi_chip_copies
        and caps.cores_per_chip is not None
        and request.max_copies * request.model.architecture.cores_per_network
        > caps.cores_per_chip
    ):
        raise UnsupportedRequestError(
            f"request needs {request.max_copies} copies x "
            f"{request.model.architecture.cores_per_network} cores, which "
            f"overflows backend {caps.name!r}'s single "
            f"{caps.cores_per_chip}-core chip; use the 'board' backend "
            "(or backend='auto')"
        )
    if request.stochastic_synapses and not caps.stochastic_synapses:
        raise UnsupportedRequestError(
            f"backend {caps.name!r} cannot re-sample synapses per tick "
            "(stochastic_synapses); use the 'chip' backend (or backend='auto')"
        )
    if len(request.spf_levels) > 1 and not caps.spf_grids:
        raise UnsupportedRequestError(
            f"backend {caps.name!r} cannot derive a multi-spf grid in one "
            f"pass (requested spf_levels={request.spf_levels}); submit one "
            "request per spf level or use a grid-capable backend"
        )


def _result_from_cumulative(
    request: EvalRequest,
    backend_name: str,
    tensors: List[np.ndarray],
    evaluation: Dataset,
    n_k: np.ndarray,
    cores_per_copy: int,
    spike_counters: Optional[np.ndarray] = None,
    spf_axis_levels: Optional[Tuple[int, ...]] = None,
) -> EvalResult:
    """Slice per-repeat cumulative ``(max_c, max_s, batch, classes)`` tensors
    down to the requested grid and derive the accuracy tensor.

    Every backend funnels through this one helper, which is what keeps the
    result shape (and the accuracy convention: argmax of accumulated
    class-mean scores against the labels) identical across backends.

    ``spf_axis_levels`` names the spf levels the tensors' second axis holds
    when it is not the dense ``1..max_spf`` range (the chip backend reports
    a single level with a singleton axis).

    Raises:
        ResultShapeError: when the copies axis of the cumulative tensors or
            of the spike counters does not cover the requested grid —
            instead of a bare ``IndexError`` (or, worse, silent numpy
            broadcasting) deep inside the slicing below.
    """
    copy_index = np.asarray(request.copy_levels, dtype=int) - 1
    if spf_axis_levels is None:
        spf_index = np.asarray(request.spf_levels, dtype=int) - 1
    else:
        spf_index = np.asarray(
            [spf_axis_levels.index(s) for s in request.spf_levels], dtype=int
        )
    stacked = np.stack(tensors)  # (repeats, max_c, max_s, batch, classes)
    if stacked.ndim != 5 or stacked.shape[1] < request.max_copies:
        raise ResultShapeError(
            f"backend {backend_name!r} produced cumulative tensors of shape "
            f"{stacked.shape}; the request needs a (repeats, >= "
            f"{request.max_copies} copies, spf, batch, classes) tensor"
        )
    if spike_counters is not None:
        batch = len(np.asarray(evaluation.labels))
        if spike_counters.ndim != 4 or spike_counters.shape[:2] != (
            request.repeats,
            request.max_copies,
        ) or spike_counters.shape[3] != batch:
            raise ResultShapeError(
                f"backend {backend_name!r} produced spike counters of shape "
                f"{spike_counters.shape}; expected (repeats="
                f"{request.repeats}, copies={request.max_copies}, "
                f"cores_per_copy, batch={batch})"
            )
    scores = stacked[:, copy_index][:, :, spf_index]
    predictions = scores.argmax(axis=-1)
    labels = np.asarray(evaluation.labels)
    accuracy = (predictions == labels).mean(axis=-1)
    return EvalResult(
        backend=backend_name,
        copy_levels=request.copy_levels,
        spf_levels=request.spf_levels,
        scores=scores,
        accuracy=accuracy,
        labels=labels,
        class_neuron_counts=n_k,
        cores=np.array([c * cores_per_copy for c in request.copy_levels]),
        seed=request.seed,
        repeats=request.repeats,
        spike_counters=spike_counters,
    )


class VectorizedBackend:
    """The fast functional path: ``SweepRunner`` + ``VectorizedEvaluator``.

    Args:
        cache: in-memory score cache shared across requests; ``None`` uses
            the process-global cache.
        cache_dir: optional persistent on-disk score cache directory.
        cache_max_bytes: optional size bound for ``cache_dir`` (mtime-LRU
            eviction, see :class:`repro.eval.runner.DiskScoreCache`).
        workers: fan independent per-repeat passes over N processes.
    """

    name = "vectorized"

    def __init__(
        self,
        cache: Optional[ScoreCache] = None,
        cache_dir: Optional[str] = None,
        cache_max_bytes: Optional[int] = None,
        workers: Optional[int] = None,
    ):
        self.cache = cache
        self.cache_dir = cache_dir
        self.cache_max_bytes = cache_max_bytes
        self.workers = workers
        #: engine passes actually computed (cache-served requests excluded).
        self.passes = 0
        #: one long-lived runner per grid config, so the disk cache (and its
        #: hit/miss/eviction telemetry) persists across requests instead of
        #: being rebuilt per call.
        self._runners: Dict[Tuple, SweepRunner] = {}

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name=self.name,
            description=(
                "vectorized multi-copy engine (folded gate, streamed "
                "encoding, score caches)"
            ),
            spf_grids=True,
            cycle_accurate=False,
            cacheable=True,
        )

    def _runner(self, request: EvalRequest) -> SweepRunner:
        key = (request.copy_levels, request.spf_levels, request.repeats)
        runner = self._runners.get(key)
        if runner is None:
            runner = SweepRunner(
                copy_levels=request.copy_levels,
                spf_levels=request.spf_levels,
                repeats=request.repeats,
                cache=self.cache,
                cache_dir=self.cache_dir,
                cache_max_bytes=self.cache_max_bytes,
            )
            self._runners[key] = runner
        return runner

    def evaluate(self, request: EvalRequest) -> EvalResult:
        _check_capabilities(request, self.capabilities())
        evaluation = request.evaluation_dataset()
        runner = self._runner(request)
        cache_hits_before = runner.cache.hits + (
            runner.disk_cache.hits if runner.disk_cache is not None else 0
        )
        tensors = runner.cumulative_scores(
            request.model, evaluation, rng=request.seed, workers=self.workers
        )
        cache_hits_after = runner.cache.hits + (
            runner.disk_cache.hits if runner.disk_cache is not None else 0
        )
        if cache_hits_after == cache_hits_before:
            self.passes += 1
        network = build_corelets(request.model)
        return _result_from_cumulative(
            request,
            self.name,
            list(tensors),
            evaluation,
            class_neuron_counts(network),
            request.model.architecture.cores_per_network,
        )


class ReferenceBackend:
    """The kept per-corelet equivalence loop — slow, uncached ground truth.

    Never served from a cache: its whole point is to recompute from first
    principles so the vectorized backend has something independent to be
    bit-identical against.
    """

    name = "reference"

    def __init__(self) -> None:
        self.passes = 0

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name=self.name,
            description="per-(copy, frame, corelet) reference loop (uncached)",
            spf_grids=True,
            cycle_accurate=False,
            cacheable=False,
        )

    def evaluate(self, request: EvalRequest) -> EvalResult:
        _check_capabilities(request, self.capabilities())
        evaluation = request.evaluation_dataset()
        network = build_corelets(request.model)
        tensors: List[np.ndarray] = []
        self.passes += 1
        for repeat_rng in spawn_rngs(new_rng(request.seed), request.repeats):
            deployment = deploy_with_copies(
                request.model,
                copies=request.max_copies,
                rng=repeat_rng,
                corelet_network=network,
            )
            scores = evaluate_scores_reference(
                deployment.copies,
                evaluation.features,
                request.max_spf,
                rng=repeat_rng,
            )
            tensors.append(np.cumsum(np.cumsum(scores, axis=0), axis=1))
        return _result_from_cumulative(
            request,
            self.name,
            tensors,
            evaluation,
            class_neuron_counts(network),
            network.core_count,
        )


def _evaluate_chip_level(
    model: TrueNorthModel,
    features: np.ndarray,
    spf: int,
    repeat_rngs: List[np.random.Generator],
    network: CoreletNetwork,
    max_copies: int,
    multicopy: bool,
    stochastic: bool,
    collect_counters: bool,
    router_delay: Optional[int],
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """One spf level of a chip grid: all repeats folded into one pass.

    Module-level (not a method) so :func:`repro.eval.runner.parallel_map`
    can pickle it into worker processes — the chip backend shards over spf
    levels, whose passes are fully independent (each clones the pristine
    per-repeat generators, see :func:`repro.utils.rng.clone_rng`).

    Returns ``(counts, counters)`` with ``counts`` shaped
    ``(repeats, max_copies, batch, classes)`` (integer readout counts) and
    ``counters`` shaped ``(repeats, max_copies, cores_per_copy, batch)`` or
    ``None``.  In multicopy mode the ``repeats * max_copies`` copies of all
    repeats are programmed side by side into **one** chip image and the
    stacked per-repeat input volumes ride the chip's grouped-input form
    (repeat ``r``'s volume feeds exactly its block of ``max_copies``
    copy rows); ``multicopy=False`` keeps the one-chip-per-copy loop.
    """
    encoder = StochasticEncoder(spikes_per_frame=spf)
    neuron_config = stochastic_neuron_config(network) if stochastic else None
    repeats = len(repeat_rngs)
    deployments: List[DuplicatedDeployment] = []
    volumes: List[np.ndarray] = []
    copy_seeds: Optional[List[int]] = [] if stochastic else None
    for rng in repeat_rngs:
        level_rng = clone_rng(rng)
        deployments.append(
            deploy_with_copies(
                model, copies=max_copies, rng=level_rng, corelet_network=network
            )
        )
        frames = encoder.encode(features, rng=level_rng)
        volumes.append(np.ascontiguousarray(frames.transpose(1, 0, 2)))
        if copy_seeds is not None:
            # Drawn after deployment and encoding so deterministic requests
            # keep their exact historical streams; identical in both chip
            # modes, which is what keeps them bit-identical to each other.
            # Sampled *without* replacement — the LFSR seed space is only
            # 16 bits, and two copies sharing a seed would replay
            # byte-identical streams, silently collapsing the
            # copies-averaging statistic the sweep measures.  (Repeats may
            # collide with each other — they always could, being
            # independent draws.)
            copy_seeds.extend(
                int(seed)
                for seed in level_rng.choice(
                    np.arange(1, 2**16), size=max_copies, replace=False
                )
            )
    batch = volumes[0].shape[0]
    if multicopy:
        flat_copies = [copy for d in deployments for copy in d.copies]
        chip, core_ids = program_chip_multicopy(
            flat_copies, neuron_config=neuron_config, router_delay=router_delay
        )
        counts = run_chip_inference_multicopy(
            chip, flat_copies, core_ids, np.stack(volumes), copy_seeds=copy_seeds
        )
        counters = None
        if collect_counters:
            flat_ids = [cid for layer in core_ids for cid in layer]
            stacked = np.stack(
                [chip.core(cid).multicopy_spike_counts for cid in flat_ids],
                axis=1,
            )  # (repeats * max_copies, cores_per_copy, batch)
            counters = stacked.reshape(
                (repeats, max_copies) + stacked.shape[1:]
            )
        return counts.reshape(repeats, max_copies, batch, -1), counters
    per_repeat_counts: List[np.ndarray] = []
    per_repeat_counters: List[np.ndarray] = []
    for index, deployment in enumerate(deployments):
        per_copy_counts: List[np.ndarray] = []
        per_copy_counters: List[np.ndarray] = []
        for offset, copy in enumerate(deployment.copies):
            chip, core_ids = program_chip(
                copy,
                neuron_config=neuron_config,
                router_delay=router_delay,
                core_seed=0
                if copy_seeds is None
                else copy_seeds[index * max_copies + offset],
            )
            per_copy_counts.append(
                run_chip_inference_batch(chip, copy, core_ids, volumes[index])
            )
            if collect_counters:
                flat_ids = [cid for layer in core_ids for cid in layer]
                per_copy_counters.append(
                    np.stack(
                        [chip.core(cid).batch_spike_counts for cid in flat_ids]
                    )
                )
        per_repeat_counts.append(np.stack(per_copy_counts))
        if collect_counters:
            per_repeat_counters.append(np.stack(per_copy_counters))
    return (
        np.stack(per_repeat_counts),
        np.stack(per_repeat_counters) if collect_counters else None,
    )


class ChipBackend:
    """The cycle-accurate path: batched TrueNorth chip simulation.

    By default (``multicopy=True``) the requested copies of **all repeats**
    are programmed side by side into **one** multi-copy chip image
    (:func:`~repro.mapping.pipeline.program_chip_multicopy`: stacked
    per-core crossbar tensors, shared route table, per-copy LFSR streams)
    and the whole ``repeats x copies x batch`` volume advances in
    lock-step ticks (:func:`~repro.mapping.pipeline.run_chip_inference_multicopy`,
    grouped-input form: repeat ``r``'s encoded volume feeds exactly its
    block of copy rows).  ``multicopy=False`` keeps the one-chip-per-copy
    loop — bit-identical results (class counts, per-core spike counters,
    and in stochastic mode the LFSR streams; the property tests enforce
    it), just ``repeats x copies`` chip programs and tick loops instead of
    ``len(spf_levels)``.

    ``stochastic_synapses`` requests deploy the corelets' Bernoulli
    probabilities onto the crossbars and re-sample every synapse per tick;
    each copy of each repeat draws from its own seeded LFSR stream, so
    (copies, spf, repeats) stochastic sweeps run at batch speed with
    hardware semantics.

    Full grids are served in ``len(spf_levels)`` passes (``spf_grids``
    capability): spike-train realizations differ per spf level, so levels
    cannot share one pass, but they are fully independent — each level
    re-consumes the pristine per-repeat generators (:func:`repro.utils.rng.clone_rng`),
    and ``workers=N`` fans the levels over worker processes
    (:func:`repro.eval.runner.parallel_map`), bit-identical at any worker
    count.  Copy and repeat levels fall out of one pass: copy levels are
    nested prefixes via an exact integer cumsum over the per-copy readout
    counts, repeats are independent rows of the folded image.  Scores are
    the class-mean convention ``counts / n_k``, so
    :meth:`EvalResult.class_counts` recovers the chip's integer readout
    counts exactly — the cross-backend invariant the property tests assert
    against the vectorized backend.

    Args:
        multicopy: fold copies (and repeats) into one chip image per spf
            level; ``False`` keeps the one-chip-per-copy loop.
        workers: fan the independent spf-level passes over N processes
            (``None`` = in-process, sequential).
        cores_per_chip: advertised core budget of the one simulated chip
            (default: a stock TrueNorth chip's 64x64 grid).  Requests whose
            ``max_copies x cores_per_network`` footprint overflows it are
            rejected with a pointer at the ``board`` backend — the budget
            is what makes ``backend='auto'`` route chip-overflowing
            duplication sweeps to the board.
    """

    name = "chip"

    def __init__(
        self,
        multicopy: bool = True,
        workers: Optional[int] = None,
        cores_per_chip: Optional[int] = None,
    ) -> None:
        self.multicopy = bool(multicopy)
        self.workers = workers
        self.cores_per_chip = (
            int(cores_per_chip)
            if cores_per_chip is not None
            else ChipConfig().capacity
        )
        self.passes = 0

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name=self.name,
            description=(
                "batched cycle-accurate TrueNorth simulation (repeat-folded "
                "multi-copy chip images, one pass per spf level, spike "
                "counters, router delay, stochastic synapses)"
                if self.multicopy
                else "batched cycle-accurate TrueNorth simulation (one chip "
                "per copy, one pass per spf level, spike counters, router "
                "delay, stochastic synapses)"
            ),
            spf_grids=True,
            cycle_accurate=True,
            cacheable=False,
            multicopy_chips=self.multicopy,
            stochastic_synapses=True,
            cores_per_chip=self.cores_per_chip,
        )

    def evaluate(self, request: EvalRequest) -> EvalResult:
        _check_capabilities(request, self.capabilities())
        evaluation = request.evaluation_dataset()
        network = build_corelets(request.model)
        n_k = class_neuron_counts(network)
        self.passes += 1
        repeat_rngs = spawn_rngs(new_rng(request.seed), request.repeats)
        level_results = parallel_map(
            _evaluate_chip_level,
            [
                (
                    request.model,
                    evaluation.features,
                    spf,
                    repeat_rngs,
                    network,
                    request.max_copies,
                    self.multicopy,
                    request.stochastic_synapses,
                    request.collect_spike_counters,
                    request.router_delay,
                )
                for spf in request.spf_levels
            ],
            self.workers,
        )
        tensors: List[np.ndarray] = []
        for repeat in range(request.repeats):
            stacked = np.stack(
                [
                    np.cumsum(counts[repeat], axis=0)
                    for counts, _ in level_results
                ],
                axis=1,
            )
            # (max_copies, n_levels, batch, classes) ints -> class-mean
            # score tensor; the integer counts stay exactly recoverable
            # through EvalResult.class_counts().
            tensors.append(stacked.astype(float) / n_k)
        spike_counters = None
        if request.collect_spike_counters:
            # spf_levels is sorted ascending; the counters of the largest
            # level are the ones a single-level request at max_spf reports.
            spike_counters = level_results[-1][1]
        return _result_from_cumulative(
            request,
            self.name,
            tensors,
            evaluation,
            n_k,
            network.core_count,
            spike_counters=spike_counters,
            spf_axis_levels=request.spf_levels,
        )


def _evaluate_board_pass(
    model: TrueNorthModel,
    features: np.ndarray,
    spf: int,
    repeat_rng: np.random.Generator,
    network: CoreletNetwork,
    max_copies: int,
    stochastic: bool,
    collect_counters: bool,
    router_delay: Optional[int],
    board_config: BoardConfig,
    segment_indices: Optional[Tuple[int, ...]] = None,
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """One (spf, repeat[, placement segment]) pass over a board.

    Module-level so :func:`repro.eval.runner.parallel_map` can pickle it
    into worker processes.  The per-repeat randomness discipline is exactly
    :func:`_evaluate_chip_level`'s — clone the pristine repeat generator,
    deploy ``max_copies`` copies, encode the spike volume, then (stochastic
    mode) draw the per-copy LFSR seeds — so a 1x1 board with ideal links
    reproduces the chip backend bit for bit, and every worker of a sharded
    pass replays identical streams.

    ``segment_indices`` restricts programming (and hence simulation) to a
    subset of the deterministic placement's segments at their original
    board chip indices; the returned counts/counters are zero outside the
    segment's copies, so a fan-out over all segments merges by summation.

    Returns ``(counts, counters)``: ``(max_copies, batch, classes)`` integer
    readout counts and ``(max_copies, cores_per_copy, batch)`` spike
    counters (or ``None``).
    """
    encoder = StochasticEncoder(spikes_per_frame=spf)
    neuron_config = stochastic_neuron_config(network) if stochastic else None
    level_rng = clone_rng(repeat_rng)
    deployment = deploy_with_copies(
        model, copies=max_copies, rng=level_rng, corelet_network=network
    )
    frames = encoder.encode(features, rng=level_rng)
    volume = np.ascontiguousarray(frames.transpose(1, 0, 2))
    copy_seeds: Optional[List[int]] = None
    if stochastic:
        # Same post-deploy/encode draw (and no-replacement rule) as the
        # chip backend — see _evaluate_chip_level.
        copy_seeds = [
            int(seed)
            for seed in level_rng.choice(
                np.arange(1, 2**16), size=max_copies, replace=False
            )
        ]
    board, program = program_board_multicopy(
        deployment.copies,
        board_config,
        neuron_config=neuron_config,
        router_delay=router_delay,
        segment_indices=segment_indices,
    )
    counts = run_board_inference_multicopy(
        board, deployment.copies, program, volume, copy_seeds=copy_seeds
    )
    counters = (
        board_spike_counters(board, deployment.copies, program)
        if collect_counters
        else None
    )
    return counts, counters


class BoardBackend:
    """Cycle-accurate multi-chip board simulation with mesh link delays.

    The board-scale sibling of :class:`ChipBackend`: each requested copy
    level places onto a mesh of TrueNorth chips
    (:func:`~repro.mapping.placement.place_on_board`), so duplication
    sweeps extend past one chip's core budget — whole copies stack onto
    shared chips as multi-copy images, copies larger than a chip shard
    over consecutive chips, and every boundary-crossing spike pays
    ``link_delay`` ticks per mesh hop on top of the router delay
    (:class:`repro.board.board.Board`, exact latency model asserted).

    Unlike the chip backend, repeats are *not* folded into one image:
    every ``(spf level, repeat)`` is one board pass (placement depends
    only on the copy count, so all passes share one deterministic
    placement).  On a 1x1 board with ideal links each pass is
    bit-identical to the single-chip engine, which transfers the chip
    backend's equivalence guarantees to the board (the property tests pin
    it).

    ``workers=N`` shards every pass over its placement segments — one
    worker process per segment (per simulated chip group), each
    re-deploying the pass's copies from the same cloned generator and
    programming only its own segment at the original board indices; the
    per-copy results merge by summation at the readout, bit-identically
    at any worker count.

    Args:
        chip_config: configuration of every chip on the board (default: a
            stock 64x64-core TrueNorth chip).
        board_shape: fixed mesh shape ``(rows, cols)``; by default each
            request gets the smallest square-ish board that fits its
            largest copy level (:func:`repro.board.topology.board_shape_for`).
        link_delay: default mesh link delay (ticks per chip hop) when the
            request does not carry one; ``EvalRequest.link_delay``
            overrides it per request.
        workers: fan each pass's placement segments over N processes
            (``None`` = in-process, sequential).
    """

    name = "board"

    def __init__(
        self,
        chip_config: Optional[ChipConfig] = None,
        board_shape: Optional[Tuple[int, int]] = None,
        link_delay: int = 0,
        workers: Optional[int] = None,
    ) -> None:
        if link_delay < 0:
            raise ValueError(f"link_delay must be >= 0, got {link_delay}")
        self.chip_config = chip_config or ChipConfig()
        self.board_shape = board_shape
        self.link_delay = int(link_delay)
        self.workers = workers
        self.passes = 0

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name=self.name,
            description=(
                "cycle-accurate multi-chip board mesh (copies spill across "
                "chips, split copies hand off at chip edges, mesh link "
                "delays, spike counters, stochastic synapses)"
            ),
            spf_grids=True,
            cycle_accurate=True,
            cacheable=False,
            multicopy_chips=True,
            stochastic_synapses=True,
            board_mesh=True,
            multi_chip_copies=True,
            cores_per_chip=self.chip_config.capacity,
        )

    def _board_config(self, network: CoreletNetwork, copies: int) -> BoardConfig:
        shape = self.board_shape
        if shape is None:
            shape = board_shape_for(network.core_count, copies, self.chip_config)
        return BoardConfig(
            grid_shape=shape,
            chip_config=self.chip_config,
            link_delay=self.link_delay,
        )

    def evaluate(self, request: EvalRequest) -> EvalResult:
        _check_capabilities(request, self.capabilities())
        evaluation = request.evaluation_dataset()
        network = build_corelets(request.model)
        n_k = class_neuron_counts(network)
        self.passes += 1
        repeat_rngs = spawn_rngs(new_rng(request.seed), request.repeats)
        board_config = self._board_config(network, request.max_copies)
        if request.link_delay is not None:
            board_config = BoardConfig(
                grid_shape=board_config.grid_shape,
                chip_config=board_config.chip_config,
                link_delay=int(request.link_delay),
            )
        segment_lists: List[Optional[Tuple[int, ...]]]
        if self.workers is None:
            segment_lists = [None]
        else:
            # The placement is a pure function of (network, copies, board),
            # so the parent and every worker compute the same segments.
            placement = place_on_board(
                network, request.max_copies, board_config
            )
            segment_lists = [
                (index,) for index in range(len(placement.segments))
            ]
        tasks = [
            (
                request.model,
                evaluation.features,
                spf,
                repeat_rng,
                network,
                request.max_copies,
                request.stochastic_synapses,
                request.collect_spike_counters,
                request.router_delay,
                board_config,
                segments,
            )
            for spf in request.spf_levels
            for repeat_rng in repeat_rngs
            for segments in segment_lists
        ]
        shards = parallel_map(_evaluate_board_pass, tasks, self.workers)
        # Regroup the flat (spf, repeat, segment) results; segments of one
        # pass merge by summation (each is zero outside its own copies).
        per_pass = len(segment_lists)
        tensors: List[List[np.ndarray]] = [[] for _ in range(request.repeats)]
        counters_by_repeat: List[Optional[np.ndarray]] = [None] * request.repeats
        for spf_index in range(len(request.spf_levels)):
            for repeat in range(request.repeats):
                base = (spf_index * request.repeats + repeat) * per_pass
                counts = shards[base][0].copy()
                counters = shards[base][1]
                for offset in range(1, per_pass):
                    counts += shards[base + offset][0]
                    if counters is not None:
                        counters = counters + shards[base + offset][1]
                tensors[repeat].append(counts)
                if request.collect_spike_counters:
                    # spf_levels ascends; keep the largest level's counters,
                    # matching the chip backend's convention.
                    counters_by_repeat[repeat] = counters
        cumulative = [
            np.stack(
                [np.cumsum(level_counts, axis=0) for level_counts in levels],
                axis=1,
            ).astype(float)
            / n_k
            for levels in tensors
        ]
        spike_counters = None
        if request.collect_spike_counters:
            spike_counters = np.stack(
                [np.asarray(c) for c in counters_by_repeat]
            )
        return _result_from_cumulative(
            request,
            self.name,
            cumulative,
            evaluation,
            n_k,
            network.core_count,
            spike_counters=spike_counters,
            spf_axis_levels=request.spf_levels,
        )


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Callable[..., object]] = {}


def register_backend(name: str, factory: Callable[..., object]) -> None:
    """Register an :class:`EvaluationBackend` factory under ``name``.

    Re-registering a name replaces the factory (useful for tests and for
    out-of-tree backends like a future GPU engine).
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"backend name must be a non-empty string, got {name!r}")
    _REGISTRY[name] = factory


def backend_names() -> Tuple[str, ...]:
    """Names of all registered backends (sorted)."""
    return tuple(sorted(_REGISTRY))


def create_backend(name: str, **config) -> object:
    """Instantiate a registered backend by name.

    Keyword arguments are passed to the backend factory (e.g. ``cache_dir``
    for the vectorized backend).
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown evaluation backend {name!r}; registered: {backend_names()}"
        ) from None
    return factory(**config)


register_backend("vectorized", VectorizedBackend)
register_backend("reference", ReferenceBackend)
register_backend("chip", ChipBackend)
register_backend("board", BoardBackend)
