"""Regularizer interface used by the trainer.

The concrete penalties the paper studies — L1, L2, and the probability-biasing
penalty of Eq. (17) — live in :mod:`repro.core.penalties`; this module only
defines the protocol the training loop relies on, plus the trivial
no-penalty implementation, so that ``repro.nn`` has no dependency on
``repro.core``.
"""

from __future__ import annotations

from typing import Dict

import numpy as np


class Regularizer:
    """A differentiable penalty added to the training objective.

    Implementations receive the *penalized* parameters of the network (the
    weight matrices, not the biases) and return a scalar penalty value and a
    matching gradient contribution.
    """

    def penalty(self, params: Dict[str, np.ndarray]) -> float:
        """Return the scalar penalty value for the given parameters."""
        raise NotImplementedError

    def gradient(self, params: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Return the gradient of the penalty for each parameter array."""
        raise NotImplementedError


class NullRegularizer(Regularizer):
    """No penalty — used for Tea learning (the paper's baseline)."""

    def penalty(self, params: Dict[str, np.ndarray]) -> float:
        return 0.0

    def gradient(self, params: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        return {name: np.zeros_like(array) for name, array in params.items()}
