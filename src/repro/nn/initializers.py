"""Weight initializers.

The paper trains networks whose weights are *connectivity probabilities*
scaled by the integer synaptic value (w = p * c with 0 <= p <= 1), so in
addition to standard Glorot/He initializers this module provides
``uniform_probability`` which draws initial weights already inside the valid
probability-scaled range.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.rng import RngLike, new_rng


def glorot_uniform(shape: Tuple[int, int], rng: RngLike = None) -> np.ndarray:
    """Glorot/Xavier uniform initialization for a (fan_in, fan_out) matrix."""
    fan_in, fan_out = shape
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return new_rng(rng).uniform(-limit, limit, size=shape)


def he_normal(shape: Tuple[int, int], rng: RngLike = None) -> np.ndarray:
    """He normal initialization (suitable for ReLU layers)."""
    fan_in, _ = shape
    std = np.sqrt(2.0 / fan_in)
    return new_rng(rng).normal(0.0, std, size=shape)


def uniform_probability(
    shape: Tuple[int, int],
    synaptic_value: float = 1.0,
    low: float = 0.25,
    high: float = 0.75,
    rng: RngLike = None,
) -> np.ndarray:
    """Initialize weights as probabilities in [low, high] scaled by ``synaptic_value``.

    Used when training directly in the TrueNorth-constrained parameterization
    (w = p * c); the initial probabilities avoid the poles so gradients are
    informative from the first step.
    """
    if not (0.0 <= low <= high <= 1.0):
        raise ValueError(f"require 0 <= low <= high <= 1, got low={low} high={high}")
    probabilities = new_rng(rng).uniform(low, high, size=shape)
    return probabilities * synaptic_value
