"""Gradient-descent optimizers.

Optimizers operate on ``{name: array}`` parameter/gradient dictionaries as
exposed by :class:`repro.nn.network.Sequential`, updating parameters in
place so that layers, penalties, and deployment code all observe the same
arrays.
"""

from __future__ import annotations

from typing import Dict

import numpy as np


class Optimizer:
    """Base optimizer interface."""

    def step(self, params: Dict[str, np.ndarray], grads: Dict[str, np.ndarray]) -> None:
        """Apply one update to ``params`` in place given matching ``grads``."""
        raise NotImplementedError

    def reset(self) -> None:
        """Clear any internal state (momentum buffers, moment estimates)."""


class SGD(Optimizer):
    """Plain stochastic gradient descent."""

    def __init__(self, learning_rate: float = 0.1):
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        self.learning_rate = learning_rate

    def step(self, params: Dict[str, np.ndarray], grads: Dict[str, np.ndarray]) -> None:
        for name, param in params.items():
            grad = grads.get(name)
            if grad is None:
                raise KeyError(f"missing gradient for parameter {name!r}")
            param -= self.learning_rate * grad


class Momentum(Optimizer):
    """SGD with classical momentum."""

    def __init__(self, learning_rate: float = 0.1, momentum: float = 0.9):
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        if not (0.0 <= momentum < 1.0):
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.learning_rate = learning_rate
        self.momentum = momentum
        self._velocity: Dict[str, np.ndarray] = {}

    def step(self, params: Dict[str, np.ndarray], grads: Dict[str, np.ndarray]) -> None:
        for name, param in params.items():
            grad = grads.get(name)
            if grad is None:
                raise KeyError(f"missing gradient for parameter {name!r}")
            velocity = self._velocity.get(name)
            if velocity is None:
                velocity = np.zeros_like(param)
            velocity = self.momentum * velocity - self.learning_rate * grad
            self._velocity[name] = velocity
            param += velocity

    def reset(self) -> None:
        self._velocity.clear()


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(
        self,
        learning_rate: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ):
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        if not (0.0 <= beta1 < 1.0) or not (0.0 <= beta2 < 1.0):
            raise ValueError("beta1 and beta2 must be in [0, 1)")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._m: Dict[str, np.ndarray] = {}
        self._v: Dict[str, np.ndarray] = {}
        self._t = 0

    def step(self, params: Dict[str, np.ndarray], grads: Dict[str, np.ndarray]) -> None:
        self._t += 1
        for name, param in params.items():
            grad = grads.get(name)
            if grad is None:
                raise KeyError(f"missing gradient for parameter {name!r}")
            m = self._m.get(name, np.zeros_like(param))
            v = self._v.get(name, np.zeros_like(param))
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * grad * grad
            self._m[name] = m
            self._v[name] = v
            m_hat = m / (1.0 - self.beta1**self._t)
            v_hat = v / (1.0 - self.beta2**self._t)
            param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)

    def reset(self) -> None:
        self._m.clear()
        self._v.clear()
        self._t = 0
