"""Loss functions for classification training."""

from __future__ import annotations

import numpy as np


class Loss:
    """Base class: computes a scalar loss and its gradient w.r.t. predictions."""

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        """Return the mean loss over the batch."""
        raise NotImplementedError

    def backward(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Return dL/d(predictions), already divided by the batch size."""
        raise NotImplementedError

    def __call__(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(predictions, targets)


def _as_one_hot(targets: np.ndarray, num_classes: int) -> np.ndarray:
    """Convert integer class labels to one-hot rows (passes one-hot through)."""
    targets = np.asarray(targets)
    if targets.ndim == 2:
        if targets.shape[1] != num_classes:
            raise ValueError(
                f"one-hot targets must have {num_classes} columns, got {targets.shape}"
            )
        return targets.astype(float)
    one_hot = np.zeros((targets.shape[0], num_classes))
    labels = targets.astype(int)
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError(
            f"labels must lie in [0, {num_classes}), got range "
            f"[{labels.min()}, {labels.max()}]"
        )
    one_hot[np.arange(targets.shape[0]), labels] = 1.0
    return one_hot


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


class SoftmaxCrossEntropy(Loss):
    """Softmax + cross-entropy on raw logits (integer or one-hot targets)."""

    def __init__(self, epsilon: float = 1e-12):
        self.epsilon = epsilon

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        probabilities = softmax(np.asarray(predictions, dtype=float))
        one_hot = _as_one_hot(targets, probabilities.shape[1])
        log_probs = np.log(probabilities + self.epsilon)
        return float(-(one_hot * log_probs).sum(axis=1).mean())

    def backward(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        probabilities = softmax(np.asarray(predictions, dtype=float))
        one_hot = _as_one_hot(targets, probabilities.shape[1])
        return (probabilities - one_hot) / predictions.shape[0]


class MeanSquaredError(Loss):
    """Mean squared error against one-hot (or real-valued) targets."""

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        predictions = np.asarray(predictions, dtype=float)
        one_hot = _as_one_hot(targets, predictions.shape[1])
        return float(((predictions - one_hot) ** 2).mean())

    def backward(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        predictions = np.asarray(predictions, dtype=float)
        one_hot = _as_one_hot(targets, predictions.shape[1])
        return 2.0 * (predictions - one_hot) / predictions.size


def predictions_to_labels(predictions: np.ndarray) -> np.ndarray:
    """Convert a score matrix (logits or probabilities) to class labels."""
    return np.asarray(predictions).argmax(axis=1)
