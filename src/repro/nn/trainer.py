"""Mini-batch training loop with pluggable regularization."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.nn.losses import Loss, SoftmaxCrossEntropy, predictions_to_labels
from repro.nn.metrics import accuracy_score
from repro.nn.network import Sequential
from repro.nn.optim import Optimizer, SGD
from repro.nn.regularizers import NullRegularizer, Regularizer
from repro.utils.rng import RngLike, new_rng


@dataclass
class TrainingHistory:
    """Per-epoch records produced by :class:`Trainer.fit`.

    All four lists always have one entry per completed epoch:
    ``validation_accuracy`` records NaN for epochs trained without validation
    data, so histories from separate fits (e.g. a warmup phase followed by a
    penalized phase) stay aligned when merged.
    """

    train_loss: List[float] = field(default_factory=list)
    train_accuracy: List[float] = field(default_factory=list)
    validation_accuracy: List[float] = field(default_factory=list)
    penalty: List[float] = field(default_factory=list)

    @property
    def epochs(self) -> int:
        """Number of completed epochs."""
        return len(self.train_loss)

    def best_validation_accuracy(self) -> float:
        """Highest validation accuracy observed (NaN if never evaluated)."""
        observed = [v for v in self.validation_accuracy if not np.isnan(v)]
        if not observed:
            return float("nan")
        return max(observed)

    def merge(self, other: "TrainingHistory") -> "TrainingHistory":
        """Append another history's epochs to this one, in place.

        Defensively pads either side's ``validation_accuracy`` with NaN up to
        its epoch count first, so merging histories recorded with and without
        validation data never desynchronizes the lists.  Returns ``self`` for
        chaining.
        """
        for history in (self, other):
            missing = history.epochs - len(history.validation_accuracy)
            if missing > 0:
                history.validation_accuracy.extend([float("nan")] * missing)
        self.train_loss.extend(other.train_loss)
        self.train_accuracy.extend(other.train_accuracy)
        self.validation_accuracy.extend(other.validation_accuracy)
        self.penalty.extend(other.penalty)
        return self


class Trainer:
    """Trains a :class:`Sequential` network with mini-batch gradient descent.

    Args:
        network: the model to train (updated in place).
        loss: loss function; defaults to softmax cross-entropy.
        optimizer: parameter update rule; defaults to plain SGD.
        regularizer: penalty added to the objective (the paper's biasing
            penalty plugs in here); defaults to no penalty.
        penalty_coefficient: the regularization coefficient (lambda in
            Eq. 16).
        clip_probabilities: when set to a (low, high) tuple, weight matrices
            are clamped into that range after every update — used when
            training directly in connectivity-probability space where weights
            must stay within [0, c].
    """

    def __init__(
        self,
        network: Sequential,
        loss: Optional[Loss] = None,
        optimizer: Optional[Optimizer] = None,
        regularizer: Optional[Regularizer] = None,
        penalty_coefficient: float = 0.0,
        clip_probabilities: Optional[Tuple[float, float]] = None,
    ):
        self.network = network
        self.loss = loss or SoftmaxCrossEntropy()
        self.optimizer = optimizer or SGD(learning_rate=0.1)
        self.regularizer = regularizer or NullRegularizer()
        if penalty_coefficient < 0:
            raise ValueError(
                f"penalty_coefficient must be non-negative, got {penalty_coefficient}"
            )
        self.penalty_coefficient = penalty_coefficient
        self.clip_probabilities = clip_probabilities

    # ------------------------------------------------------------------
    def _apply_penalty_gradient(self) -> float:
        """Add lambda * dE_W/dw to the weight gradients; return lambda * E_W."""
        if self.penalty_coefficient == 0.0:
            return 0.0
        penalized = self.network.penalized_params()
        if not penalized:
            return 0.0
        penalty_value = self.regularizer.penalty(penalized)
        penalty_grads = self.regularizer.gradient(penalized)
        grads = self.network.grads()
        for name, grad in penalty_grads.items():
            grads[name] += self.penalty_coefficient * grad
        return self.penalty_coefficient * penalty_value

    def _clip(self) -> None:
        if self.clip_probabilities is None:
            return
        low, high = self.clip_probabilities
        for array in self.network.penalized_params().values():
            np.clip(array, low, high, out=array)

    def train_batch(self, inputs: np.ndarray, targets: np.ndarray) -> Tuple[float, float]:
        """One gradient step on a mini-batch; returns (data loss, penalty)."""
        predictions = self.network.forward(inputs, training=True)
        data_loss = self.loss.forward(predictions, targets)
        grad = self.loss.backward(predictions, targets)
        self.network.backward(grad)
        penalty_value = self._apply_penalty_gradient()
        self.optimizer.step(self.network.params(), self.network.grads())
        self._clip()
        return data_loss, penalty_value

    # ------------------------------------------------------------------
    def fit(
        self,
        train_inputs: np.ndarray,
        train_targets: np.ndarray,
        epochs: int = 10,
        batch_size: int = 64,
        validation_data: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        rng: RngLike = None,
        shuffle: bool = True,
        callback: Optional[Callable[[int, Dict[str, float]], None]] = None,
    ) -> TrainingHistory:
        """Train for ``epochs`` passes over the data.

        Args:
            train_inputs: array of shape (samples, features).
            train_targets: integer labels or one-hot targets.
            epochs: number of passes over the training set.
            batch_size: mini-batch size.
            validation_data: optional (inputs, labels) evaluated after each
                epoch.
            rng: randomness for shuffling.
            shuffle: whether to reshuffle each epoch.
            callback: optional ``callback(epoch, metrics)`` invoked per epoch.

        Returns:
            a :class:`TrainingHistory` with per-epoch metrics.
        """
        train_inputs = np.asarray(train_inputs, dtype=float)
        train_targets = np.asarray(train_targets)
        if train_inputs.shape[0] != train_targets.shape[0]:
            raise ValueError(
                "train_inputs and train_targets must have the same number of rows"
            )
        if epochs <= 0:
            raise ValueError(f"epochs must be positive, got {epochs}")
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        rng = new_rng(rng)
        history = TrainingHistory()
        count = train_inputs.shape[0]
        for epoch in range(epochs):
            order = rng.permutation(count) if shuffle else np.arange(count)
            epoch_loss = 0.0
            epoch_penalty = 0.0
            batches = 0
            for start in range(0, count, batch_size):
                index = order[start : start + batch_size]
                data_loss, penalty_value = self.train_batch(
                    train_inputs[index], train_targets[index]
                )
                epoch_loss += data_loss
                epoch_penalty += penalty_value
                batches += 1
            epoch_loss /= max(batches, 1)
            epoch_penalty /= max(batches, 1)

            train_labels = (
                train_targets
                if train_targets.ndim == 1
                else train_targets.argmax(axis=1)
            )
            train_predictions = predictions_to_labels(
                self.network.forward(train_inputs, training=False)
            )
            train_accuracy = accuracy_score(train_labels, train_predictions)

            validation_accuracy = float("nan")
            if validation_data is not None:
                val_inputs, val_labels = validation_data
                val_predictions = self.network.predict(val_inputs)
                val_labels = np.asarray(val_labels)
                if val_labels.ndim == 2:
                    val_labels = val_labels.argmax(axis=1)
                validation_accuracy = accuracy_score(val_labels, val_predictions)
            # Always record the slot (NaN when no validation data) so the
            # history lists stay aligned epoch for epoch.
            history.validation_accuracy.append(validation_accuracy)

            history.train_loss.append(epoch_loss)
            history.train_accuracy.append(train_accuracy)
            history.penalty.append(epoch_penalty)

            if callback is not None:
                callback(
                    epoch,
                    {
                        "loss": epoch_loss,
                        "penalty": epoch_penalty,
                        "train_accuracy": train_accuracy,
                        "validation_accuracy": validation_accuracy,
                    },
                )
        return history
