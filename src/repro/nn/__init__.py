"""A small feed-forward neural-network framework built on numpy.

This package is the training substrate of the reproduction (the paper trains
its models in Caffe).  It provides exactly what the paper's experiments need:

* dense and block-partitioned dense layers with explicit weight access,
* activation functions, including the erf-based *TrueNorth spiking
  probability* activation of Eq. (11) used during constrained training,
* softmax-cross-entropy loss,
* SGD / momentum / Adam optimizers,
* pluggable regularizers (the probability-biasing penalty of the paper plugs
  in here),
* a trainer with mini-batch iteration, metrics, and early stopping.

Everything is deliberately explicit — layers expose their parameter and
gradient arrays directly — because the learning methods in ``repro.core``
need to inspect and transform weights into connectivity probabilities.
"""

from repro.nn.activations import (
    Activation,
    Identity,
    Relu,
    Sigmoid,
    Tanh,
    TrueNorthErf,
    get_activation,
)
from repro.nn.initializers import glorot_uniform, he_normal, uniform_probability
from repro.nn.layers import Layer, Dense, BlockDense, Gather, FixedDense
from repro.nn.losses import Loss, SoftmaxCrossEntropy, MeanSquaredError
from repro.nn.network import Sequential
from repro.nn.optim import Optimizer, SGD, Momentum, Adam
from repro.nn.regularizers import Regularizer, NullRegularizer
from repro.nn.trainer import Trainer, TrainingHistory
from repro.nn.metrics import accuracy_score, confusion_matrix

__all__ = [
    "Activation",
    "Identity",
    "Relu",
    "Sigmoid",
    "Tanh",
    "TrueNorthErf",
    "get_activation",
    "glorot_uniform",
    "he_normal",
    "uniform_probability",
    "Layer",
    "Dense",
    "BlockDense",
    "Gather",
    "FixedDense",
    "Loss",
    "SoftmaxCrossEntropy",
    "MeanSquaredError",
    "Sequential",
    "Optimizer",
    "SGD",
    "Momentum",
    "Adam",
    "Regularizer",
    "NullRegularizer",
    "Trainer",
    "TrainingHistory",
    "accuracy_score",
    "confusion_matrix",
]
