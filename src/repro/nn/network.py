"""Sequential network container."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.nn.layers import Layer
from repro.nn.losses import predictions_to_labels


class Sequential:
    """A stack of layers applied in order.

    The container aggregates parameter and gradient dictionaries across its
    layers (prefixing names with the layer index) so optimizers and penalties
    can treat the whole network as one flat parameter set.
    """

    def __init__(self, layers: Optional[Sequence[Layer]] = None):
        self.layers: List[Layer] = list(layers or [])

    def add(self, layer: Layer) -> "Sequential":
        """Append a layer and return self (for chaining)."""
        self.layers.append(layer)
        return self

    def __iter__(self) -> Iterable[Layer]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    @property
    def output_dim(self) -> int:
        """Output dimensionality of the final layer."""
        if not self.layers:
            raise ValueError("network has no layers")
        return self.layers[-1].output_dim

    # ------------------------------------------------------------------
    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        """Run all layers; returns the final layer's output."""
        output = np.asarray(inputs, dtype=float)
        for layer in self.layers:
            output = layer.forward(output, training=training)
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backpropagate through all layers; returns dL/d(input)."""
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Return predicted class labels for a batch of inputs."""
        return predictions_to_labels(self.forward(inputs, training=False))

    # ------------------------------------------------------------------
    def params(self) -> Dict[str, np.ndarray]:
        """All trainable parameters, keyed ``layer{i}.{name}``."""
        merged: Dict[str, np.ndarray] = {}
        for i, layer in enumerate(self.layers):
            for name, array in layer.params().items():
                merged[f"layer{i}.{name}"] = array
        return merged

    def grads(self) -> Dict[str, np.ndarray]:
        """All parameter gradients, keyed to match :meth:`params`."""
        merged: Dict[str, np.ndarray] = {}
        for i, layer in enumerate(self.layers):
            for name, array in layer.grads().items():
                merged[f"layer{i}.{name}"] = array
        return merged

    def penalized_params(self) -> Dict[str, np.ndarray]:
        """The weight matrices regularization penalties act on."""
        merged: Dict[str, np.ndarray] = {}
        for i, layer in enumerate(self.layers):
            for name, array in layer.penalized_params().items():
                merged[f"layer{i}.{name}"] = array
        return merged

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of every parameter array (for checkpointing)."""
        return {name: array.copy() for name, array in self.params().items()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameters saved by :meth:`state_dict` (shapes must match)."""
        params = self.params()
        missing = set(params) - set(state)
        if missing:
            raise KeyError(f"state dict is missing parameters: {sorted(missing)}")
        for name, array in params.items():
            saved = np.asarray(state[name])
            if saved.shape != array.shape:
                raise ValueError(
                    f"shape mismatch for {name}: {saved.shape} vs {array.shape}"
                )
            array[...] = saved
