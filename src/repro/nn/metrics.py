"""Classification metrics."""

from __future__ import annotations

import numpy as np


def accuracy_score(labels: np.ndarray, predictions: np.ndarray) -> float:
    """Fraction of predictions equal to the true labels."""
    labels = np.asarray(labels)
    predictions = np.asarray(predictions)
    if labels.shape != predictions.shape:
        raise ValueError(
            f"labels and predictions must have the same shape, got "
            f"{labels.shape} vs {predictions.shape}"
        )
    if labels.size == 0:
        raise ValueError("cannot compute accuracy of an empty label set")
    return float((labels == predictions).mean())


def confusion_matrix(
    labels: np.ndarray, predictions: np.ndarray, num_classes: int
) -> np.ndarray:
    """Return the (num_classes, num_classes) confusion matrix (rows = truth)."""
    labels = np.asarray(labels, dtype=int)
    predictions = np.asarray(predictions, dtype=int)
    if labels.shape != predictions.shape:
        raise ValueError("labels and predictions must have the same shape")
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    for truth, predicted in zip(labels, predictions):
        if not (0 <= truth < num_classes) or not (0 <= predicted < num_classes):
            raise ValueError("class index outside [0, num_classes)")
        matrix[truth, predicted] += 1
    return matrix


def per_class_accuracy(
    labels: np.ndarray, predictions: np.ndarray, num_classes: int
) -> np.ndarray:
    """Accuracy within each true class (NaN for classes absent from labels)."""
    matrix = confusion_matrix(labels, predictions, num_classes)
    totals = matrix.sum(axis=1).astype(float)
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.where(totals > 0, np.diag(matrix) / totals, np.nan)
