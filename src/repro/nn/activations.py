"""Activation functions.

Besides the standard activations, this module implements the activation the
paper derives for TrueNorth-constrained training: the expected firing
probability of a McCulloch-Pitts neuron whose input is a sum of independent
Bernoulli-weighted terms (Eq. 10-11),

    E{z'} = P(y' >= 0) = 1 - 0.5 * (1 + erf(-mu / (sqrt(2) * sigma)))
          = 0.5 * (1 + erf(mu / (sqrt(2) * sigma)))

where ``mu`` is the pre-activation mean (the ordinary weighted sum) and
``sigma`` is the standard deviation induced by the stochastic synapses and
spikes.  During training the paper treats sigma as a smoothing constant of the
erf so that the activation stays differentiable; :class:`TrueNorthErf`
implements exactly that.
"""

from __future__ import annotations

import math
from typing import Dict, Type

import numpy as np
from scipy.special import erf  # type: ignore[import-untyped]


class Activation:
    """Base class: elementwise activation with forward and derivative."""

    name = "activation"

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Apply the activation elementwise."""
        raise NotImplementedError

    def backward(self, x: np.ndarray) -> np.ndarray:
        """Return d(activation)/dx evaluated elementwise at ``x``."""
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class Identity(Activation):
    """Linear pass-through (used by output layers feeding a softmax loss)."""

    name = "identity"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, x: np.ndarray) -> np.ndarray:
        return np.ones_like(x)


class Relu(Activation):
    """Rectified linear unit."""

    name = "relu"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(x, 0.0)

    def backward(self, x: np.ndarray) -> np.ndarray:
        return (x > 0.0).astype(x.dtype)


class Sigmoid(Activation):
    """Logistic sigmoid."""

    name = "sigmoid"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-x))

    def backward(self, x: np.ndarray) -> np.ndarray:
        s = self.forward(x)
        return s * (1.0 - s)


class Tanh(Activation):
    """Hyperbolic tangent."""

    name = "tanh"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.tanh(x)

    def backward(self, x: np.ndarray) -> np.ndarray:
        t = np.tanh(x)
        return 1.0 - t * t


class TrueNorthErf(Activation):
    """Spiking-probability activation of Eq. (11).

    ``forward(x) = 0.5 * (1 + erf(x / (sqrt(2) * sigma)))`` — the probability
    that a McCulloch-Pitts neuron with pre-activation mean ``x`` and Gaussian
    input noise of standard deviation ``sigma`` fires.  The output is in
    (0, 1) and is interpreted downstream as the spiking probability of the
    neuron, which is exactly the quantity the next layer's stochastic spikes
    will realize on chip.

    Args:
        sigma: smoothing constant; larger values make the activation softer.
            The paper treats the deployment-induced variance as this constant
            during training.
    """

    name = "truenorth_erf"

    def __init__(self, sigma: float = 1.0):
        if sigma <= 0:
            raise ValueError(f"sigma must be positive, got {sigma}")
        self.sigma = float(sigma)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return 0.5 * (1.0 + erf(x / (math.sqrt(2.0) * self.sigma)))

    def backward(self, x: np.ndarray) -> np.ndarray:
        # d/dx [0.5 (1 + erf(x / (sqrt(2) sigma)))] = N(x; 0, sigma^2)
        coeff = 1.0 / (self.sigma * math.sqrt(2.0 * math.pi))
        return coeff * np.exp(-0.5 * (x / self.sigma) ** 2)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TrueNorthErf(sigma={self.sigma})"


_REGISTRY: Dict[str, Type[Activation]] = {
    Identity.name: Identity,
    Relu.name: Relu,
    Sigmoid.name: Sigmoid,
    Tanh.name: Tanh,
    TrueNorthErf.name: TrueNorthErf,
}


def get_activation(name: str, **kwargs) -> Activation:
    """Instantiate an activation by registry name.

    Raises ``KeyError`` with the list of known names when the name is unknown.
    """
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown activation {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
    return cls(**kwargs)
