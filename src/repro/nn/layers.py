"""Layers of the feed-forward framework.

Two layer types are provided:

* :class:`Dense` — a fully connected layer ``z = h(x @ W + b)``.
* :class:`BlockDense` — the block-partitioned layer the paper's TrueNorth
  networks use (Figure 3): the input image is split into fixed-size blocks
  (one per neuro-synaptic core) and each block is connected only to its own
  group of output neurons, because a core's crossbar can only see the 256
  axons wired into it.  Structurally this is a block-diagonal ``Dense``.

Layers expose their parameters through ``params()`` / ``grads()`` so the
optimizer and the regularization penalties (which act on the weights
interpreted as connectivity probabilities) can reach them directly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.nn.activations import Activation, Identity
from repro.nn.initializers import glorot_uniform
from repro.utils.rng import RngLike, new_rng


class Layer:
    """Base layer interface: forward, backward, and parameter access."""

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        """Compute the layer output for a batch of inputs."""
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backpropagate ``dL/d(output)`` and return ``dL/d(input)``.

        Parameter gradients are accumulated into the arrays returned by
        :meth:`grads`.
        """
        raise NotImplementedError

    def params(self) -> Dict[str, np.ndarray]:
        """Return the trainable parameter arrays of this layer, by name."""
        return {}

    def grads(self) -> Dict[str, np.ndarray]:
        """Return the gradient arrays matching :meth:`params`."""
        return {}

    def penalized_params(self) -> Dict[str, np.ndarray]:
        """Parameters that regularization penalties apply to (weights only)."""
        return {}

    @property
    def output_dim(self) -> int:
        """Number of output units."""
        raise NotImplementedError


class Dense(Layer):
    """Fully connected layer with an elementwise activation.

    Args:
        in_dim: input dimensionality.
        out_dim: output dimensionality.
        activation: activation instance; defaults to identity.
        rng: seed or generator for weight initialization.
        weight_init: optional explicit initial weight matrix (in_dim, out_dim).
        use_bias: when False the layer has no bias term at all (TrueNorth
            block layers train bias-free because every crossbar axon is
            already used by a pixel).
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        activation: Optional[Activation] = None,
        rng: RngLike = None,
        weight_init: Optional[np.ndarray] = None,
        use_bias: bool = True,
    ):
        if in_dim <= 0 or out_dim <= 0:
            raise ValueError(f"dimensions must be positive, got ({in_dim}, {out_dim})")
        self.in_dim = in_dim
        self.out_dim_ = out_dim
        self.activation = activation or Identity()
        self.use_bias = use_bias
        if weight_init is not None:
            weight_init = np.asarray(weight_init, dtype=float)
            if weight_init.shape != (in_dim, out_dim):
                raise ValueError(
                    f"weight_init must have shape {(in_dim, out_dim)}, "
                    f"got {weight_init.shape}"
                )
            self.weights = weight_init.copy()
        else:
            self.weights = glorot_uniform((in_dim, out_dim), rng=new_rng(rng))
        self.bias = np.zeros(out_dim)
        self.grad_weights = np.zeros_like(self.weights)
        self.grad_bias = np.zeros_like(self.bias)
        self._inputs: Optional[np.ndarray] = None
        self._pre_activation: Optional[np.ndarray] = None

    @property
    def output_dim(self) -> int:
        return self.out_dim_

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=float)
        if inputs.ndim != 2 or inputs.shape[1] != self.in_dim:
            raise ValueError(
                f"expected inputs of shape (batch, {self.in_dim}), got {inputs.shape}"
            )
        pre = inputs @ self.weights + self.bias
        if training:
            self._inputs = inputs
            self._pre_activation = pre
        return self.activation.forward(pre)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._inputs is None or self._pre_activation is None:
            raise RuntimeError("backward called before a training-mode forward pass")
        grad_pre = grad_output * self.activation.backward(self._pre_activation)
        self.grad_weights = self._inputs.T @ grad_pre
        if self.use_bias:
            self.grad_bias = grad_pre.sum(axis=0)
        return grad_pre @ self.weights.T

    def params(self) -> Dict[str, np.ndarray]:
        if self.use_bias:
            return {"weights": self.weights, "bias": self.bias}
        return {"weights": self.weights}

    def grads(self) -> Dict[str, np.ndarray]:
        if self.use_bias:
            return {"weights": self.grad_weights, "bias": self.grad_bias}
        return {"weights": self.grad_weights}

    def penalized_params(self) -> Dict[str, np.ndarray]:
        return {"weights": self.weights}


class BlockDense(Layer):
    """Block-diagonal dense layer modelling one layer of neuro-synaptic cores.

    The input is interpreted as the concatenation of ``len(block_sizes)``
    blocks (one per core); block ``k`` of size ``block_sizes[k]`` is fully
    connected to its own ``neurons_per_block[k]`` outputs and to nothing else.
    The layer output is the concatenation of all block outputs.

    This matches the paper's Figure 3 topology where each 16x16 image block is
    wired into one core's 256 axons.
    """

    def __init__(
        self,
        block_sizes: Sequence[int],
        neurons_per_block: Sequence[int],
        activation: Optional[Activation] = None,
        rng: RngLike = None,
        use_bias: bool = True,
    ):
        if len(block_sizes) != len(neurons_per_block):
            raise ValueError(
                "block_sizes and neurons_per_block must have the same length"
            )
        if not block_sizes:
            raise ValueError("at least one block is required")
        for size in list(block_sizes) + list(neurons_per_block):
            if size <= 0:
                raise ValueError("block sizes and neuron counts must be positive")
        self.block_sizes = list(block_sizes)
        self.neurons_per_block = list(neurons_per_block)
        self.activation = activation or Identity()
        self.use_bias = use_bias
        rng = new_rng(rng)
        self.blocks: List[Dense] = [
            Dense(
                in_dim,
                out_dim,
                activation=self.activation,
                rng=rng,
                use_bias=use_bias,
            )
            for in_dim, out_dim in zip(self.block_sizes, self.neurons_per_block)
        ]
        self._input_offsets = np.cumsum([0] + self.block_sizes)
        self._output_offsets = np.cumsum([0] + self.neurons_per_block)

    @property
    def in_dim(self) -> int:
        """Total input dimensionality (sum of block sizes)."""
        return int(self._input_offsets[-1])

    @property
    def output_dim(self) -> int:
        return int(self._output_offsets[-1])

    @property
    def num_blocks(self) -> int:
        """Number of blocks (equals the number of cores this layer occupies)."""
        return len(self.blocks)

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=float)
        if inputs.ndim != 2 or inputs.shape[1] != self.in_dim:
            raise ValueError(
                f"expected inputs of shape (batch, {self.in_dim}), got {inputs.shape}"
            )
        outputs = []
        for k, block in enumerate(self.blocks):
            lo, hi = self._input_offsets[k], self._input_offsets[k + 1]
            outputs.append(block.forward(inputs[:, lo:hi], training=training))
        return np.concatenate(outputs, axis=1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_inputs = []
        for k, block in enumerate(self.blocks):
            lo, hi = self._output_offsets[k], self._output_offsets[k + 1]
            grad_inputs.append(block.backward(grad_output[:, lo:hi]))
        return np.concatenate(grad_inputs, axis=1)

    def params(self) -> Dict[str, np.ndarray]:
        merged: Dict[str, np.ndarray] = {}
        for k, block in enumerate(self.blocks):
            for name, array in block.params().items():
                merged[f"block{k}_{name}"] = array
        return merged

    def grads(self) -> Dict[str, np.ndarray]:
        merged: Dict[str, np.ndarray] = {}
        for k, block in enumerate(self.blocks):
            for name, array in block.grads().items():
                merged[f"block{k}_{name}"] = array
        return merged

    def penalized_params(self) -> Dict[str, np.ndarray]:
        merged: Dict[str, np.ndarray] = {}
        for k, block in enumerate(self.blocks):
            merged[f"block{k}_weights"] = block.weights
        return merged


class Gather(Layer):
    """Fixed input-selection layer.

    ``forward(x)[:, j] = x[:, indices[j]]``.  Used to wire overlapping or
    non-contiguous image blocks into a :class:`BlockDense` layer: the stride-
    based block partition of the paper (Figure 3) selects pixel indices per
    core, possibly with overlap when the stride is smaller than the block
    size, and this layer performs that selection.  The backward pass
    scatter-adds gradients back onto the original input positions, which
    handles overlapping blocks correctly.
    """

    def __init__(self, indices: Sequence[int], input_dim: int):
        indices = np.asarray(indices, dtype=int)
        if indices.ndim != 1 or indices.size == 0:
            raise ValueError("indices must be a non-empty 1-D sequence")
        if indices.min() < 0 or indices.max() >= input_dim:
            raise ValueError(
                f"indices must lie in [0, {input_dim}), got range "
                f"[{indices.min()}, {indices.max()}]"
            )
        self.indices = indices
        self.input_dim = input_dim

    @property
    def output_dim(self) -> int:
        return int(self.indices.size)

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=float)
        if inputs.ndim != 2 or inputs.shape[1] != self.input_dim:
            raise ValueError(
                f"expected inputs of shape (batch, {self.input_dim}), got {inputs.shape}"
            )
        return inputs[:, self.indices]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_input = np.zeros((grad_output.shape[0], self.input_dim))
        np.add.at(grad_input, (slice(None), self.indices), grad_output)
        return grad_input


class FixedDense(Layer):
    """Dense layer with a fixed (non-trainable) weight matrix and no bias.

    Used for the output merge of the paper's networks: the spikes of the last
    hidden layer's neurons are summed per assigned class, which is a linear
    map with a fixed binary (or scaled binary) matrix.  Gradients flow through
    it to the trainable layers below, but the matrix itself never changes.
    """

    def __init__(self, weights: np.ndarray, activation: Optional[Activation] = None):
        weights = np.asarray(weights, dtype=float)
        if weights.ndim != 2:
            raise ValueError(f"weights must be 2-D, got shape {weights.shape}")
        self.weights = weights.copy()
        self.activation = activation or Identity()
        self._inputs: Optional[np.ndarray] = None
        self._pre_activation: Optional[np.ndarray] = None

    @property
    def output_dim(self) -> int:
        return self.weights.shape[1]

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=float)
        if inputs.ndim != 2 or inputs.shape[1] != self.weights.shape[0]:
            raise ValueError(
                f"expected inputs of shape (batch, {self.weights.shape[0]}), "
                f"got {inputs.shape}"
            )
        pre = inputs @ self.weights
        if training:
            self._inputs = inputs
            self._pre_activation = pre
        return self.activation.forward(pre)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._pre_activation is None:
            raise RuntimeError("backward called before a training-mode forward pass")
        grad_pre = grad_output * self.activation.backward(self._pre_activation)
        return grad_pre @ self.weights.T
