"""Stochastic (Bernoulli) spike encoding — Eq. (8) of the paper.

Each input value ``x`` in [0, 1] becomes, on every tick, an independent
Bernoulli(x) spike.  The number of ticks generated per presented sample is
the *spikes per frame* (spf) — the temporal-duplication parameter of the
paper's evaluation (more spf = more samples to average over = higher accuracy
but proportionally longer inference time).
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.utils.rng import RngLike, new_rng

#: Soft cap on the number of elements one encoded chunk may hold; keeps the
#: streaming path from materializing the full (spf, batch, features) tensor.
_DEFAULT_CHUNK_ELEMENTS = 4_000_000


class StochasticEncoder:
    """Bernoulli rate encoder.

    Args:
        spikes_per_frame: number of spike samples (ticks) generated per input
            presentation.
    """

    def __init__(self, spikes_per_frame: int = 1):
        if spikes_per_frame <= 0:
            raise ValueError(
                f"spikes_per_frame must be positive, got {spikes_per_frame}"
            )
        self.spikes_per_frame = spikes_per_frame

    def encode(self, values: np.ndarray, rng: RngLike = None) -> np.ndarray:
        """Encode a batch of values into spike frames.

        Args:
            values: array of shape (batch, features) with entries in [0, 1].
            rng: randomness source.

        Returns:
            uint8 array of shape (spikes_per_frame, batch, features).
        """
        values = self._validate(values)
        rng = new_rng(rng)
        draws = rng.random((self.spikes_per_frame,) + values.shape)
        return (draws < values[None, :, :]).astype(np.uint8)

    def iter_encoded(
        self,
        values: np.ndarray,
        rng: RngLike = None,
        chunk_frames: Optional[int] = None,
    ) -> Iterator[Tuple[int, np.ndarray]]:
        """Stream spike frames in chunks along the spikes-per-frame axis.

        Yields ``(start, frames)`` pairs where ``frames`` has shape
        ``(chunk, batch, features)`` and covers spike frames
        ``start .. start + chunk``.  Generator draws fill sequentially, so
        concatenating all chunks reproduces :meth:`encode` bit for bit for
        the same ``rng`` — callers can stream without changing results.

        Args:
            values: array of shape (batch, features) with entries in [0, 1].
            rng: randomness source.
            chunk_frames: frames per chunk; ``None`` targets a few million
                elements per chunk.
        """
        values = self._validate(values)
        rng = new_rng(rng)
        if chunk_frames is None:
            per_frame = max(int(values.size), 1)
            chunk_frames = max(1, _DEFAULT_CHUNK_ELEMENTS // per_frame)
        if chunk_frames <= 0:
            raise ValueError(f"chunk_frames must be positive, got {chunk_frames}")
        for start in range(0, self.spikes_per_frame, chunk_frames):
            count = min(chunk_frames, self.spikes_per_frame - start)
            draws = rng.random((count,) + values.shape)
            yield start, (draws < values[None, :, :]).astype(np.uint8)

    def _validate(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=float)
        if values.ndim != 2:
            raise ValueError(f"values must be 2-D (batch, features), got {values.shape}")
        if values.size and (values.min() < 0.0 or values.max() > 1.0):
            raise ValueError("values must lie in [0, 1]")
        return values

    def expected_rate(self, values: np.ndarray) -> np.ndarray:
        """Expected number of spikes per feature over one frame."""
        return np.asarray(values, dtype=float) * self.spikes_per_frame
