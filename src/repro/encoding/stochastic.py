"""Stochastic (Bernoulli) spike encoding — Eq. (8) of the paper.

Each input value ``x`` in [0, 1] becomes, on every tick, an independent
Bernoulli(x) spike.  The number of ticks generated per presented sample is
the *spikes per frame* (spf) — the temporal-duplication parameter of the
paper's evaluation (more spf = more samples to average over = higher accuracy
but proportionally longer inference time).
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import RngLike, new_rng


class StochasticEncoder:
    """Bernoulli rate encoder.

    Args:
        spikes_per_frame: number of spike samples (ticks) generated per input
            presentation.
    """

    def __init__(self, spikes_per_frame: int = 1):
        if spikes_per_frame <= 0:
            raise ValueError(
                f"spikes_per_frame must be positive, got {spikes_per_frame}"
            )
        self.spikes_per_frame = spikes_per_frame

    def encode(self, values: np.ndarray, rng: RngLike = None) -> np.ndarray:
        """Encode a batch of values into spike frames.

        Args:
            values: array of shape (batch, features) with entries in [0, 1].
            rng: randomness source.

        Returns:
            uint8 array of shape (spikes_per_frame, batch, features).
        """
        values = np.asarray(values, dtype=float)
        if values.ndim != 2:
            raise ValueError(f"values must be 2-D (batch, features), got {values.shape}")
        if values.size and (values.min() < 0.0 or values.max() > 1.0):
            raise ValueError("values must lie in [0, 1]")
        rng = new_rng(rng)
        draws = rng.random((self.spikes_per_frame,) + values.shape)
        return (draws < values[None, :, :]).astype(np.uint8)

    def expected_rate(self, values: np.ndarray) -> np.ndarray:
        """Expected number of spikes per feature over one frame."""
        return np.asarray(values, dtype=float) * self.spikes_per_frame
