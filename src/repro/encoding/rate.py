"""Deterministic rate code.

The rate code represents a value ``x`` in [0, 1] by emitting
``round(x * window)`` spikes within a window of ``window`` ticks, spread as
evenly as possible (a Bresenham-style schedule).  Unlike the stochastic code
the spike count is exact, so a single window conveys the value with
quantization error at most ``1 / (2 * window)``.
"""

from __future__ import annotations

import numpy as np


class RateEncoder:
    """Deterministic rate encoder over a fixed window of ticks.

    Args:
        window: number of ticks used to represent one value.
    """

    def __init__(self, window: int = 4):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = window

    def encode(self, values: np.ndarray) -> np.ndarray:
        """Encode a batch of values into evenly spaced spike frames.

        Args:
            values: array of shape (batch, features) with entries in [0, 1].

        Returns:
            uint8 array of shape (window, batch, features); along the first
            axis each feature emits ``round(x * window)`` spikes.
        """
        values = np.asarray(values, dtype=float)
        if values.ndim != 2:
            raise ValueError(f"values must be 2-D (batch, features), got {values.shape}")
        if values.size and (values.min() < 0.0 or values.max() > 1.0):
            raise ValueError("values must lie in [0, 1]")
        counts = np.rint(values * self.window).astype(int)
        frames = np.zeros((self.window,) + values.shape, dtype=np.uint8)
        # Evenly distribute `count` spikes over `window` slots:
        # slot t fires iff floor((t+1)*count/window) > floor(t*count/window).
        ticks = np.arange(self.window)[:, None, None]
        fired_before = (ticks * counts[None, :, :]) // self.window
        fired_after = ((ticks + 1) * counts[None, :, :]) // self.window
        frames[:] = (fired_after > fired_before).astype(np.uint8)
        return frames

    def decode(self, frames: np.ndarray) -> np.ndarray:
        """Recover the represented values from spike frames (inverse map)."""
        frames = np.asarray(frames)
        if frames.ndim != 3 or frames.shape[0] != self.window:
            raise ValueError(
                f"frames must have shape (window={self.window}, batch, features)"
            )
        return frames.sum(axis=0) / float(self.window)
