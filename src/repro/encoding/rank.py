"""Rank-order code.

Only the *order* in which features spike carries information: the feature
with the largest value spikes first, the second largest next, and so on.
Rank coding is extremely spike-efficient (one spike per feature, no value
resolution beyond ordering) and is listed by the paper among TrueNorth's
supported deterministic codes.
"""

from __future__ import annotations

import numpy as np


class RankOrderEncoder:
    """Rank-order encoder emitting one spike per feature in value order.

    Args:
        max_ticks: number of ticks available; when there are more features
            than ticks, several consecutive ranks share a tick.
    """

    def __init__(self, max_ticks: int = 16):
        if max_ticks <= 0:
            raise ValueError(f"max_ticks must be positive, got {max_ticks}")
        self.max_ticks = max_ticks

    def encode(self, values: np.ndarray) -> np.ndarray:
        """Encode a batch of values into rank-ordered spike frames.

        Args:
            values: array of shape (batch, features).

        Returns:
            uint8 array of shape (max_ticks, batch, features); feature ranks
            are mapped linearly onto the tick axis (rank 0 = first tick).
        """
        values = np.asarray(values, dtype=float)
        if values.ndim != 2:
            raise ValueError(f"values must be 2-D (batch, features), got {values.shape}")
        batch, features = values.shape
        # Rank 0 = largest value.
        order = np.argsort(-values, axis=1, kind="stable")
        ranks = np.empty_like(order)
        rows = np.arange(batch)[:, None]
        ranks[rows, order] = np.arange(features)[None, :]
        ticks = (ranks * self.max_ticks) // max(features, 1)
        ticks = np.clip(ticks, 0, self.max_ticks - 1)
        frames = np.zeros((self.max_ticks, batch, features), dtype=np.uint8)
        batch_index, feature_index = np.meshgrid(
            np.arange(batch), np.arange(features), indexing="ij"
        )
        frames[ticks, batch_index, feature_index] = 1
        return frames

    def decode_ranks(self, frames: np.ndarray) -> np.ndarray:
        """Recover the spike tick (coarse rank) of each feature."""
        frames = np.asarray(frames)
        if frames.ndim != 3 or frames.shape[0] != self.max_ticks:
            raise ValueError(
                f"frames must have shape (max_ticks={self.max_ticks}, batch, features)"
            )
        return np.argmax(frames, axis=0)
