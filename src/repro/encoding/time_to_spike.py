"""Time-to-spike code.

A value ``x`` in [0, 1] is represented by a single spike whose latency within
a window encodes the value: larger values spike earlier.  The code conveys a
value with exactly one spike, trading precision for the window length.
"""

from __future__ import annotations

import numpy as np


class TimeToSpikeEncoder:
    """Latency encoder: one spike per value, earlier = larger.

    Args:
        window: number of ticks in the encoding window.
        spike_for_zero: whether a value of exactly 0 emits a (latest-possible)
            spike or no spike at all.
    """

    def __init__(self, window: int = 8, spike_for_zero: bool = False):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = window
        self.spike_for_zero = spike_for_zero

    def encode(self, values: np.ndarray) -> np.ndarray:
        """Encode a batch of values into latency-coded spike frames.

        Args:
            values: array of shape (batch, features) with entries in [0, 1].

        Returns:
            uint8 array of shape (window, batch, features) with at most one
            spike per feature along the first axis.
        """
        values = np.asarray(values, dtype=float)
        if values.ndim != 2:
            raise ValueError(f"values must be 2-D (batch, features), got {values.shape}")
        if values.size and (values.min() < 0.0 or values.max() > 1.0):
            raise ValueError("values must lie in [0, 1]")
        # Latency 0 for x = 1, latency window-1 for x -> 0+.
        latencies = np.clip(
            np.floor((1.0 - values) * self.window).astype(int), 0, self.window - 1
        )
        frames = np.zeros((self.window,) + values.shape, dtype=np.uint8)
        batch_index, feature_index = np.meshgrid(
            np.arange(values.shape[0]), np.arange(values.shape[1]), indexing="ij"
        )
        frames[latencies, batch_index, feature_index] = 1
        if not self.spike_for_zero:
            frames[:, values == 0.0] = 0
        return frames

    def decode(self, frames: np.ndarray) -> np.ndarray:
        """Recover approximate values from latency-coded frames."""
        frames = np.asarray(frames)
        if frames.ndim != 3 or frames.shape[0] != self.window:
            raise ValueError(
                f"frames must have shape (window={self.window}, batch, features)"
            )
        ticks = np.arange(self.window)[:, None, None]
        spiked = frames.any(axis=0)
        # The first (and only) spike tick; features that never spike decode to 0.
        first_spike = np.where(
            spiked, np.argmax(frames, axis=0), self.window - 1
        )
        values = 1.0 - first_spike / float(self.window)
        return np.where(spiked, values, 0.0)
