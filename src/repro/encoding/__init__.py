"""Spike-encoding schemes for TrueNorth inputs and outputs.

TrueNorth communicates only binary spikes, so real-valued inputs (normalized
pixel intensities in [0, 1]) must be translated into spike trains.  The paper
relies primarily on the *stochastic* code — each tick a pixel spikes with
probability equal to its intensity — parameterized by the number of spike
samples per frame (spf), which is the temporal-duplication knob of the
evaluation.  The other deterministic codes TrueNorth supports (rate,
population, time-to-spike, rank) are implemented as well, both because the
paper lists them as the official alternatives and because they are exercised
by the ablation benchmarks.

Decoders convert output spike counts back into class scores.
"""

from repro.encoding.stochastic import StochasticEncoder
from repro.encoding.rate import RateEncoder
from repro.encoding.population import PopulationEncoder
from repro.encoding.time_to_spike import TimeToSpikeEncoder
from repro.encoding.rank import RankOrderEncoder
from repro.encoding.decoder import SpikeCountDecoder

__all__ = [
    "StochasticEncoder",
    "RateEncoder",
    "PopulationEncoder",
    "TimeToSpikeEncoder",
    "RankOrderEncoder",
    "SpikeCountDecoder",
]
