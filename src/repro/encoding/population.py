"""Population code.

A value ``x`` in [0, 1] is represented by a *group* of ``population`` axons of
which the first ``round(x * population)`` fire simultaneously in a single
tick.  Precision therefore comes from spending axons (space) rather than
ticks (time).
"""

from __future__ import annotations

import numpy as np


class PopulationEncoder:
    """Thermometer-style population encoder.

    Args:
        population: number of axons used to represent one value.
    """

    def __init__(self, population: int = 4):
        if population <= 0:
            raise ValueError(f"population must be positive, got {population}")
        self.population = population

    def encode(self, values: np.ndarray) -> np.ndarray:
        """Encode a batch of values.

        Args:
            values: array of shape (batch, features) with entries in [0, 1].

        Returns:
            uint8 array of shape (batch, features * population): each feature
            expands into ``population`` thermometer-coded bits.
        """
        values = np.asarray(values, dtype=float)
        if values.ndim != 2:
            raise ValueError(f"values must be 2-D (batch, features), got {values.shape}")
        if values.size and (values.min() < 0.0 or values.max() > 1.0):
            raise ValueError("values must lie in [0, 1]")
        counts = np.rint(values * self.population).astype(int)  # (batch, features)
        levels = np.arange(self.population)  # (population,)
        bits = (levels[None, None, :] < counts[:, :, None]).astype(np.uint8)
        return bits.reshape(values.shape[0], values.shape[1] * self.population)

    def decode(self, bits: np.ndarray, feature_count: int) -> np.ndarray:
        """Recover values from thermometer bits produced by :meth:`encode`."""
        bits = np.asarray(bits)
        expected = feature_count * self.population
        if bits.ndim != 2 or bits.shape[1] != expected:
            raise ValueError(
                f"bits must have shape (batch, {expected}), got {bits.shape}"
            )
        grouped = bits.reshape(bits.shape[0], feature_count, self.population)
        return grouped.sum(axis=2) / float(self.population)
