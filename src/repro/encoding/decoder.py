"""Readout decoding: spike counts to class predictions.

The paper's networks predict by counting the output spikes accumulated per
class (across readout neurons, network copies, and spike frames) and taking
the argmax.  :class:`SpikeCountDecoder` implements that readout together with
the per-class merge defined by a neuron-to-class assignment.
"""

from __future__ import annotations

import numpy as np


class SpikeCountDecoder:
    """Accumulates output spikes per class and predicts by argmax.

    Args:
        class_assignment: integer array mapping each readout neuron to its
            class label.
        num_classes: number of classes.
    """

    def __init__(self, class_assignment: np.ndarray, num_classes: int):
        class_assignment = np.asarray(class_assignment, dtype=int)
        if class_assignment.ndim != 1 or class_assignment.size == 0:
            raise ValueError("class_assignment must be a non-empty 1-D array")
        if num_classes <= 1:
            raise ValueError(f"num_classes must be > 1, got {num_classes}")
        if class_assignment.min() < 0 or class_assignment.max() >= num_classes:
            raise ValueError("class_assignment entries must lie in [0, num_classes)")
        self.class_assignment = class_assignment
        self.num_classes = num_classes
        counts = np.bincount(class_assignment, minlength=num_classes)
        if (counts == 0).any():
            raise ValueError("every class must have at least one readout neuron")
        self._class_counts = counts.astype(float)

    def class_scores(self, neuron_spike_counts: np.ndarray) -> np.ndarray:
        """Sum neuron spike counts into per-class scores.

        Args:
            neuron_spike_counts: array of shape (batch, neurons) or (neurons,).

        Returns:
            array of shape (batch, num_classes) (or (num_classes,) for a 1-D
            input) with the average spike count of each class's readout
            population.
        """
        counts = np.asarray(neuron_spike_counts, dtype=float)
        single = counts.ndim == 1
        if single:
            counts = counts[None, :]
        if counts.shape[1] != self.class_assignment.size:
            raise ValueError(
                f"expected {self.class_assignment.size} neuron counts per row, "
                f"got {counts.shape[1]}"
            )
        scores = np.zeros((counts.shape[0], self.num_classes))
        np.add.at(scores, (slice(None), self.class_assignment), counts)
        scores /= self._class_counts[None, :]
        return scores[0] if single else scores

    def predict(self, neuron_spike_counts: np.ndarray) -> np.ndarray:
        """Predicted class labels from neuron spike counts."""
        scores = self.class_scores(neuron_spike_counts)
        if scores.ndim == 1:
            return np.asarray(int(scores.argmax()))
        return scores.argmax(axis=1)
