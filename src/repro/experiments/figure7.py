"""Figure 7: accuracy surfaces over the (copies, spf) grid.

Two surfaces are reported — one for the Tea-trained model, one for the
probability-biased model — over spatial duplication levels (network copies)
and temporal duplication levels (spikes per frame).  The paper's shape
claims, which the corresponding benchmark asserts, are that both surfaces
rise and saturate toward the floating-point ceiling as duplication grows and
that the biased surface sits above the Tea surface.

All scoring goes through :class:`repro.api.Session`: the two sweeps are
*submitted* and flushed together so requests sharing a model fingerprint
coalesce onto one engine pass, and the backend is a one-line config —
``backend="vectorized"`` (default), ``"reference"``, or a pre-configured
session with a persistent ``cache_dir``.  Figure 8 (which differences the
two surfaces) and repeated invocations reuse the session's score caches
instead of re-deploying anything.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.api import EvalRequest, Session
from repro.experiments.runner import ExperimentContext


def run_figure7(
    context: Optional[ExperimentContext] = None,
    copy_levels: Sequence[int] = (1, 2, 4, 8, 16),
    spf_levels: Sequence[int] = (1, 2, 3, 4),
    session: Optional[Session] = None,
    backend: str = "vectorized",
) -> Dict[str, object]:
    """Regenerate Figure 7 (both accuracy surfaces).

    Args:
        context: shared trained-model context.
        copy_levels / spf_levels: grid to sweep.
        session: optional pre-configured :class:`repro.api.Session` (lets
            callers share its caches across figures); created from
            ``backend`` when omitted.
        backend: evaluation backend to score on when no session is given.

    Returns a dict with the grids, each method's mean-accuracy surface (as
    nested lists), and the float-model ceiling accuracies.
    """
    context = context or ExperimentContext()
    dataset = context.evaluation_dataset()
    session = session or Session(backend=backend)
    pending = {
        method: session.submit(
            EvalRequest(
                model=context.result(method).model,
                dataset=dataset,
                copy_levels=tuple(copy_levels),
                spf_levels=tuple(spf_levels),
                repeats=context.repeats,
                seed=context.seed,
            )
        )
        for method in ("tea", "biased")
    }
    session.flush()
    report: Dict[str, object] = {
        "copy_levels": list(pending["tea"].request.copy_levels),
        "spf_levels": list(pending["tea"].request.spf_levels),
    }
    for method, handle in pending.items():
        result = handle.result()
        sweep = result.sweep(label=method)
        report[method] = {
            "surface": sweep.mean_accuracy.tolist(),
            "std": sweep.std_accuracy.tolist(),
            "cores": sweep.cores.tolist(),
            "float_accuracy": context.result(method).float_accuracy,
        }
        report[f"_sweep_{method}"] = sweep
        report[f"_result_{method}"] = result
    return report
