"""Figure 7: accuracy surfaces over the (copies, spf) grid.

Two surfaces are reported — one for the Tea-trained model, one for the
probability-biased model — over spatial duplication levels (network copies)
and temporal duplication levels (spikes per frame).  The paper's shape
claims, which the corresponding benchmark asserts, are that both surfaces
rise and saturate toward the floating-point ceiling as duplication grows and
that the biased surface sits above the Tea surface.

Both sweeps run on the vectorized evaluation engine through one shared
:class:`~repro.eval.runner.SweepRunner`, so Figure 8 (which differences the
two surfaces) and repeated invocations reuse the cached score tensors
instead of re-deploying anything.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.eval.runner import SweepRunner
from repro.experiments.runner import ExperimentContext


def run_figure7(
    context: Optional[ExperimentContext] = None,
    copy_levels: Sequence[int] = (1, 2, 4, 8, 16),
    spf_levels: Sequence[int] = (1, 2, 3, 4),
    runner: Optional[SweepRunner] = None,
) -> Dict[str, object]:
    """Regenerate Figure 7 (both accuracy surfaces).

    Args:
        context: shared trained-model context.
        copy_levels / spf_levels: grid to sweep (ignored when ``runner`` is
            given, which carries its own grid).
        runner: optional pre-configured sweep runner (lets callers share its
            score cache across figures).

    Returns a dict with the grids, each method's mean-accuracy surface (as
    nested lists), and the float-model ceiling accuracies.
    """
    context = context or ExperimentContext()
    dataset = context.evaluation_dataset()
    runner = runner or SweepRunner(
        copy_levels=copy_levels,
        spf_levels=spf_levels,
        repeats=context.repeats,
    )
    report: Dict[str, object] = {
        "copy_levels": list(runner.copy_levels),
        "spf_levels": list(runner.spf_levels),
    }
    for method in ("tea", "biased"):
        result = context.result(method)
        sweep = runner.run(result.model, dataset, rng=context.seed, label=method)
        report[method] = {
            "surface": sweep.mean_accuracy.tolist(),
            "std": sweep.std_accuracy.tolist(),
            "cores": sweep.cores.tolist(),
            "float_accuracy": result.float_accuracy,
        }
        report[f"_sweep_{method}"] = sweep
    return report
