"""Figure 9: adaptability and scalability of the biasing method.

* Figure 9(a): average core reduction (at matched accuracy) as a function of
  the spikes-per-frame level, on test bench 1.
* Figure 9(b): average core reduction across the five test benches of
  Table 3.

Both reuse the Table 2(a) matching procedure; all scoring goes through one
shared :class:`repro.api.Session`.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.api import EvalRequest, Session
from repro.experiments.runner import ExperimentContext
from repro.experiments.table2 import run_table2a


def run_figure9a(
    context: Optional[ExperimentContext] = None,
    spf_levels: Sequence[int] = (1, 2, 3, 4),
    copy_levels: Sequence[int] = (1, 2, 3, 4, 5, 7, 9, 16),
    biased_copy_levels: Sequence[int] = (1, 2, 3, 4),
    session: Optional[Session] = None,
    backend: str = "vectorized",
) -> Dict[str, object]:
    """Regenerate Figure 9(a): average core saving vs spikes per frame.

    Each method's full (copies x spf) grid is evaluated in a single session
    pass; every per-spf Table 2(a) matching then reads its rows off that
    one score tensor instead of re-deploying per spf level.
    """
    context = context or ExperimentContext()
    dataset = context.evaluation_dataset()
    session = session or Session(backend=backend)
    pending = {
        method: session.submit(
            EvalRequest(
                model=context.result(method).model,
                dataset=dataset,
                copy_levels=tuple(levels),
                spf_levels=tuple(spf_levels),
                repeats=context.repeats,
                seed=context.seed,
            )
        )
        for method, levels in (("tea", copy_levels), ("biased", biased_copy_levels))
    }
    session.flush()
    sweeps = {
        method: handle.result().sweep(label=method)
        for method, handle in pending.items()
    }
    savings = {}
    for spf in spf_levels:
        report = run_table2a(
            context,
            copy_levels=copy_levels,
            biased_copy_levels=biased_copy_levels,
            spf=spf,
            tea_sweep=sweeps["tea"],
            biased_sweep=sweeps["biased"],
            session=session,
        )
        savings[int(spf)] = {
            "average_saved_fraction": report["average_saved_fraction"],
            "max_saved_fraction": report["max_saved_fraction"],
        }
    return {"spf_levels": list(spf_levels), "savings": savings}


def run_figure9b(
    testbenches: Sequence[int] = (1, 4),
    copy_levels: Sequence[int] = (1, 2, 3, 4, 5, 7, 9, 16),
    biased_copy_levels: Sequence[int] = (1, 2, 3, 4),
    context_overrides: Optional[Dict[str, object]] = None,
    session: Optional[Session] = None,
    backend: str = "vectorized",
) -> Dict[str, object]:
    """Regenerate Figure 9(b): average core saving per test bench.

    Training and sweeping all five benches is expensive, so the default
    covers the single-hidden-layer MNIST and RS130 benches (1 and 4); pass
    ``testbenches=(1, 2, 3, 4, 5)`` for the full figure.
    """
    overrides = dict(context_overrides or {})
    session = session or Session(backend=backend)
    results: Dict[int, Dict[str, object]] = {}
    for bench in testbenches:
        context = ExperimentContext(testbench=bench, **overrides)
        report = run_table2a(
            context,
            copy_levels=copy_levels,
            biased_copy_levels=biased_copy_levels,
            spf=1,
            session=session,
        )
        results[int(bench)] = {
            "average_saved_fraction": report["average_saved_fraction"],
            "max_saved_fraction": report["max_saved_fraction"],
            "tea_float_accuracy": context.result("tea").float_accuracy,
            "biased_float_accuracy": context.result("biased").float_accuracy,
        }
    return {"testbenches": list(testbenches), "savings": results}
