"""Shared experiment context.

Most figures and tables of the paper evaluate the *same* pair of trained
models (Tea vs probability-biased) on test bench 1, so the drivers share an
:class:`ExperimentContext` that trains each method once and caches the
result.  The context also centralizes the laptop-scale defaults (dataset
sizes, epochs, repeats) and the random seed so that every experiment in a run
is reproducible end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.biased import L1Learning, ProbabilityBiasedLearning
from repro.core.model import NetworkArchitecture
from repro.core.tea import LearningResult, TeaLearning
from repro.datasets.base import DatasetSplits
from repro.experiments.testbenches import (
    TEST_BENCHES,
    TestBenchConfig,
    build_testbench_architecture,
    load_testbench_data,
)


@dataclass
class ExperimentContext:
    """Caches datasets and trained models shared across experiment drivers.

    Attributes:
        testbench: which Table 3 test bench to use (default 1, as in the
            paper's Sections 4.2-4.4).
        train_size / test_size: synthetic dataset sizes (laptop-scale
            defaults; the paper's corpora are larger).
        epochs: training epochs per method.
        eval_samples: number of test samples used by deployment evaluations.
        repeats: deployment repeats averaged per configuration.
        penalty_weight: lambda of the biasing penalty.
        biased_extra_epochs: additional epochs granted to the
            probability-biased run on top of ``epochs``.  The penalty phase
            needs extra iterations to settle the probabilities at the poles
            while the data loss re-adapts; the baseline (no penalty) does not
            benefit from them.
        seed: root seed for data generation, training, and deployment.
    """

    testbench: int = 1
    train_size: int = 2000
    test_size: int = 450
    epochs: int = 16
    eval_samples: int = 300
    repeats: int = 3
    penalty_weight: float = 0.0002
    biased_extra_epochs: int = 4
    l1_penalty_weight: float = 0.0003
    seed: int = 0
    _splits: Optional[DatasetSplits] = field(default=None, repr=False)
    _architecture: Optional[NetworkArchitecture] = field(default=None, repr=False)
    _results: Dict[str, LearningResult] = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    @property
    def config(self) -> TestBenchConfig:
        """The Table 3 configuration of the selected test bench."""
        return TEST_BENCHES[self.testbench]

    def splits(self) -> DatasetSplits:
        """The (cached) synthetic dataset of the test bench."""
        if self._splits is None:
            self._splits = load_testbench_data(
                self.config,
                train_size=self.train_size,
                test_size=self.test_size,
                seed=self.seed,
            )
        return self._splits

    def architecture(self) -> NetworkArchitecture:
        """The (cached) network architecture of the test bench."""
        if self._architecture is None:
            self._architecture = build_testbench_architecture(self.config)
        return self._architecture

    # ------------------------------------------------------------------
    def _make_method(self, method: str):
        if method == "tea":
            return TeaLearning(epochs=self.epochs, seed=self.seed)
        if method == "biased":
            return ProbabilityBiasedLearning(
                epochs=self.epochs + self.biased_extra_epochs,
                seed=self.seed,
                penalty_weight=self.penalty_weight,
            )
        if method == "l1":
            return L1Learning(
                epochs=self.epochs,
                seed=self.seed,
                penalty_weight=self.l1_penalty_weight,
            )
        raise KeyError(f"unknown learning method {method!r}")

    def result(self, method: str) -> LearningResult:
        """Train (once) and return the result of a learning method."""
        if method not in self._results:
            learner = self._make_method(method)
            self._results[method] = learner.train(self.architecture(), self.splits())
        return self._results[method]

    def evaluation_dataset(self):
        """The capped test set used by deployment evaluations."""
        return self.splits().test.take(self.eval_samples)


def train_method_pair(
    context: Optional[ExperimentContext] = None,
) -> Tuple[LearningResult, LearningResult]:
    """Train the (Tea, biased) pair on the context's test bench.

    Returns ``(tea_result, biased_result)``; creates a default context when
    none is given.
    """
    context = context or ExperimentContext()
    return context.result("tea"), context.result("biased")
