"""Table 2: core-occupation and performance efficiency at matched accuracy.

Table 2(a) fixes the temporal duplication (1 spf) and sweeps spatial copies
for both methods; every Tea configuration N# is matched with the cheapest
biased configuration B# reaching at least the same accuracy, and the saved
cores are reported.  Table 2(b) fixes one network copy and sweeps spikes per
frame, reporting the speedup instead.

All scoring goes through :class:`repro.api.Session` (backend selectable per
call); pre-computed sweeps covering the requested levels — e.g. Figure
9(a)'s one full-grid pass feeding every per-spf row — are accepted and used
as-is.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.api import EvalRequest, Session
from repro.eval.comparison import (
    core_occupation_comparison,
    label_points,
    performance_comparison,
)
from repro.eval.sweep import SweepResult
from repro.experiments.runner import ExperimentContext
from repro.utils.tables import format_table


def _method_sweep(
    session: Session,
    context: ExperimentContext,
    method: str,
    copy_levels: Sequence[int],
    spf_levels: Sequence[int],
) -> SweepResult:
    """One method's accuracy sweep served through the session."""
    result = session.evaluate(
        EvalRequest(
            model=context.result(method).model,
            dataset=context.evaluation_dataset(),
            copy_levels=tuple(copy_levels),
            spf_levels=tuple(spf_levels),
            repeats=context.repeats,
            seed=context.seed,
        )
    )
    return result.sweep(label=method)


def _copy_sweep_points(
    session: Session,
    context: ExperimentContext,
    method: str,
    copy_levels,
    spf: int,
    sweep: Optional[SweepResult] = None,
):
    """Accuracy-vs-cores points for one method at fixed spf.

    A pre-computed ``sweep`` covering ``copy_levels`` and ``spf`` (e.g. one
    full-grid pass shared by Figure 9(a)'s per-spf rows) is used when given;
    otherwise a single-spf sweep runs through the session.
    """
    if sweep is None:
        sweep = _method_sweep(session, context, method, copy_levels, (spf,))
    levels = tuple(sorted(set(int(c) for c in copy_levels)))
    accuracies = [sweep.accuracy_at(c, spf) for c in levels]
    cores_by_level = dict(zip(sweep.copy_levels, sweep.cores))
    cores = [int(cores_by_level[c]) for c in levels]
    prefix = "N" if method == "tea" else "B"
    return label_points(levels, accuracies, cores, prefix), sweep


def _spf_sweep_points(
    session: Session,
    context: ExperimentContext,
    method: str,
    spf_levels,
    copies: int,
):
    """Accuracy-vs-spf points for one method at fixed copies."""
    sweep = _method_sweep(session, context, method, (copies,), spf_levels)
    accuracies = [sweep.accuracy_at(copies, s) for s in sweep.spf_levels]
    costs = [float(s) for s in sweep.spf_levels]
    prefix = "N" if method == "tea" else "B"
    return label_points(sweep.spf_levels, accuracies, costs, prefix), sweep


def run_table2a(
    context: Optional[ExperimentContext] = None,
    copy_levels: Sequence[int] = (1, 2, 3, 4, 5, 7, 9, 10, 16),
    biased_copy_levels: Sequence[int] = (1, 2, 3, 4, 5),
    spf: int = 1,
    tea_sweep: Optional[SweepResult] = None,
    biased_sweep: Optional[SweepResult] = None,
    session: Optional[Session] = None,
    backend: str = "vectorized",
) -> Dict[str, object]:
    """Regenerate Table 2(a): core occupation efficiency at ``spf`` spikes/frame.

    ``tea_sweep`` / ``biased_sweep`` may carry pre-computed grids covering
    the requested levels (Figure 9(a) passes one full-grid evaluation and
    reads every spf row off it); fresh sweeps run through ``session`` (or a
    new one on ``backend``).
    """
    context = context or ExperimentContext()
    session = session or Session(backend=backend)
    tea_points, _ = _copy_sweep_points(
        session, context, "tea", copy_levels, spf, sweep=tea_sweep
    )
    biased_points, _ = _copy_sweep_points(
        session, context, "biased", biased_copy_levels, spf, sweep=biased_sweep
    )
    rows, average_saving, max_saving = core_occupation_comparison(
        tea_points, biased_points
    )
    table_rows: List[tuple] = []
    for row in rows:
        ours_label = row.ours.label if row.ours else "-"
        ours_cores = int(row.ours.cost) if row.ours else 0
        table_rows.append(
            (
                row.baseline.label,
                f"{row.baseline.accuracy:.4f}",
                int(row.baseline.cost),
                ours_label,
                f"{row.ours.accuracy:.4f}" if row.ours else "-",
                ours_cores,
                int(row.saved_cost),
                f"{100 * row.saved_fraction:.1f}%",
            )
        )
    table = format_table(
        ["tea", "accuracy", "cores", "biased", "accuracy", "cores", "saved", "saved %"],
        table_rows,
        title=f"Table 2(a): core occupation efficiency ({spf} spf)",
    )
    return {
        "rows": rows,
        "table": table,
        "average_saved_fraction": average_saving,
        "max_saved_fraction": max_saving,
        "paper": {"average_saved_fraction": 0.495, "max_saved_fraction": 0.688},
    }


def run_table2b(
    context: Optional[ExperimentContext] = None,
    spf_levels: Sequence[int] = (1, 2, 3, 6, 7, 11, 13),
    biased_spf_levels: Sequence[int] = (1, 2, 3, 4, 5),
    copies: int = 1,
    session: Optional[Session] = None,
    backend: str = "vectorized",
) -> Dict[str, object]:
    """Regenerate Table 2(b): performance efficiency at ``copies`` network copies."""
    context = context or ExperimentContext()
    session = session or Session(backend=backend)
    tea_points, _ = _spf_sweep_points(session, context, "tea", spf_levels, copies)
    biased_points, _ = _spf_sweep_points(
        session, context, "biased", biased_spf_levels, copies
    )
    rows, max_speedup = performance_comparison(tea_points, biased_points)
    table_rows: List[tuple] = []
    for row in rows:
        ours_label = row.ours.label if row.ours else "-"
        table_rows.append(
            (
                row.baseline.label,
                f"{row.baseline.accuracy:.4f}",
                int(row.baseline.cost),
                ours_label,
                f"{row.ours.accuracy:.4f}" if row.ours else "-",
                int(row.ours.cost) if row.ours else 0,
                f"{row.speedup:.2f}x",
            )
        )
    table = format_table(
        ["tea", "accuracy", "spf", "biased", "accuracy", "spf", "speedup"],
        table_rows,
        title=f"Table 2(b): performance efficiency ({copies} network copy)",
    )
    return {
        "rows": rows,
        "table": table,
        "max_speedup": max_speedup,
        "paper": {"max_speedup": 6.5},
    }
