"""Figure 4: synaptic-weight deviation maps of deployed cores.

The paper's headline statistics: without the biasing penalty 24.01% of a
core's synapses deviate from the desired weight by more than 50% of the
maximum synaptic weight, while with it 98.45% of synapses have exactly zero
deviation.  The driver deploys one copy of each model, inspects the same
first-layer core, and reports the map statistics.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.eval.deviation import deviation_summary_pair
from repro.experiments.runner import ExperimentContext


def run_figure4(context: Optional[ExperimentContext] = None) -> Dict[str, object]:
    """Regenerate Figure 4's deviation statistics for the (Tea, biased) pair."""
    context = context or ExperimentContext()
    tea_result = context.result("tea")
    biased_result = context.result("biased")
    tea_report, biased_report = deviation_summary_pair(
        tea_result.model, biased_result.model, rng=context.seed
    )
    return {
        "tea": tea_report.summary(),
        "biased": biased_report.summary(),
        "paper": {
            "tea_above_half_fraction": 0.2401,
            "biased_zero_fraction": 0.9845,
            "biased_above_half_fraction": 0.0002,
        },
    }
