"""Figure 8: accuracy boost of probability-biased learning over Tea learning.

The boost surface is simply the difference of the two Figure 7 surfaces; the
paper's shape claim is that the gain is largest at the smallest duplication
level (1 copy, 1 spf) and shrinks as duplication washes the sampling variance
out.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.api import Session
from repro.eval.sweep import accuracy_boost
from repro.experiments.figure7 import run_figure7
from repro.experiments.runner import ExperimentContext


def run_figure8(
    context: Optional[ExperimentContext] = None,
    copy_levels: Sequence[int] = (1, 2, 4, 8, 16),
    spf_levels: Sequence[int] = (1, 2, 3, 4),
    figure7_report: Optional[Dict[str, object]] = None,
    session: Optional[Session] = None,
    backend: str = "vectorized",
) -> Dict[str, object]:
    """Regenerate Figure 8 (the boost surface).

    Reuses a Figure 7 report when provided (the two figures share their
    sweeps); otherwise runs the sweeps itself through
    :class:`repro.api.Session` — when neither a report nor a session is
    given, the vectorized backend's score cache still deduplicates against
    any earlier Figure 7 run with the same seed.
    """
    context = context or ExperimentContext()
    report = figure7_report or run_figure7(
        context,
        copy_levels=copy_levels,
        spf_levels=spf_levels,
        session=session,
        backend=backend,
    )
    boost = accuracy_boost(report["_sweep_biased"], report["_sweep_tea"])
    max_index = np.unravel_index(np.argmax(boost), boost.shape)
    return {
        "copy_levels": report["copy_levels"],
        "spf_levels": report["spf_levels"],
        "boost": boost.tolist(),
        "max_boost": float(boost.max()),
        "max_boost_at": {
            "copies": report["copy_levels"][max_index[0]],
            "spf": report["spf_levels"][max_index[1]],
        },
        "boost_at_minimum_duplication": float(boost[0, 0]),
    }
