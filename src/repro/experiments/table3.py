"""Table 3: the test-bench configurations and their floating-point accuracies.

The structural columns (dataset, stride, hidden layers, cores per layer) come
straight from the configuration registry; the "accuracy in Caffe" column is
re-measured by training the Tea model of each requested bench on its
synthetic dataset.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.runner import ExperimentContext
from repro.experiments.testbenches import TEST_BENCHES
from repro.utils.tables import format_table


def run_table3(
    testbenches: Sequence[int] = (1, 2, 3, 4, 5),
    measure: Sequence[int] = (1, 4),
    context_overrides: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Regenerate Table 3.

    Args:
        testbenches: benches whose structural rows are listed.
        measure: benches whose float accuracy is re-measured by training
            (training all five is expensive; the default trains the two
            single-hidden-layer benches).
        context_overrides: keyword overrides for the per-bench
            :class:`ExperimentContext` (e.g. smaller ``train_size``).

    Returns:
        dict with ``rows`` and the formatted ``table``.
    """
    overrides = dict(context_overrides or {})
    measured = set(int(b) for b in measure)
    rows = []
    for bench in testbenches:
        config = TEST_BENCHES[int(bench)]
        measured_accuracy = None
        if int(bench) in measured:
            context = ExperimentContext(testbench=int(bench), **overrides)
            measured_accuracy = context.result("tea").float_accuracy
        rows.append(
            {
                "testbench": config.index,
                "dataset": config.dataset.upper(),
                "block_stride": config.block_stride,
                "hidden_layers": config.hidden_layer_count,
                "cores_per_layer": "~".join(str(c) for c in config.cores_per_layer),
                "cores_per_copy": sum(config.cores_per_layer),
                "paper_caffe_accuracy": config.paper_caffe_accuracy,
                "measured_float_accuracy": measured_accuracy,
            }
        )
    table = format_table(
        [
            "bench",
            "dataset",
            "stride",
            "hidden layers",
            "cores per layer",
            "paper Caffe acc",
            "measured float acc",
        ],
        [
            (
                row["testbench"],
                row["dataset"],
                row["block_stride"],
                row["hidden_layers"],
                row["cores_per_layer"],
                f"{row['paper_caffe_accuracy']:.4f}",
                "-"
                if row["measured_float_accuracy"] is None
                else f"{row['measured_float_accuracy']:.4f}",
            )
            for row in rows
        ],
        title="Table 3: test benches",
    )
    return {"rows": rows, "table": table}
