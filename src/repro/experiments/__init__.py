"""Experiment drivers: one module per table / figure of the paper.

Each driver builds (or reuses) the trained models it needs, runs the relevant
evaluation, and returns a plain-dict report that the benchmark harness and
the examples print.  The drivers default to laptop-scale settings (small
synthetic datasets, few repeats) and expose parameters to scale up.

The :mod:`repro.experiments.testbenches` module defines the five test-bench
configurations of Table 3.
"""

from repro.experiments.testbenches import (
    TestBenchConfig,
    TEST_BENCHES,
    build_testbench_architecture,
    load_testbench_data,
    testbench_sweep,
)
from repro.experiments.runner import ExperimentContext, train_method_pair
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2a, run_table2b
from repro.experiments.table3 import run_table3
from repro.experiments.figure4 import run_figure4
from repro.experiments.figure5 import run_figure5
from repro.experiments.figure7 import run_figure7
from repro.experiments.figure8 import run_figure8
from repro.experiments.figure9 import run_figure9a, run_figure9b

__all__ = [
    "TestBenchConfig",
    "TEST_BENCHES",
    "build_testbench_architecture",
    "load_testbench_data",
    "testbench_sweep",
    "ExperimentContext",
    "train_method_pair",
    "run_table1",
    "run_table2a",
    "run_table2b",
    "run_table3",
    "run_figure4",
    "run_figure5",
    "run_figure7",
    "run_figure8",
    "run_figure9a",
    "run_figure9b",
]
