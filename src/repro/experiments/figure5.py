"""Figure 5: connectivity-probability histograms under different penalties.

The figure compares the distribution of the learned connectivity
probabilities for three training runs of test bench 1 — no penalty, L1
penalty, and the biasing penalty — showing that only the biasing penalty
concentrates the mass at the deterministic poles.  The driver reports the
histograms plus the scalar summaries (fraction of probabilities near the
poles / near the worst point) and the float accuracies of the three models.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.penalties import centroid_fraction, penalty_histogram, pole_fraction
from repro.experiments.runner import ExperimentContext


def run_figure5(
    context: Optional[ExperimentContext] = None, bins: int = 20
) -> Dict[str, object]:
    """Regenerate Figure 5 (probability histograms for none / L1 / biasing).

    Returns a dict keyed by method name; each entry holds the histogram
    counts, bin edges, pole/centroid fractions, and the float accuracy.
    """
    context = context or ExperimentContext()
    report: Dict[str, object] = {"bins": bins}
    for method in ("tea", "l1", "biased"):
        result = context.result(method)
        probabilities = result.model.all_probabilities()
        counts, edges = penalty_histogram(probabilities, bins=bins)
        report[method] = {
            "histogram_counts": counts.tolist(),
            "bin_edges": edges.tolist(),
            "pole_fraction": pole_fraction(probabilities),
            "centroid_fraction": centroid_fraction(probabilities),
            "float_accuracy": result.float_accuracy,
        }
    return report
