"""The five test benches of Table 3.

Each test bench couples a dataset with a network structure:

====== ======= ============ ============== =================
bench  dataset block stride hidden layers  cores per layer
====== ======= ============ ============== =================
1      MNIST   12           1              4
2      MNIST   4            1              16
3      MNIST   2            3              49 / 9 / 4
4      RS130   3            1              4
5      RS130   1            2              16 / 9
====== ======= ============ ============== =================

MNIST images are 28x28 and partitioned by a 16x16 sliding window; RS130's
357 features are reshaped to a 19x19 grid and partitioned by an 8x8 window
(which yields the 4 / 16 first-layer core counts of the paper with strides
3 and 1 after rounding to the grid, see :func:`build_testbench_architecture`).

The neurons-per-core values are reproduction choices (the paper does not list
them); they are picked so that deeper layers respect the 256-axon limit and
the overall network remains laptop-trainable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.core.model import LayerSpec, NetworkArchitecture
from repro.datasets.base import DatasetSplits
from repro.datasets.registry import load_dataset
from repro.datasets.synthetic_rs130 import reshape_to_grid
from repro.mapping.blocks import stride_blocks


@dataclass(frozen=True)
class TestBenchConfig:
    """One row of Table 3.

    Attributes:
        index: test bench number (1-5).
        dataset: ``"mnist"`` or ``"rs130"``.
        block_stride: sliding-window stride of the first-layer partition.
        hidden_layer_count: number of hidden layers.
        cores_per_layer: cores occupied by each hidden layer (paper values).
        paper_caffe_accuracy: the floating-point accuracy the paper reports.
        block_shape: window size of the first-layer partition.
        grid_shape: image shape the features are arranged in before
            partitioning.
        neurons_per_core: per-layer neuron counts used by the reproduction.
    """

    index: int
    dataset: str
    block_stride: int
    hidden_layer_count: int
    cores_per_layer: Tuple[int, ...]
    paper_caffe_accuracy: float
    block_shape: Tuple[int, int]
    grid_shape: Tuple[int, int]
    neurons_per_core: Tuple[int, ...]


TEST_BENCHES: Dict[int, TestBenchConfig] = {
    1: TestBenchConfig(
        index=1,
        dataset="mnist",
        block_stride=12,
        hidden_layer_count=1,
        cores_per_layer=(4,),
        paper_caffe_accuracy=0.9527,
        block_shape=(16, 16),
        grid_shape=(28, 28),
        neurons_per_core=(20,),
    ),
    2: TestBenchConfig(
        index=2,
        dataset="mnist",
        block_stride=4,
        hidden_layer_count=1,
        cores_per_layer=(16,),
        paper_caffe_accuracy=0.9671,
        block_shape=(16, 16),
        grid_shape=(28, 28),
        neurons_per_core=(20,),
    ),
    3: TestBenchConfig(
        index=3,
        dataset="mnist",
        block_stride=2,
        hidden_layer_count=3,
        cores_per_layer=(49, 9, 4),
        paper_caffe_accuracy=0.9705,
        block_shape=(16, 16),
        grid_shape=(28, 28),
        neurons_per_core=(20, 30, 30),
    ),
    4: TestBenchConfig(
        index=4,
        dataset="rs130",
        block_stride=3,
        hidden_layer_count=1,
        cores_per_layer=(4,),
        paper_caffe_accuracy=0.6909,
        block_shape=(16, 16),
        grid_shape=(19, 19),
        neurons_per_core=(21,),
    ),
    5: TestBenchConfig(
        index=5,
        dataset="rs130",
        block_stride=1,
        hidden_layer_count=2,
        cores_per_layer=(16, 9),
        paper_caffe_accuracy=0.6965,
        block_shape=(16, 16),
        grid_shape=(19, 19),
        neurons_per_core=(21, 21),
    ),
}


def build_testbench_architecture(config: TestBenchConfig) -> NetworkArchitecture:
    """Build the :class:`NetworkArchitecture` of a test bench.

    The first layer's blocks come from the stride partition of the input
    grid; deeper layers use the paper's cores-per-layer counts with
    contiguous partitioning of the previous layer's outputs.
    """
    partition = stride_blocks(
        image_shape=config.grid_shape,
        block_shape=config.block_shape,
        stride=config.block_stride,
    )
    expected_first_layer = config.cores_per_layer[0]
    if partition.block_count != expected_first_layer:
        raise ValueError(
            f"test bench {config.index}: stride {config.block_stride} produces "
            f"{partition.block_count} blocks, but the paper lists "
            f"{expected_first_layer} first-layer cores"
        )
    layers = [
        LayerSpec(
            core_count=partition.block_count,
            neurons_per_core=config.neurons_per_core[0],
            input_indices=partition.blocks,
        )
    ]
    for depth in range(1, config.hidden_layer_count):
        layers.append(
            LayerSpec(
                core_count=config.cores_per_layer[depth],
                neurons_per_core=config.neurons_per_core[depth],
            )
        )
    num_classes = 10 if config.dataset == "mnist" else 3
    input_dim = config.grid_shape[0] * config.grid_shape[1]
    return NetworkArchitecture(
        input_dim=input_dim,
        layers=tuple(layers),
        num_classes=num_classes,
        synaptic_value=1.0,
        activation_sigma=2.0,
        weight_init_scale=3.0,
        name=f"testbench-{config.index}",
    )


def load_testbench_data(
    config: TestBenchConfig,
    train_size: Optional[int] = None,
    test_size: Optional[int] = None,
    seed: int = 0,
) -> DatasetSplits:
    """Load (generate) the dataset of a test bench, arranged for its grid.

    RS130 features are zero-padded and reshaped to the 19x19 grid the
    architecture partitions; MNIST features are already 28x28.
    """
    splits = load_dataset(
        config.dataset, train_size=train_size, test_size=test_size, seed=seed
    )
    if config.dataset == "rs130":
        from repro.datasets.base import Dataset, DatasetSplits as Splits

        grid = config.grid_shape[0]
        train = Dataset(
            features=reshape_to_grid(splits.train.features, grid_size=grid),
            labels=splits.train.labels,
            num_classes=splits.train.num_classes,
            name=splits.train.name,
            image_shape=config.grid_shape,
        )
        test = Dataset(
            features=reshape_to_grid(splits.test.features, grid_size=grid),
            labels=splits.test.labels,
            num_classes=splits.test.num_classes,
            name=splits.test.name,
            image_shape=config.grid_shape,
        )
        return Splits(train=train, test=test)
    return splits


def testbench_sweep(
    bench: int,
    method: str = "tea",
    copy_levels: Sequence[int] = (1, 2, 4, 8, 16),
    spf_levels: Sequence[int] = (1, 2, 3, 4),
    context_overrides: Optional[Dict[str, object]] = None,
    session=None,
    backend: str = "vectorized",
):
    """Train one test bench's model and sweep its (copies, spf) grid.

    Convenience entry point tying a Table 3 bench to the
    :class:`repro.api.Session` grid evaluation — the path the eval-engine
    benchmark and the scalability figures use.

    Args:
        bench: test bench number (1-5).
        method: learning method to train ("tea", "biased", or "l1").
        copy_levels / spf_levels: duplication grid to evaluate.
        context_overrides: keyword overrides for the bench's
            :class:`~repro.experiments.runner.ExperimentContext` (e.g. a
            smaller ``train_size`` for smoke runs).
        session: optional pre-configured :class:`repro.api.Session`;
            created from ``backend`` when omitted.
        backend: evaluation backend to score on when no session is given.

    Returns:
        ``(sweep, context)`` — the :class:`repro.eval.sweep.SweepResult` and
        the context holding the trained model.
    """
    from repro.api import EvalRequest, Session
    from repro.experiments.runner import ExperimentContext

    context = ExperimentContext(testbench=int(bench), **dict(context_overrides or {}))
    session = session or Session(backend=backend)
    result = session.evaluate(
        EvalRequest(
            model=context.result(method).model,
            dataset=context.evaluation_dataset(),
            copy_levels=tuple(copy_levels),
            spf_levels=tuple(spf_levels),
            repeats=context.repeats,
            seed=context.seed,
        )
    )
    return result.sweep(label=f"testbench-{bench}-{method}"), context


def testbench_chip_validation(
    bench: int,
    method: str = "tea",
    spikes_per_frame: int = 4,
    max_samples: Optional[int] = None,
    context_overrides: Optional[Dict[str, object]] = None,
    session=None,
):
    """Validate a test bench on the cycle-accurate chip simulator.

    The "ground truth" counterpart of :func:`testbench_sweep`: the same
    :class:`repro.api.EvalRequest` is served by the ``chip`` backend, which
    programs each deployed copy onto a
    :class:`~repro.truenorth.chip.TrueNorthChip` and pushes the whole
    evaluation set through the batched tick engine in lock-step — the path
    the chip-engine benchmark times and the table experiments use to
    cross-check the fast evaluator.

    Args:
        bench: test bench number (1-5).
        method: learning method to train ("tea", "biased", or "l1").
        spikes_per_frame: input ticks encoded per sample.
        max_samples: optional cap on validated samples.
        context_overrides: keyword overrides for the bench's
            :class:`~repro.experiments.runner.ExperimentContext`.
        session: optional pre-configured :class:`repro.api.Session`; the
            chip backend is requested explicitly either way.

    Returns:
        dict with ``accuracy``, per-sample ``class_counts`` (batch,
        num_classes), the ``predictions``, and the evaluated sample count.
    """
    from repro.api import EvalRequest, Session
    from repro.experiments.runner import ExperimentContext

    context = ExperimentContext(testbench=int(bench), **dict(context_overrides or {}))
    session = session or Session()
    result = session.evaluate(
        EvalRequest(
            model=context.result(method).model,
            dataset=context.evaluation_dataset(),
            copy_levels=(1,),
            spf_levels=(int(spikes_per_frame),),
            repeats=1,
            seed=context.seed,
            max_samples=max_samples,
        ),
        backend="chip",
    )
    class_counts = result.class_counts()[0, 0, 0]
    predictions = result.scores[0, 0, 0].argmax(axis=1)
    return {
        "bench": int(bench),
        "method": method,
        "samples": int(class_counts.shape[0]),
        "spikes_per_frame": int(spikes_per_frame),
        "accuracy": float(result.accuracy[0, 0, 0]),
        "class_counts": class_counts,
        "predictions": predictions,
    }
