"""repro.serve — HTTP/queue evaluation service over :class:`repro.api.Session`.

The transport layer the ROADMAP's serve-style workload asked for: a
stdlib-only HTTP service (``http.server`` + ``queue``-style admission) in
front of the :mod:`repro.api` serving facade.

* :class:`EvalServer` / :class:`EvalService` / :class:`ServeConfig` /
  :class:`ModelRegistry` — the server side (:mod:`repro.serve.server`):
  admission-controlled bounded queue, worker pool whose per-batch
  ``Session.submit``/``flush`` drain coalesces same-fingerprint requests
  onto shared engine passes, explicit 429 + ``Retry-After`` overload
  shedding, ``/healthz`` + ``/metrics`` introspection.  Opt-in upgrades:
  adaptive admission toward a p95 target
  (:mod:`repro.serve.controller`), process workers around the GIL
  (``worker_mode="process"``), and a durable request journal with
  boot-time cache warming (:mod:`repro.serve.journal`).
* :class:`FrontServer` / :class:`FrontService` / :class:`FrontConfig` —
  the fleet router (:mod:`repro.serve.front`): consistent model→replica
  routing over a rendezvous ring (:mod:`repro.serve.ring`), fleet-wide
  admission from aggregated drain snapshots, health-based ejection with
  deterministic failover, and merged ``/metrics`` + ``/v1/fleet``
  introspection.
* :class:`ServeClient` — the stdlib client (:mod:`repro.serve.client`)
  returning bit-identical :class:`~repro.api.EvalResult` objects and typed
  errors, with decorrelated-jitter 429 retries and base-URL failover.
* :mod:`repro.serve.codec` — the strict JSON wire protocol.

Start a server (or ``python -m repro.serve`` / the ``repro-serve`` console
script from the command line)::

    from repro.api import Session
    from repro.experiments.runner import ExperimentContext
    from repro.serve import EvalServer, ModelRegistry, ServeConfig
    from repro.serve.client import ServeClient

    registry = ModelRegistry.from_context(
        ExperimentContext(train_size=400, epochs=3), methods=("tea",)
    )
    with EvalServer(registry, ServeConfig(port=0, workers=2)) as server:
        client = ServeClient(port=server.port)
        result = client.evaluate(model="tea", copy_levels=[1, 2], spf_levels=[2])
        print(result.mean_accuracy, client.metrics()["requests"])
"""

from repro.serve.admission import (
    AdmissionController,
    Job,
    QueueFullError,
    ServiceClosedError,
)
from repro.serve.client import (
    RequestRejectedError,
    ServeClient,
    ServeError,
    ServiceOverloadedError,
    ServiceUnavailableError,
)
from repro.serve.codec import (
    CodecError,
    UnknownDatasetError,
    UnknownModelError,
    WireRequest,
    decode_request,
    decode_result,
    encode_request,
    encode_result,
    wire_payload,
)
from repro.serve.controller import ControllerConfig, LatencyController
from repro.serve.front import (
    FleetUnavailableError,
    FrontConfig,
    FrontServer,
    FrontService,
)
from repro.serve.journal import RequestJournal, request_fingerprint
from repro.serve.ring import EmptyRingError, ReplicaRing
from repro.serve.server import (
    EvalServer,
    EvalService,
    ModelRegistry,
    ServeConfig,
)

__all__ = [
    "AdmissionController",
    "CodecError",
    "ControllerConfig",
    "EmptyRingError",
    "EvalServer",
    "EvalService",
    "FleetUnavailableError",
    "FrontConfig",
    "FrontServer",
    "FrontService",
    "Job",
    "LatencyController",
    "ModelRegistry",
    "QueueFullError",
    "ReplicaRing",
    "RequestJournal",
    "RequestRejectedError",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServiceClosedError",
    "ServiceOverloadedError",
    "ServiceUnavailableError",
    "UnknownDatasetError",
    "UnknownModelError",
    "WireRequest",
    "decode_request",
    "decode_result",
    "encode_request",
    "encode_result",
    "request_fingerprint",
    "wire_payload",
]
