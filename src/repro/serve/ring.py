"""Consistent routing of model keys onto serve replicas.

The front tier (:mod:`repro.serve.front`) shards hosted models across N
:class:`~repro.serve.server.EvalServer` replicas.  The sharding function
must satisfy two properties the spine-leaf topology literature takes for
granted and a naive ``hash(key) % N`` violates:

* **stability** — ejecting (or rejoining) one replica moves *only* the
  keys that were (or become) assigned to that replica; every other
  model keeps its replica, so its request journal, result memo, and score
  cache stay warm where its traffic already landed.
* **determinism** — two front processes configured with the same replica
  set route every key identically (no shared state, no coordination).

Both fall out of *rendezvous (highest-random-weight) hashing*: each
``(replica, key)`` pair gets a score from a keyed SHA-256, and a key is
served by the highest-scoring replica among the currently healthy set.
Removing a replica only re-homes the keys for which it was the maximum;
adding one back restores exactly its old assignments.  The full
descending-score order doubles as the **failover preference list**: when a
key's primary replica is saturated or dead, the next replica in its
preference order takes the spill, which is the same replica every time —
so even spilled traffic stays journal-warm somewhere deterministic.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Dict, Iterable, List, Tuple


class EmptyRingError(RuntimeError):
    """No replica is available to route to (all ejected or none configured)."""


def _score(replica: str, key: str) -> int:
    """The rendezvous weight of ``key`` on ``replica`` (keyed SHA-256)."""
    digest = hashlib.sha256(f"{replica}\x00{key}".encode("utf-8")).digest()
    return int.from_bytes(digest[:16], "big")


class ReplicaRing:
    """A rendezvous-hashing ring over named replicas.

    Replica names are opaque identifiers (the front tier uses
    ``"host:port"``).  The ring is safe to share between the front tier's
    HTTP threads and its health-poller thread: membership changes and
    reads are serialized by an internal lock, and every routing decision
    is computed against a consistent membership snapshot.
    """

    def __init__(self, replicas: Iterable[str] = ()) -> None:
        self._lock = threading.Lock()
        self._replicas: Dict[str, None] = {}  # guarded-by: _lock
        for replica in replicas:
            self._validate(replica)
            self._replicas[replica] = None

    @staticmethod
    def _validate(replica: str) -> None:
        if not isinstance(replica, str) or not replica:
            raise ValueError(
                f"replica name must be a non-empty string, got {replica!r}"
            )

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def add(self, replica: str) -> bool:
        """Join ``replica``; returns False when it was already present."""
        self._validate(replica)
        with self._lock:
            if replica in self._replicas:
                return False
            self._replicas[replica] = None
            return True

    def remove(self, replica: str) -> bool:
        """Eject ``replica``; returns False when it was not present."""
        with self._lock:
            if replica not in self._replicas:
                return False
            del self._replicas[replica]
            return True

    @property
    def replicas(self) -> Tuple[str, ...]:
        """The current membership, in insertion order."""
        with self._lock:
            return tuple(self._replicas)

    def __len__(self) -> int:
        with self._lock:
            return len(self._replicas)

    def __contains__(self, replica: str) -> bool:
        with self._lock:
            return replica in self._replicas

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def route(self, key: str) -> str:
        """The replica serving ``key``: the highest-scoring member.

        Raises:
            EmptyRingError: the ring has no members.
        """
        with self._lock:
            members = tuple(self._replicas)
        if not members:
            raise EmptyRingError(f"no replica available to route {key!r}")
        return max(members, key=lambda replica: _score(replica, key))

    def preference(self, key: str) -> List[str]:
        """Every member ordered by descending score for ``key``.

        ``preference(key)[0] == route(key)``; the tail is the failover
        order the front tier walks when the primary is saturated or dead.
        Ties (astronomically unlikely with 128-bit scores) break on the
        replica name so the order stays deterministic regardless.
        """
        with self._lock:
            members = tuple(self._replicas)
        return sorted(
            members, key=lambda replica: (_score(replica, key), replica), reverse=True
        )

    def assignments(self, keys: Iterable[str]) -> Dict[str, str]:
        """``{key: replica}`` for every key, against one membership snapshot."""
        with self._lock:
            members = tuple(self._replicas)
        if not members:
            return {}
        return {
            key: max(members, key=lambda replica: _score(replica, key))
            for key in keys
        }
