"""Stdlib HTTP client for the evaluation service.

:class:`ServeClient` speaks the wire protocol of :mod:`repro.serve.codec`
and hands back real :class:`~repro.api.protocol.EvalResult` objects, so
caller code is identical whether it scores through a local
:class:`~repro.api.Session` or over the network — including errors: an
``unsupported-request`` payload re-raises the same
:class:`~repro.api.protocol.UnsupportedRequestError` a local session would
have raised.

Typed failures:

* :class:`ServiceOverloadedError` — 429, carries ``retry_after`` seconds;
* :class:`RequestRejectedError` — 400/404 validation and lookup failures;
* :class:`ServiceUnavailableError` — 503 shutdown / connection refused;
* :class:`ServeError` — anything else (500, 504, malformed responses).
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.api import EvalResult, UnsupportedRequestError
from repro.serve.codec import CodecError, decode_result
from repro.utils.rng import RngLike, new_rng


class ServeError(RuntimeError):
    """A service call failed.

    Attributes:
        status: HTTP status code (0 when the connection itself failed).
        error_type: the payload's ``type`` discriminator.
    """

    def __init__(
        self, message: str, status: int = 0, error_type: str = "unknown"
    ) -> None:
        super().__init__(message)
        self.status = status
        self.error_type = error_type


class ServiceOverloadedError(ServeError):
    """429 — the admission queue shed this request; retry later."""

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message, status=429, error_type="overloaded")
        self.retry_after = retry_after


class RequestRejectedError(ServeError):
    """400/404 — the request itself is invalid or names unknown entities."""


class ServiceUnavailableError(ServeError):
    """The service is unreachable or shutting down."""


class ServeClient:
    """Minimal blocking client; one HTTP connection per call.

    Args:
        host / port: service address (the preferred target).
        timeout: socket timeout per call — must exceed the service's own
            ``request_timeout`` (default 300 s) or a slow evaluation reads
            as a dead socket right when the server is about to answer its
            typed 504; hence the 330 s default margin.
        fallbacks: additional ``(host, port)`` base URLs tried in order
            when the preferred target is unreachable (connection refused /
            reset / socket timeout — *not* HTTP-level failures, which are
            real answers).  A target that answers is promoted and stays
            preferred until it too fails, so a client pointed at a front
            router plus its replicas rides out a router restart without
            hammering dead sockets on every call.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8000,
        timeout: float = 330.0,
        fallbacks: Sequence[Tuple[str, int]] = (),
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._targets: List[Tuple[str, int]] = [(host, port)]  # guarded-by: _targets_lock
        for fallback_host, fallback_port in fallbacks:
            self._targets.append((str(fallback_host), int(fallback_port)))
        self._targets_lock = threading.Lock()

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def evaluate(
        self,
        model: str,
        dataset: str = "test",
        backend: Optional[str] = None,
        copy_levels: Sequence[int] = (1,),
        spf_levels: Sequence[int] = (1,),
        repeats: int = 1,
        seed: Optional[int] = 0,
        encoder: str = "stochastic",
        max_samples: Optional[int] = None,
        collect_spike_counters: bool = False,
        router_delay: Optional[int] = None,
        stochastic_synapses: bool = False,
        link_delay: Optional[int] = None,
    ) -> EvalResult:
        """``POST /v1/evaluate`` and decode the result tensor-exactly."""
        payload = {
            "model": model,
            "dataset": dataset,
            "backend": backend,
            "copy_levels": list(copy_levels),
            "spf_levels": list(spf_levels),
            "repeats": repeats,
            "seed": seed,
            "encoder": encoder,
            "max_samples": max_samples,
            "collect_spike_counters": collect_spike_counters,
            "router_delay": router_delay,
            "stochastic_synapses": stochastic_synapses,
            "link_delay": link_delay,
        }
        return self.evaluate_payload(payload)

    def evaluate_payload(self, payload: Dict[str, object]) -> EvalResult:
        """``POST /v1/evaluate`` with a raw wire payload."""
        body = self._call("POST", "/v1/evaluate", payload)
        if "result" not in body:
            raise ServeError("response is missing the 'result' field")
        try:
            return decode_result(body["result"])
        except CodecError as error:
            raise ServeError(f"undecodable result payload: {error}") from error

    def evaluate_with_retry(
        self,
        payload: Dict[str, object],
        retries: int = 5,
        max_backoff: float = 60.0,
        sleep: Callable[[float], None] = time.sleep,
        rng: RngLike = None,
    ) -> EvalResult:
        """``evaluate_payload`` with jittered 429 ``Retry-After`` back-off.

        A shed request naps at least the server's own drain estimate, then
        retries, up to ``retries`` retries; the final
        :class:`ServiceOverloadedError` propagates when the service stays
        saturated.  Other failures propagate immediately — only overload
        is retryable by construction.

        The nap is *decorrelated-jittered*, never the bare hint: a shed
        burst of clients all receive the same ``Retry-After`` estimate,
        and sleeping it exactly makes the whole herd retry in lockstep and
        re-saturate the queue it just drained.  Each nap is drawn
        uniformly from ``[hint, max(hint, 3 x previous nap)]`` (AWS-style
        decorrelated jitter) and clamped to ``max_backoff`` — so retries
        spread out in time while never arriving before the server said the
        backlog could drain.  ``sleep`` and ``rng`` are injectable so
        tests drive the back-off deterministically without real waiting.
        """
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        generator = new_rng(rng)
        attempt = 0
        previous: Optional[float] = None
        while True:
            try:
                return self.evaluate_payload(payload)
            except ServiceOverloadedError as error:
                attempt += 1
                if attempt > retries:
                    raise
                hint = min(max_backoff, max(0.0, error.retry_after))
                if previous is None:
                    previous = hint
                nap = min(
                    max_backoff,
                    float(generator.uniform(hint, max(hint, 3.0 * previous))),
                )
                previous = nap
                sleep(nap)

    def models(self) -> Dict[str, object]:
        """``GET /v1/models``."""
        return self._call("GET", "/v1/models")

    def fleet(self) -> Dict[str, object]:
        """``GET /v1/fleet`` — front routers only (replicas answer 404)."""
        return self._call("GET", "/v1/fleet")

    def health(self) -> Dict[str, object]:
        """``GET /healthz``."""
        return self._call("GET", "/healthz")

    def metrics(self) -> Dict[str, object]:
        """``GET /metrics``."""
        return self._call("GET", "/metrics")

    # ------------------------------------------------------------------
    def _call(
        self, method: str, path: str, payload: Optional[Dict[str, object]] = None
    ) -> Dict[str, object]:
        status, headers, body = self._http(method, path, payload)
        if status == 200:
            if not isinstance(body, dict):
                raise ServeError(f"non-object 200 response: {body!r}", status=200)
            return body
        raise self._error_for(status, headers, body)

    def _http(
        self, method: str, path: str, payload: Optional[Dict[str, object]]
    ) -> Tuple[int, Dict[str, str], object]:
        with self._targets_lock:
            targets = list(self._targets)
        last_error: Optional[BaseException] = None
        for index, (host, port) in enumerate(targets):
            try:
                result = self._http_once(host, port, method, path, payload)
            except ServiceUnavailableError as error:
                last_error = error
                continue
            if index > 0:
                # Promote the answering fallback: later calls should not
                # re-walk the dead prefix on every request.
                with self._targets_lock:
                    if (host, port) in self._targets:
                        self._targets.remove((host, port))
                        self._targets.insert(0, (host, port))
            return result
        assert last_error is not None
        raise last_error

    def _http_once(
        self,
        host: str,
        port: int,
        method: str,
        path: str,
        payload: Optional[Dict[str, object]],
    ) -> Tuple[int, Dict[str, str], object]:
        connection = http.client.HTTPConnection(host, port, timeout=self.timeout)
        try:
            request_body = None
            request_headers = {}
            if payload is not None:
                request_body = json.dumps(payload).encode("utf-8")
                request_headers["Content-Type"] = "application/json"
            connection.request(method, path, body=request_body, headers=request_headers)
            response = connection.getresponse()
            raw = response.read()
            headers = {name.lower(): value for name, value in response.getheaders()}
            try:
                body = json.loads(raw.decode("utf-8")) if raw else {}
            except (UnicodeDecodeError, json.JSONDecodeError):
                body = {"raw": raw.decode("utf-8", errors="replace")}
            return response.status, headers, body
        except (ConnectionError, socket.timeout, OSError) as error:
            raise ServiceUnavailableError(
                f"cannot reach {host}:{port}: {error}",
                error_type="unreachable",
            ) from error
        finally:
            connection.close()

    @staticmethod
    def _error_for(
        status: int, headers: Dict[str, str], body: object
    ) -> Exception:
        detail = body.get("error", {}) if isinstance(body, dict) else {}
        error_type = detail.get("type", "unknown")
        message = detail.get("message", f"HTTP {status}")
        if status == 429:
            retry_after = detail.get("retry_after", headers.get("retry-after", 1))
            return ServiceOverloadedError(message, retry_after=float(retry_after))
        if error_type == "unsupported-request":
            # Parity with the in-process Session: same exception type.
            return UnsupportedRequestError(message)
        if status in (400, 404):
            return RequestRejectedError(message, status=status, error_type=error_type)
        if status == 503:
            return ServiceUnavailableError(
                message, status=status, error_type=error_type
            )
        return ServeError(message, status=status, error_type=error_type)
