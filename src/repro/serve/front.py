"""The front tier: one router process sharding models across replicas.

:class:`FrontServer` fronts N :class:`~repro.serve.server.EvalServer`
replicas the way a spine fronts its leaves (the spine-leaf DCN surveys in
PAPERS.md are the topology playbook): clients talk to one address, and the
router owns placement, failover, and the fleet-wide overload decision.

**Consistent routing.**  Every request is routed by its *model
fingerprint* (a content hash of the hosted model's ``/v1/models`` entry,
discovered by polling the replicas; the bare model name is the routing key
until discovery) through a rendezvous ring
(:class:`~repro.serve.ring.ReplicaRing`), so one replica is the stable
home of each model's traffic.  That stability is what makes the routing
*journal-aware*: the replica that admits a request journals it, so pinning
a model's requests to one home concentrates exactly that model's history
in that replica's journal — after a kill-and-restart, the boot-time warm
replay rebuilds the takeover replica's memo from its own journal and
repeated requests cost zero fresh engine passes.  The ring's descending
preference order doubles as the failover path, so even spilled traffic
lands deterministically (and therefore journals deterministically).

**Fleet admission.**  The front owns its *own* shed decision, computed
from the replicas' exported drain snapshots (polled ``/metrics``
``"drain"`` blocks): queue depths and controller effective depths sum
across healthy replicas, and when the fleet backlog reaches the fleet
bound the front answers ``429 Retry-After`` — with the hint derived from
the *aggregated* measured drain rate — **before a backend socket is even
picked**.  This is the call-admission-control shape (Babu et al. in
PAPERS.md) lifted one tier up: per-replica 429s protect one queue;
the front-tier decision protects the fleet without burning a connection
per shed request.

**Health and ejection.**  A poller thread probes every replica's
``/healthz`` each ``poll_interval``; ``eject_after`` consecutive failures
eject it from the ring (its models re-home deterministically onto the
survivors), and a recovering replica rejoins with its old assignments
restored — rendezvous hashing moves only the ejected replica's keys in
both directions.  A proxy attempt that hits a dead socket (or a replica
answering 503 mid-shutdown) fails over to the next replica in the key's
preference order within the same request, so a mid-burst replica kill is
absorbed without a client-visible 5xx.

**Aggregated introspection.**  ``GET /metrics`` refreshes and merges the
fleet: conservation counters summed (each replica snapshot is internally
consistent, so the summed invariants hold fleet-wide), the fleet p95
computed over the *union* of the per-replica latency windows (averaging
per-replica p95s is statistically unsound), controller state per replica.
``GET /v1/fleet`` exposes the sharding itself: ring membership, model
assignments, per-replica health and ejection counters.
"""

from __future__ import annotations

import hashlib
import http.client
import json
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from http.server import ThreadingHTTPServer

from repro.serve.admission import (
    LatencyWindow,
    QueueFullError,
    ServiceClosedError,
)
from repro.serve.codec import decode_request
from repro.serve.handlers import FrontHandler
from repro.serve.ring import ReplicaRing


class FleetUnavailableError(RuntimeError):
    """No healthy replica can serve this request (HTTP 503 at the front)."""


def _as_int(value: object, default: int = 0) -> int:
    if isinstance(value, bool):
        return default
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        return int(value)
    return default


def _as_float(value: object) -> Optional[float]:
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return float(value)
    return None


def model_fingerprint(entry: Dict[str, object]) -> str:
    """Content hash of one ``/v1/models`` model entry (the routing key).

    Hashing the whole entry (name plus training metadata) rather than the
    bare name means two fleets hosting *different* models under one name
    still route deterministically within themselves, and a retrained
    model re-homes explicitly instead of silently inheriting a stale
    assignment.
    """
    canonical = json.dumps(entry, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class DrainView:
    """One replica's parsed drain snapshot (see ``AdmissionController``)."""

    queue_depth: int = 0
    in_flight: int = 0
    effective_depth: int = 0
    drain_rate_per_second: Optional[float] = None
    latency_window_seconds: Tuple[float, ...] = ()

    @classmethod
    def from_payload(cls, payload: object) -> "DrainView":
        if not isinstance(payload, dict):
            return cls()
        window_raw = payload.get("latency_window_seconds")
        window: Tuple[float, ...] = ()
        if isinstance(window_raw, list):
            window = tuple(
                sample
                for sample in (_as_float(item) for item in window_raw)
                if sample is not None
            )
        return cls(
            queue_depth=_as_int(payload.get("queue_depth")),
            in_flight=_as_int(payload.get("in_flight")),
            effective_depth=_as_int(payload.get("effective_depth")),
            drain_rate_per_second=_as_float(payload.get("drain_rate_per_second")),
            latency_window_seconds=window,
        )


@dataclass
class ReplicaState:
    """The front tier's view of one replica (mutable, lock-guarded)."""

    name: str
    host: str
    port: int
    healthy: bool = True
    consecutive_failures: int = 0
    ejections: int = 0
    rejoins: int = 0
    drain: Optional[DrainView] = None
    requests: Optional[Dict[str, object]] = None
    controller: Optional[Dict[str, object]] = None
    models_payload: Optional[Dict[str, object]] = None
    model_keys: Dict[str, str] = field(default_factory=dict)
    proxied: int = 0
    proxy_failures: int = 0


def parse_replica(spec: str) -> Tuple[str, int]:
    """``"host:port"`` → ``(host, port)``; raises ``ValueError`` when malformed."""
    host, _, port_text = spec.rpartition(":")
    if not host or not port_text.isdigit():
        raise ValueError(
            f"replica spec must look like 'host:port', got {spec!r}"
        )
    return host, int(port_text)


@dataclass
class FrontConfig:
    """Tunables of one front router instance.

    Attributes:
        host / port: bind address; ``port=0`` asks the OS for a port.
        replicas: the fleet, as ``"host:port"`` specs.
        poll_interval: seconds between health/drain polls of each replica.
        eject_after: consecutive failed ``/healthz`` probes before a
            replica is ejected from the ring.
        request_timeout: socket timeout for one proxied ``/v1/evaluate``
            call (must exceed the replicas' own request timeout).
        probe_timeout: socket timeout for health/metrics polls — short,
            so one dead replica cannot stall the poll loop.
    """

    host: str = "127.0.0.1"
    port: int = 8000
    replicas: Tuple[str, ...] = ()
    poll_interval: float = 0.25
    eject_after: int = 2
    request_timeout: float = 330.0
    probe_timeout: float = 5.0

    def __post_init__(self) -> None:
        if not self.replicas:
            raise ValueError("a front router needs at least one replica")
        if len(set(self.replicas)) != len(self.replicas):
            raise ValueError(f"duplicate replica specs in {self.replicas}")
        for spec in self.replicas:
            parse_replica(spec)
        if self.poll_interval <= 0:
            raise ValueError(
                f"poll_interval must be positive, got {self.poll_interval}"
            )
        if self.eject_after <= 0:
            raise ValueError(
                f"eject_after must be positive, got {self.eject_after}"
            )
        if self.request_timeout <= 0:
            raise ValueError(
                f"request_timeout must be positive, got {self.request_timeout}"
            )
        if self.probe_timeout <= 0:
            raise ValueError(
                f"probe_timeout must be positive, got {self.probe_timeout}"
            )


class FrontService:
    """Transport-free router core: ring + fleet admission + proxying."""

    def __init__(self, config: FrontConfig) -> None:
        self.config = config
        self.ring = ReplicaRing(config.replicas)
        self._replicas: Dict[str, ReplicaState] = {}  # guarded-by: _lock
        for spec in config.replicas:
            host, port = parse_replica(spec)
            self._replicas[spec] = ReplicaState(name=spec, host=host, port=port)
        self._lock = threading.Lock()
        self.received = 0  # guarded-by: _lock
        self.routed = 0  # guarded-by: _lock
        self.shed = 0  # guarded-by: _lock
        self.unavailable = 0  # guarded-by: _lock
        self.failovers = 0  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock
        self._http_counts: Dict[str, int] = {}  # guarded-by: _http_lock
        self._http_lock = threading.Lock()
        #: front-observed end-to-end proxy latencies (admission to answer).
        self.latencies = LatencyWindow()
        self._stop = threading.Event()
        self._poller: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "FrontService":
        """Poll the fleet once synchronously, then start the poller."""
        if self._poller is not None:
            return self
        self.refresh()
        self._poller = threading.Thread(
            target=self._poll_loop, name="repro-serve-front-poll", daemon=True
        )
        self._poller.start()
        return self

    def close(self) -> None:
        with self._lock:
            self._closed = True
        self._stop.set()
        if self._poller is not None:
            self._poller.join(timeout=10.0)
            self._poller = None

    def _poll_loop(self) -> None:
        while not self._stop.wait(self.config.poll_interval):
            self.refresh()

    # ------------------------------------------------------------------
    # replica probing
    # ------------------------------------------------------------------
    def _get_json(
        self, state: ReplicaState, path: str, timeout: float
    ) -> Optional[Dict[str, object]]:
        """GET ``path`` from one replica; ``None`` on any failure."""
        connection = http.client.HTTPConnection(
            state.host, state.port, timeout=timeout
        )
        try:
            connection.request("GET", path)
            response = connection.getresponse()
            raw = response.read()
            if response.status != 200:
                return None
            body = json.loads(raw.decode("utf-8"))
            return body if isinstance(body, dict) else None
        except (ConnectionError, socket.timeout, OSError, ValueError):
            return None
        finally:
            connection.close()

    def refresh(self) -> None:
        """Probe every replica once: health, drain state, hosted models."""
        with self._lock:
            names = list(self._replicas)
        for name in names:
            with self._lock:
                state = self._replicas[name]
            alive = self._get_json(state, "/healthz", self.config.probe_timeout)
            if alive is None:
                self._mark_failure(name, during="poll")
                continue
            metrics = self._get_json(state, "/metrics", self.config.probe_timeout)
            models: Optional[Dict[str, object]] = None
            with self._lock:
                discovered = state.models_payload is not None
                healthy = state.healthy
            if not discovered or not healthy:
                models = self._get_json(
                    state, "/v1/models", self.config.probe_timeout
                )
            self._mark_alive(name, metrics=metrics, models=models)

    def _mark_failure(self, name: str, during: str) -> None:
        with self._lock:
            state = self._replicas[name]
            state.consecutive_failures += 1
            if during == "proxy":
                state.proxy_failures += 1
            eject = (
                state.healthy
                and state.consecutive_failures >= self.config.eject_after
            )
            if during == "proxy" and state.healthy:
                # A dead socket on the request path is definitive — eject
                # immediately rather than waiting out the poll cadence.
                eject = True
            if eject:
                state.healthy = False
                state.ejections += 1
                state.drain = None
        if eject:
            self.ring.remove(name)

    def _mark_alive(
        self,
        name: str,
        metrics: Optional[Dict[str, object]],
        models: Optional[Dict[str, object]],
    ) -> None:
        with self._lock:
            state = self._replicas[name]
            state.consecutive_failures = 0
            rejoined = not state.healthy
            if rejoined:
                state.healthy = True
                state.rejoins += 1
            if metrics is not None:
                state.drain = DrainView.from_payload(metrics.get("drain"))
                requests = metrics.get("requests")
                state.requests = (
                    dict(requests) if isinstance(requests, dict) else None
                )
                controller = metrics.get("controller")
                state.controller = (
                    dict(controller) if isinstance(controller, dict) else None
                )
            if models is not None:
                state.models_payload = models
                state.model_keys = _model_keys(models)
        if rejoined:
            self.ring.add(name)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def model_key(self, model: str) -> str:
        """The consistent-routing key of ``model``.

        The model fingerprint once any replica has advertised the model;
        the bare name before discovery (both are stable, so a key change
        only happens when the hosted model itself changes).
        """
        with self._lock:
            for state in self._replicas.values():
                key = state.model_keys.get(model)
                if key is not None:
                    return key
        return model

    def _healthy_preference(self, key: str) -> List[ReplicaState]:
        order = self.ring.preference(key)
        with self._lock:
            return [
                self._replicas[name]
                for name in order
                if self._replicas[name].healthy
            ]

    def _check_fleet_admission(self) -> None:
        """Shed at the front when the aggregated fleet backlog is full.

        Computed entirely from the polled drain snapshots — no backend
        socket is opened for a request the fleet cannot absorb.
        """
        with self._lock:
            drains = [
                state.drain
                for state in self._replicas.values()
                if state.healthy and state.drain is not None
            ]
        if not drains:
            return  # no drain data yet: admit, the replicas decide
        fleet_depth = sum(view.queue_depth for view in drains)
        fleet_bound = sum(view.effective_depth for view in drains)
        if fleet_depth < fleet_bound:
            return
        fleet_drain = sum(
            view.drain_rate_per_second
            for view in drains
            if view.drain_rate_per_second is not None
        )
        if fleet_drain > 0:
            hint = fleet_depth / fleet_drain
        else:
            merged = [
                sample
                for view in drains
                for sample in view.latency_window_seconds
            ]
            mean = sum(merged) / len(merged) if merged else 1.0
            hint = fleet_depth * mean / max(1, len(drains))
        with self._lock:
            self.shed += 1
        raise QueueFullError(
            f"fleet saturated ({fleet_depth} queued across "
            f"{len(drains)} replicas, fleet bound {fleet_bound}); retry later",
            retry_after=float(min(60.0, max(1.0, hint))),
        )

    def evaluate(
        self, payload: object
    ) -> Tuple[int, Dict[str, str], Dict[str, object]]:
        """Route one wire payload; returns ``(status, headers, body)``.

        The replica's JSON answer passes through verbatim (the router adds
        routing, never arithmetic — bit-identity is the replica's), with
        deterministic failover along the model's preference order:

        * dead socket or 503 (mid-shutdown) → next replica, and the dead
          one is ejected on the spot;
        * 429 (that one replica is saturated) → spill to the next replica
          in preference order; if every healthy replica sheds, the last
          429 passes through (its ``Retry-After`` still carries a
          measured drain hint).

        Raises the typed admission errors for the transport:
        :class:`~repro.serve.codec.CodecError` (400, validated here so a
        malformed request never costs a backend connection),
        :class:`~repro.serve.admission.QueueFullError` (fleet-level 429),
        :class:`~repro.serve.admission.ServiceClosedError` (503) and
        :class:`FleetUnavailableError` (503, no healthy replica).
        """
        wire = decode_request(payload)
        with self._lock:
            if self._closed:
                raise ServiceClosedError("front router is shutting down")
            self.received += 1
        self._check_fleet_admission()
        key = self.model_key(wire.model)
        candidates = self._healthy_preference(key)
        if not candidates:
            with self._lock:
                self.unavailable += 1
            raise FleetUnavailableError(
                f"no healthy replica to route model {wire.model!r} "
                f"(fleet: {self.ring.replicas or 'empty'})"
            )
        started = time.monotonic()
        overloaded: Optional[Tuple[int, Dict[str, str], Dict[str, object]]] = None
        for index, state in enumerate(candidates):
            answer = self._proxy_evaluate(state, payload)
            if answer is None or answer[0] == 503:
                # Dead socket / shutting-down replica: eject and fail over.
                self._mark_failure(state.name, during="proxy")
                if index + 1 < len(candidates):
                    with self._lock:
                        self.failovers += 1
                continue
            if answer[0] == 429:
                overloaded = answer
                continue
            with self._lock:
                self.routed += 1
                state.proxied += 1
            self.latencies.record(time.monotonic() - started)
            return answer
        if overloaded is not None:
            with self._lock:
                self.shed += 1
            return overloaded
        with self._lock:
            self.unavailable += 1
        raise FleetUnavailableError(
            f"every replica in {wire.model!r}'s preference order is "
            "unreachable"
        )

    def _proxy_evaluate(
        self, state: ReplicaState, payload: object
    ) -> Optional[Tuple[int, Dict[str, str], Dict[str, object]]]:
        """POST one payload to one replica; ``None`` on transport failure."""
        connection = http.client.HTTPConnection(
            state.host, state.port, timeout=self.config.request_timeout
        )
        try:
            body = json.dumps(payload).encode("utf-8")
            connection.request(
                "POST",
                "/v1/evaluate",
                body=body,
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            raw = response.read()
            parsed = json.loads(raw.decode("utf-8")) if raw else {}
            if not isinstance(parsed, dict):
                return None
            headers: Dict[str, str] = {}
            retry_after = response.getheader("Retry-After")
            if retry_after is not None:
                headers["Retry-After"] = retry_after
            return response.status, headers, parsed
        except (ConnectionError, socket.timeout, OSError, ValueError):
            return None
        finally:
            connection.close()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def record_http(self, route: str, status: int) -> None:
        """Count one HTTP response for the front /metrics request table."""
        key = f"{route} {status}"
        with self._http_lock:
            self._http_counts[key] = self._http_counts.get(key, 0) + 1

    def health(self) -> Dict[str, object]:
        with self._lock:
            total = len(self._replicas)
            healthy = sum(1 for state in self._replicas.values() if state.healthy)
            closed = self._closed
        status = "ok" if healthy and not closed else (
            "shutting-down" if closed else "no-healthy-replica"
        )
        return {
            "status": status,
            "replicas": total,
            "healthy": healthy,
        }

    def models(self) -> Dict[str, object]:
        """The fleet-wide ``/v1/models`` union (names deduplicated)."""
        models: Dict[str, Dict[str, object]] = {}
        datasets: Dict[str, Dict[str, object]] = {}
        backends: List[str] = []
        with self._lock:
            payloads = [
                state.models_payload
                for state in self._replicas.values()
                if state.healthy and state.models_payload is not None
            ]
        for payload in payloads:
            for entry in _entry_list(payload.get("models")):
                name = entry.get("name")
                if isinstance(name, str):
                    models.setdefault(name, entry)
            for entry in _entry_list(payload.get("datasets")):
                name = entry.get("name")
                if isinstance(name, str):
                    datasets.setdefault(name, entry)
            names = payload.get("backends")
            if isinstance(names, list):
                for backend in names:
                    if isinstance(backend, str) and backend not in backends:
                        backends.append(backend)
        return {
            "models": [models[name] for name in sorted(models)],
            "datasets": [datasets[name] for name in sorted(datasets)],
            "backends": backends,
        }

    def fleet(self) -> Dict[str, object]:
        """``GET /v1/fleet``: the sharding introspection surface."""
        with self._lock:
            replicas = [
                {
                    "name": state.name,
                    "healthy": state.healthy,
                    "consecutive_failures": state.consecutive_failures,
                    "ejections": state.ejections,
                    "rejoins": state.rejoins,
                    "proxied": state.proxied,
                    "proxy_failures": state.proxy_failures,
                    "models": sorted(state.model_keys),
                }
                for state in self._replicas.values()
            ]
            model_keys: Dict[str, str] = {}
            for state in self._replicas.values():
                for model, key in state.model_keys.items():
                    model_keys.setdefault(model, key)
        assignments = {
            model: self.ring.route(key) for model, key in sorted(model_keys.items())
        } if len(self.ring) else {}
        return {
            "ring": list(self.ring.replicas),
            "replicas": replicas,
            "model_fingerprints": dict(sorted(model_keys.items())),
            "assignments": assignments,
        }

    def metrics(self) -> Dict[str, object]:
        """The aggregated fleet view (fresh: refreshes the fleet first).

        ``fleet.requests`` sums each replica's conservation counters, so
        the fleet-wide invariants (``received == admitted + rejected``,
        ``admitted == completed + failed + in_flight``) hold exactly —
        each per-replica snapshot is internally consistent and sums
        preserve both equalities.  The fleet p50/p95 are computed over the
        union of the per-replica latency windows.
        """
        self.refresh()
        counter_keys = (
            "received",
            "admitted",
            "rejected",
            "completed",
            "failed",
            "in_flight",
            "queue_depth",
        )
        fleet_requests = {key: 0 for key in counter_keys}
        merged_window: List[float] = []
        fleet_drain = 0.0
        drain_measured = False
        fleet_effective = 0
        controllers: Dict[str, object] = {}
        replica_views: Dict[str, object] = {}
        with self._lock:
            states = list(self._replicas.values())
            for state in states:
                if state.requests is not None:
                    for count_key in counter_keys:
                        fleet_requests[count_key] += _as_int(
                            state.requests.get(count_key)
                        )
                if state.drain is not None:
                    merged_window.extend(state.drain.latency_window_seconds)
                    fleet_effective += state.drain.effective_depth
                    if state.drain.drain_rate_per_second is not None:
                        fleet_drain += state.drain.drain_rate_per_second
                        drain_measured = True
                if state.controller is not None:
                    controllers[state.name] = dict(state.controller)
                replica_views[state.name] = {
                    "healthy": state.healthy,
                    "proxied": state.proxied,
                    "proxy_failures": state.proxy_failures,
                    "ejections": state.ejections,
                    "rejoins": state.rejoins,
                    "requests": state.requests,
                }
            healthy = sum(1 for state in states if state.healthy)
            front_counters = {
                "received": self.received,
                "routed": self.routed,
                "shed": self.shed,
                "unavailable": self.unavailable,
                "failovers": self.failovers,
            }
        with self._http_lock:
            http_counts = dict(sorted(self._http_counts.items()))
        merged_window.sort()
        return {
            "fleet": {
                "replicas": len(states),
                "healthy": healthy,
                "requests": fleet_requests,
                "effective_depth": fleet_effective,
                "drain_rate_per_second": (
                    fleet_drain if drain_measured else None
                ),
                "latency_p50_seconds": _percentile(merged_window, 0.50),
                "latency_p95_seconds": _percentile(merged_window, 0.95),
            },
            "front": {
                **front_counters,
                "latency_p50_seconds": self.latencies.percentile(0.50),
                "latency_p95_seconds": self.latencies.percentile(0.95),
            },
            "controllers": controllers,
            "replicas": replica_views,
            "http": http_counts,
        }


def _percentile(sorted_samples: Sequence[float], fraction: float) -> Optional[float]:
    """The same quantile read ``LatencyWindow.percentile`` uses, merged."""
    if not sorted_samples:
        return None
    index = min(len(sorted_samples) - 1, int(fraction * len(sorted_samples)))
    return sorted_samples[index]


def _entry_list(value: object) -> List[Dict[str, object]]:
    if not isinstance(value, list):
        return []
    return [entry for entry in value if isinstance(entry, dict)]


def _model_keys(models_payload: Dict[str, object]) -> Dict[str, str]:
    """``{model name: fingerprint}`` from one ``/v1/models`` payload."""
    keys: Dict[str, str] = {}
    for entry in _entry_list(models_payload.get("models")):
        name = entry.get("name")
        if isinstance(name, str):
            keys[name] = model_fingerprint(entry)
    return keys


class _FrontHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that carries the front service for its handlers."""

    daemon_threads = True
    allow_reuse_address = True
    request_queue_size = 128

    def __init__(self, address: Tuple[str, int], front: FrontService) -> None:
        super().__init__(address, FrontHandler)
        self.front = front


class FrontServer:
    """HTTP front end over one :class:`FrontService`.

    Usable as a context manager, exactly like
    :class:`~repro.serve.server.EvalServer`::

        config = FrontConfig(port=0, replicas=("127.0.0.1:8101",
                                               "127.0.0.1:8102"))
        with FrontServer(config) as front:
            client = ServeClient(port=front.port)
            result = client.evaluate(model="tea", copy_levels=[1, 2])
    """

    def __init__(self, config: FrontConfig) -> None:
        self.config = config
        self.service = FrontService(config)
        self._httpd: Optional[_FrontHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (the OS choice when configured with ``port=0``)."""
        if self._httpd is None:
            raise RuntimeError("front server is not started")
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    def start(self) -> "FrontServer":
        """Warm the fleet view, bind the socket, start the acceptor."""
        if self._httpd is not None:
            return self
        self.service.start()
        self._httpd = _FrontHTTPServer(
            (self.config.host, self.config.port), self.service
        )
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-serve-front-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        self.service.close()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def __enter__(self) -> "FrontServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()
