"""Append-only on-disk journal of admitted request fingerprints.

The serve tier's durability spine: every *admitted* wire request whose
seed is an integer (i.e. every request that is deterministic and therefore
cache-servable) is appended to a journal file as one JSON line::

    {"fingerprint": "<sha256 of the canonical wire payload>",
     "recorded_at": <wall-clock seconds>,
     "request": {<normalized wire payload>}}

A restarted server replays the journal at boot: each unique fingerprint is
re-evaluated through a warming session, which loads persisted score-cache
entries into memory and recomputes anything the killed server admitted but
never finished — so a repeated burst after the restart is answered from
cache instead of recomputed (the kill-and-restart soak asserts it).

Crash consistency is line-granular: every record is written and flushed as
one line, so the journal a killed process leaves behind is readable up to
(at worst) one torn final line, which :meth:`RequestJournal.replay`
silently skips — a torn record means the request was mid-admission, and
re-serving it after restart is exactly a fresh request.

Clock discipline: ``recorded_at`` is **wall-clock** (``time.time``) —
journal records are externally meaningful and must survive process
restarts, which monotonic readings do not.  It is never differenced
against any monotonic timestamp (see :mod:`repro.serve.admission`).
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from typing import Callable, Dict, List, Optional


def request_fingerprint(payload: Dict[str, object]) -> str:
    """SHA-256 of the canonical (sorted-key) JSON form of a wire payload.

    Two payloads that normalize to the same wire request — regardless of
    key order or which defaulted fields were spelled out by the client —
    produce the same fingerprint, so journal replay deduplicates repeated
    bursts down to unique evaluations.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class RequestJournal:
    """One append-only journal file of admitted request fingerprints.

    Safe to share across the HTTP threads of one service instance (appends
    are serialized by a lock and flushed per record); *not* meant to be
    shared by several live server processes — each serves its own journal,
    as each owns its admission queue.
    """

    def __init__(
        self, path: str, wall_clock: Callable[[], float] = time.time
    ) -> None:
        self.path = str(path)
        self._wall_clock = wall_clock
        self._lock = threading.Lock()
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self.recorded = 0  # guarded-by: _lock

    # ------------------------------------------------------------------
    # producer side (the admission path)
    # ------------------------------------------------------------------
    def record(self, payload: Dict[str, object]) -> str:
        """Append one admitted wire payload; returns its fingerprint.

        The record is flushed to the OS before returning, so a server
        killed right after admitting a request still leaves its
        fingerprint behind for the restart to warm from.
        """
        fingerprint = request_fingerprint(payload)
        line = json.dumps(
            {
                "fingerprint": fingerprint,
                "recorded_at": self._wall_clock(),
                "request": payload,
            },
            sort_keys=True,
        )
        with self._lock:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
                handle.flush()
            self.recorded += 1
        return fingerprint

    # ------------------------------------------------------------------
    # consumer side (boot-time replay)
    # ------------------------------------------------------------------
    def replay(self) -> List[Dict[str, object]]:
        """Unique journaled wire payloads, oldest first.

        Deduplicates by fingerprint (a repeated burst journals many lines
        but warms one evaluation) and skips unreadable lines — at worst
        the torn final line of a killed writer, but any corrupt record
        degrades to "not warmed", never to a boot failure.
        """
        entries: Dict[str, Dict[str, object]] = {}
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        continue
                    if not isinstance(record, dict):
                        continue
                    fingerprint = record.get("fingerprint")
                    request = record.get("request")
                    if not isinstance(fingerprint, str) or not isinstance(
                        request, dict
                    ):
                        continue
                    entries.setdefault(fingerprint, request)
        except FileNotFoundError:
            return []
        return list(entries.values())

    def __len__(self) -> int:
        """Number of unique fingerprints currently replayable."""
        return len(self.replay())

    def snapshot(self) -> Dict[str, object]:
        """The ``/metrics`` view of this journal."""
        with self._lock:
            recorded = self.recorded
        try:
            size_bytes: Optional[int] = os.stat(self.path).st_size
        except OSError:
            size_bytes = None
        return {
            "path": self.path,
            "recorded": recorded,
            "size_bytes": size_bytes,
        }
