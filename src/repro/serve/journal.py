"""Append-only on-disk journal of admitted request fingerprints.

The serve tier's durability spine: every *admitted* wire request whose
seed is an integer (i.e. every request that is deterministic and therefore
cache-servable) is appended to a journal file as one JSON line::

    {"fingerprint": "<sha256 of the canonical wire payload>",
     "recorded_at": <wall-clock seconds>,
     "request": {<normalized wire payload>}}

A restarted server replays the journal at boot: each unique fingerprint is
re-evaluated through a warming session, which loads persisted score-cache
entries into memory and recomputes anything the killed server admitted but
never finished — so a repeated burst after the restart is answered from
cache instead of recomputed (the kill-and-restart soak asserts it).

Crash consistency is line-granular: every record is written and flushed as
one line, so the journal a killed process leaves behind is readable up to
(at worst) one torn final line, which :meth:`RequestJournal.replay`
silently skips — a torn record means the request was mid-admission, and
re-serving it after restart is exactly a fresh request.

Integrity is *recomputed*, never trusted: a journal line's stored
``fingerprint`` is only honoured when it equals
``request_fingerprint(request)`` recomputed from the line's own payload.
A corrupted-but-parseable line (bit rot, a partial overwrite that still
decodes, an edited file) would otherwise poison the replay dedup map — or
warm the wrong cache entry under a valid fingerprint — so mismatches are
skipped exactly like torn lines.

Growth is bounded by boot-time compaction: a repeated burst appends one
line per admission, so a long-lived journal is dominated by duplicate
fingerprints.  :meth:`RequestJournal.compact` (the server runs it after
the boot-time warm replay) rewrites the file down to its oldest record per
unique fingerprint via an atomic rename, so the file size tracks the
number of *distinct* requests, not total traffic.  At runtime the journal
holds one persistent append handle (opening the file per record was a
measurable syscall tax under bursts) and an in-memory fingerprint index,
so ``len(journal)`` never re-reads the file.

Clock discipline: ``recorded_at`` is **wall-clock** (``time.time``) —
journal records are externally meaningful and must survive process
restarts, which monotonic readings do not.  It is never differenced
against any monotonic timestamp (see :mod:`repro.serve.admission`).
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from typing import Callable, Dict, List, Optional, Set, TextIO, Tuple


def request_fingerprint(payload: Dict[str, object]) -> str:
    """SHA-256 of the canonical (sorted-key) JSON form of a wire payload.

    Two payloads that normalize to the same wire request — regardless of
    key order or which defaulted fields were spelled out by the client —
    produce the same fingerprint, so journal replay deduplicates repeated
    bursts down to unique evaluations.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class RequestJournal:
    """One append-only journal file of admitted request fingerprints.

    Safe to share across the HTTP threads of one service instance (appends
    are serialized by a lock and flushed per record); *not* meant to be
    shared by several live server processes — each serves its own journal,
    as each owns its admission queue.
    """

    def __init__(
        self, path: str, wall_clock: Callable[[], float] = time.time
    ) -> None:
        self.path = str(path)
        self._wall_clock = wall_clock
        self._lock = threading.Lock()
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self.recorded = 0  # guarded-by: _lock
        self._handle: Optional[TextIO] = None  # guarded-by: _lock
        #: unique fingerprints on disk; None until first read (lazy).
        self._index: Optional[Set[str]] = None  # guarded-by: _lock

    # ------------------------------------------------------------------
    # producer side (the admission path)
    # ------------------------------------------------------------------
    def record(self, payload: Dict[str, object]) -> str:
        """Append one admitted wire payload; returns its fingerprint.

        The record is flushed to the OS before returning, so a server
        killed right after admitting a request still leaves its
        fingerprint behind for the restart to warm from.  The append goes
        through one persistent handle held for the journal's lifetime —
        reopening the file per record cost a path lookup and an open/close
        syscall pair on every admission.
        """
        fingerprint = request_fingerprint(payload)
        line = json.dumps(
            {
                "fingerprint": fingerprint,
                "recorded_at": self._wall_clock(),
                "request": payload,
            },
            sort_keys=True,
        )
        with self._lock:
            if self._handle is None:
                self._handle = open(self.path, "a", encoding="utf-8")
            self._handle.write(line + "\n")
            self._handle.flush()
            self.recorded += 1
            if self._index is not None:
                self._index.add(fingerprint)
        return fingerprint

    def close(self) -> None:
        """Release the persistent append handle (records stay readable).

        Idempotent; a journal abandoned without ``close()`` loses nothing
        — every record was flushed when written — this only returns the
        file descriptor eagerly instead of waiting for GC.
        """
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    # ------------------------------------------------------------------
    # consumer side (boot-time replay)
    # ------------------------------------------------------------------
    def _scan(self) -> Tuple[Dict[str, Dict[str, object]], int]:
        """``(oldest validated record per fingerprint, total lines read)``.

        A record only counts when it parses, has the right shape, *and*
        its stored fingerprint equals one recomputed from its ``request``
        payload — stored fingerprints are never trusted (see the module
        docstring).  Anything else is skipped, never fatal.
        """
        records: Dict[str, Dict[str, object]] = {}
        lines = 0
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                for line in handle:
                    lines += 1
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        continue
                    if not isinstance(record, dict):
                        continue
                    fingerprint = record.get("fingerprint")
                    request = record.get("request")
                    if not isinstance(fingerprint, str) or not isinstance(
                        request, dict
                    ):
                        continue
                    if request_fingerprint(request) != fingerprint:
                        continue
                    records.setdefault(fingerprint, record)
        except FileNotFoundError:
            return {}, 0
        return records, lines

    def replay(self) -> List[Dict[str, object]]:
        """Unique journaled wire payloads, oldest first.

        Deduplicates by fingerprint (a repeated burst journals many lines
        but warms one evaluation) and skips unreadable or
        fingerprint-mismatched lines — at worst the torn final line of a
        killed writer, but any corrupt record degrades to "not warmed",
        never to a boot failure or a poisoned dedup entry.
        """
        records, _ = self._scan()
        with self._lock:
            self._index = set(records)
        payloads: List[Dict[str, object]] = []
        for record in records.values():
            request = record["request"]
            assert isinstance(request, dict)
            payloads.append(request)
        return payloads

    def compact(self) -> int:
        """Rewrite the file down to its oldest record per fingerprint.

        Returns the number of duplicate/corrupt lines dropped.  The
        rewrite is atomic (temp file + ``os.replace``), so a crash during
        compaction leaves either the old journal or the compacted one,
        never a torn hybrid.  The server runs this at boot right after
        the warm replay — the one moment the whole file was just read
        anyway and no appender is active yet.
        """
        with self._lock:
            records, lines = self._scan()
            if not lines:
                return 0
            dropped = lines - len(records)
            if dropped <= 0:
                self._index = set(records)
                return 0
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            tmp_path = f"{self.path}.compact.{os.getpid()}"
            with open(tmp_path, "w", encoding="utf-8") as handle:
                for record in records.values():
                    handle.write(json.dumps(record, sort_keys=True) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, self.path)
            self._index = set(records)
            return dropped

    def __len__(self) -> int:
        """Number of unique fingerprints currently replayable.

        Served from the in-memory index (populated lazily from one file
        read, then maintained by :meth:`record`) — earlier versions
        re-read and re-parsed the whole journal on every call.
        """
        with self._lock:
            if self._index is None:
                records, _ = self._scan()
                self._index = set(records)
            return len(self._index)

    def snapshot(self) -> Dict[str, object]:
        """The ``/metrics`` view of this journal."""
        with self._lock:
            recorded = self.recorded
            unique = None if self._index is None else len(self._index)
        try:
            size_bytes: Optional[int] = os.stat(self.path).st_size
        except OSError:
            size_bytes = None
        return {
            "path": self.path,
            "recorded": recorded,
            "unique_fingerprints": unique,
            "size_bytes": size_bytes,
        }
