"""Admission control, job lifecycle, and service metrics.

Overload policy follows the admission-control literature (see PAPERS.md —
Babu et al. on call admission for wireless networks): the service decides
*at arrival time* whether a request is admitted into a **bounded** queue or
shed with an explicit retry hint, instead of letting an unbounded backlog
degrade every in-flight request.  The controller therefore owns

* the bounded FIFO of :class:`Job` objects the worker pool drains in
  batches (so the session layer can coalesce same-fingerprint requests),
* the request accounting the ``/metrics`` endpoint publishes, with two
  conservation invariants the CI smoke job asserts::

      received == admitted + rejected
      admitted == completed + failed + in_flight

  where ``in_flight`` counts admitted jobs that are still queued or
  executing,
* the latency window behind the published p50/p95, and
* the :class:`~repro.serve.controller.LatencyController` that adapts the
  *effective* queue depth toward a configurable p95 target and turns the
  measured drain rate into the 429 ``Retry-After`` hint (``max_depth``
  remains the configured starting point; the controller moves the
  admissible depth around it as the measured latency demands).

Clock discipline: :class:`Job` carries **two** timestamps on purpose.
``created`` is ``time.monotonic()`` and is the only clock latency math
ever touches — the monotonic clock never jumps, so queue-residence and
service latencies are exact even across a wall-clock step (NTP, DST).
``created_wall`` is ``time.time()`` and exists *only* for externally
meaningful records (the request journal's ``recorded_at``); it must never
be differenced against ``created`` or against any monotonic reading — the
two clocks share no epoch, and mixing them silently produces latencies
that are off by the machine's uptime.  A unit test pins both properties.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.api.protocol import EvalRequest
from repro.serve.controller import ControllerConfig, LatencyController


class QueueFullError(RuntimeError):
    """The bounded queue is full; the request was shed, not queued.

    Attributes:
        retry_after: suggested client back-off in seconds (the HTTP layer
            publishes it as the ``Retry-After`` header).
    """

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class ServiceClosedError(RuntimeError):
    """The service is shutting down and no longer serves requests."""


@dataclass
class Job:
    """One admitted evaluation request moving through the worker pool.

    Attributes:
        created: admission time on the **monotonic** clock — the only
            timestamp latency math may use (see the module docstring).
        created_wall: admission time on the wall clock, for externally
            meaningful records only (the request journal); never mixed
            with ``created`` or any other monotonic reading.
        wire: the normalized wire payload the request arrived as, when it
            arrived over the wire — what the journal records and what the
            process worker pool ships to a worker (names, not objects).
    """

    request: EvalRequest
    backend: Optional[str] = None
    created: float = field(default_factory=time.monotonic)
    created_wall: float = field(default_factory=time.time)
    wire: Optional[Dict[str, object]] = field(default=None, repr=False)
    done: threading.Event = field(default_factory=threading.Event, repr=False)
    result: Optional[object] = field(default=None, repr=False)
    error: Optional[BaseException] = field(default=None, repr=False)

    def resolve(self, result: object) -> None:
        self.result = result
        self.done.set()

    def fail(self, error: BaseException) -> None:
        self.error = error
        self.done.set()

    @property
    def latency(self) -> float:
        """Seconds from admission to now (or to resolution once done)."""
        return time.monotonic() - self.created


class LatencyWindow:
    """A bounded window of recent request latencies with percentile reads."""

    def __init__(self, maxlen: int = 1024) -> None:
        self._samples: deque = deque(maxlen=maxlen)  # guarded-by: _lock
        self._lock = threading.Lock()

    def record(self, seconds: float) -> None:
        with self._lock:
            self._samples.append(float(seconds))

    def percentile(self, fraction: float) -> Optional[float]:
        """The ``fraction`` quantile of the window, ``None`` when empty."""
        with self._lock:
            samples = sorted(self._samples)
        if not samples:
            return None
        index = min(len(samples) - 1, int(fraction * len(samples)))
        return samples[index]

    def mean(self) -> Optional[float]:
        with self._lock:
            samples = list(self._samples)
        if not samples:
            return None
        return sum(samples) / len(samples)

    def samples(self) -> List[float]:
        """A copy of the current window, oldest first.

        Exported so a front tier can merge percentiles *exactly* across
        replicas: a fleet p95 computed over the union of the per-replica
        windows, instead of an unsound average of per-replica p95s.
        """
        with self._lock:
            return list(self._samples)


class AdmissionController:
    """Bounded admission queue plus the request accounting behind /metrics.

    Args:
        max_depth: *starting* bound on queued (admitted, not yet claimed)
            jobs; an arrival beyond the current effective bound is shed
            with :class:`QueueFullError`.  With a ``controller_config``
            that sets ``target_p95`` the effective bound adapts around
            this value each control tick; without one it stays fixed (the
            pre-controller behaviour).
        workers: worker-pool size, used only to scale the retry hint
            before the controller has measured a drain rate.
        controller_config: tunables of the adaptive
            :class:`~repro.serve.controller.LatencyController`.
        clock: monotonic clock for the controller's tick schedule —
            injectable so tests drive control decisions deterministically.
    """

    def __init__(
        self,
        max_depth: int = 64,
        workers: int = 1,
        controller_config: Optional[ControllerConfig] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_depth <= 0:
            raise ValueError(f"max_depth must be positive, got {max_depth}")
        self.max_depth = max_depth
        self.workers = max(1, workers)
        self.latencies = LatencyWindow()
        self.controller = LatencyController(
            initial_depth=max_depth,
            config=controller_config,
            workers=self.workers,
            clock=clock,
        )
        self._jobs: deque = deque()  # guarded-by: _lock
        self._lock = threading.Lock()
        self._nonempty = threading.Condition(self._lock)
        self._closed = False  # guarded-by: _lock
        self.received = 0  # guarded-by: _lock
        self.admitted = 0  # guarded-by: _lock
        self.rejected = 0  # guarded-by: _lock
        self.completed = 0  # guarded-by: _lock
        self.failed = 0  # guarded-by: _lock

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------
    def submit(self, job: Job) -> Job:
        """Admit a job into the bounded queue or shed it.

        Raises:
            QueueFullError: the queue is at the controller's current
                effective depth.
            ServiceClosedError: the controller was closed.
        """
        # Run a due control tick before deciding on this arrival.  The p95
        # read (a sort of the latency window) happens outside the queue
        # lock; the controller and the window carry their own locks, and
        # the lock order is always admission -> controller, never back.
        if self.controller.tick_due():
            self.controller.maybe_tick(self.latencies.percentile(0.95))
        effective_depth = self.controller.effective_depth
        with self._nonempty:
            if self._closed:
                raise ServiceClosedError("service is shutting down")
            self.received += 1
            depth = len(self._jobs)
            self.controller.observe_queue_depth(depth)
            if depth >= effective_depth:
                self.rejected += 1
                self.controller.observe_rejection()
                # Computed with the already-held lock's depth: retry_after()
                # re-acquires the (non-reentrant) lock and must not be
                # called from here.
                raise QueueFullError(
                    f"admission queue is full ({depth} queued, effective "
                    f"depth {effective_depth}); retry later",
                    retry_after=self.controller.retry_after(
                        depth, self.latencies.mean()
                    ),
                )
            self.admitted += 1
            self._jobs.append(job)
            self._nonempty.notify()
            return job

    def retry_after(self) -> float:
        """Suggested back-off: the time the current backlog needs to drain.

        Delegates to the controller: ``queue depth / measured drain rate``
        once a drain rate exists, the ``depth x mean latency / workers``
        heuristic before that (both clamped to [1, 60] seconds).
        """
        with self._lock:
            depth = len(self._jobs)
        return self.controller.retry_after(depth, self.latencies.mean())

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------
    def next_batch(self, max_batch: int, timeout: float = 0.5) -> List[Job]:
        """Claim up to ``max_batch`` queued jobs (empty list on timeout).

        Claimed jobs stay ``in_flight`` until :meth:`job_done`.  Draining a
        *batch* (rather than one job) is what lets the worker's session
        coalesce same-fingerprint requests onto one engine pass.
        """
        if max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {max_batch}")
        with self._nonempty:
            if not self._jobs and not self._closed:
                self._nonempty.wait(timeout)
            batch = []
            while self._jobs and len(batch) < max_batch:
                batch.append(self._jobs.popleft())
            return batch

    def job_done(self, job: Job, ok: bool) -> None:
        """Account one claimed job's resolution and record its latency."""
        with self._lock:
            if ok:
                self.completed += 1
            else:
                self.failed += 1
        self.latencies.record(job.latency)
        self.controller.observe_completion()
        if self.controller.tick_due():
            self.controller.maybe_tick(self.latencies.percentile(0.95))

    # ------------------------------------------------------------------
    def close(self) -> List[Job]:
        """Refuse new arrivals and return the still-queued jobs.

        The caller (the service) fails the returned jobs so no waiter
        deadlocks on a job that will never run.
        """
        with self._nonempty:
            self._closed = True
            drained = list(self._jobs)
            self._jobs.clear()
            self._nonempty.notify_all()
        return drained

    @property
    def closed(self) -> bool:
        # Read under the lock: without it this is a data race with close(),
        # and the unsynchronized read is exactly what LOCK-GUARD flags.
        with self._lock:
            return self._closed

    @property
    def queue_depth(self) -> int:
        """Admitted jobs waiting to be claimed by a worker."""
        with self._lock:
            return len(self._jobs)

    @property
    def in_flight(self) -> int:
        """Admitted jobs not yet resolved (queued or executing)."""
        with self._lock:
            return self.admitted - self.completed - self.failed

    def drain_snapshot(self) -> Dict[str, object]:
        """The exportable drain view of this replica's queue.

        Published under ``/metrics`` ``"drain"`` and aggregated by the
        front tier (:mod:`repro.serve.front`) into its fleet-wide shed
        decision: queue depths and effective depths sum, drain rates sum,
        and the latency window samples union into an exact fleet p95.
        """
        with self._lock:
            depth = len(self._jobs)
            in_flight = self.admitted - self.completed - self.failed
        control = self.controller.drain_snapshot()
        return {
            "queue_depth": depth,
            "in_flight": in_flight,
            "effective_depth": control["effective_depth"],
            "drain_rate_per_second": control["drain_rate_per_second"],
            "latency_window_seconds": self.latencies.samples(),
        }

    def snapshot(self) -> Dict[str, object]:
        """The /metrics view: counters, depth, and latency percentiles."""
        with self._lock:
            counters = {
                "received": self.received,
                "admitted": self.admitted,
                "rejected": self.rejected,
                "completed": self.completed,
                "failed": self.failed,
                "in_flight": self.admitted - self.completed - self.failed,
                "queue_depth": len(self._jobs),
                "max_depth": self.max_depth,
            }
        counters["effective_depth"] = self.controller.effective_depth
        counters["latency_p50_seconds"] = self.latencies.percentile(0.50)
        counters["latency_p95_seconds"] = self.latencies.percentile(0.95)
        counters["latency_mean_seconds"] = self.latencies.mean()
        return counters
