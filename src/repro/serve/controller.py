"""Adaptive admission control: a latency-target controller for the queue.

The static queue bound of PR 4 shed load at a depth chosen by hand, which
is wrong in both directions: too deep and every admitted request waits out
a long backlog (p95 blows past any latency target), too shallow and a fast
worker pool sheds traffic it could have served.  This module replaces the
hand-chosen constant with a measurement-driven controller in the spirit of
the call-admission-control and control-theoretic 802.11 contention papers
in PAPERS.md: the *measured* service behaviour — drain rate and the p95 of
the existing latency window — drives the admissible queue depth.

Control law (one decision per *tick*, ticks spaced ``tick_interval``
seconds on the injected monotonic clock):

* **measure** — completions since the last tick give the drain rate; the
  admission layer hands in the current latency-window p95.
* **decrease (multiplicative)** — p95 above ``target_p95`` means the
  backlog admitted so far is too deep for the latency target: the
  effective depth is scaled by ``decrease_factor`` (never below
  ``min_depth``).  Shedding earlier is the only lever that shortens queue
  residence without touching the workers.
* **increase (additive, pressure-gated)** — p95 at or below
  ``band * target_p95`` *and* observed admission pressure since the last
  tick (a shed arrival, or the queue touching the current bound) means the
  bound is costing throughput the latency budget could absorb: the depth
  grows by ``increase_step`` (never above ``max_depth``).  Without
  pressure the depth **holds** — a steady in-band load must not make the
  controller wander (the no-oscillation property the unit tests pin).
* **hold** — anything else (including "no latency data yet").

The controller also owns the 429 ``Retry-After`` hint: with a measured
drain rate the backlog of ``d`` queued jobs clears in ``d / drain_rate``
seconds, which is the hint; before any drain measurement it falls back to
the PR-4 heuristic (``depth x mean latency / workers``).  Both are clamped
to ``[1, 60]`` seconds.

Everything here runs on an injectable monotonic ``clock`` so the unit
tests drive ticks deterministically with a fake clock; nothing in this
module ever reads the wall clock (see ``Job`` in
:mod:`repro.serve.admission` for the monotonic/wall-clock discipline).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional


@dataclass(frozen=True)
class ControllerConfig:
    """Tunables of the adaptive admission controller.

    Attributes:
        target_p95: latency target in seconds the controller steers the
            queue toward; ``None`` freezes the effective depth at its
            initial value (the PR-4 static behaviour) while still
            measuring drain rate for the ``Retry-After`` hint and
            ``/metrics``.
        tick_interval: seconds between control decisions (measured on the
            injected monotonic clock).
        min_depth / max_depth: bounds the effective depth may adapt
            within.
        increase_step: additive depth increase per under-target tick with
            admission pressure.
        decrease_factor: multiplicative depth decrease per over-target
            tick.
        band: increase only when ``p95 <= band * target_p95`` — the
            deadband between ``band * target`` and ``target`` prevents
            increase/decrease oscillation around the target.
    """

    target_p95: Optional[float] = None
    tick_interval: float = 0.5
    min_depth: int = 2
    max_depth: int = 1024
    increase_step: int = 8
    decrease_factor: float = 0.5
    band: float = 0.8

    def __post_init__(self) -> None:
        if self.target_p95 is not None and self.target_p95 <= 0:
            raise ValueError(f"target_p95 must be positive, got {self.target_p95}")
        if self.tick_interval <= 0:
            raise ValueError(
                f"tick_interval must be positive, got {self.tick_interval}"
            )
        if self.min_depth <= 0:
            raise ValueError(f"min_depth must be positive, got {self.min_depth}")
        if self.max_depth < self.min_depth:
            raise ValueError(
                f"max_depth {self.max_depth} < min_depth {self.min_depth}"
            )
        if self.increase_step <= 0:
            raise ValueError(
                f"increase_step must be positive, got {self.increase_step}"
            )
        if not 0.0 < self.decrease_factor < 1.0:
            raise ValueError(
                f"decrease_factor must be in (0, 1), got {self.decrease_factor}"
            )
        if not 0.0 < self.band <= 1.0:
            raise ValueError(f"band must be in (0, 1], got {self.band}")


class LatencyController:
    """Adapts the effective queue depth toward a p95 latency target.

    The admission controller calls :meth:`observe_completion` /
    :meth:`observe_rejection` / :meth:`observe_queue_depth` as traffic
    flows and :meth:`maybe_tick` on arrivals; one control decision fires
    per ``tick_interval`` of the injected clock.  All state is guarded by
    an internal lock, so the admission layer may call in from any thread
    (it holds its own queue lock while doing so; the lock order is always
    admission -> controller and nothing here calls back out).
    """

    def __init__(
        self,
        initial_depth: int,
        config: Optional[ControllerConfig] = None,
        workers: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if initial_depth <= 0:
            raise ValueError(f"initial_depth must be positive, got {initial_depth}")
        self.config = config or ControllerConfig()
        self.initial_depth = initial_depth
        self.workers = max(1, workers)
        self._clock = clock
        self._lock = threading.Lock()
        bounded = max(self.config.min_depth, min(self.config.max_depth, initial_depth))
        if self.config.target_p95 is None:
            bounded = initial_depth
        self._effective_depth = bounded  # guarded-by: _lock
        self._last_tick = clock()  # guarded-by: _lock
        self._completions_since_tick = 0  # guarded-by: _lock
        self._rejections_since_tick = 0  # guarded-by: _lock
        self._queue_touched_bound = False  # guarded-by: _lock
        self._drain_rate: Optional[float] = None  # guarded-by: _lock
        self._observed_p95: Optional[float] = None  # guarded-by: _lock
        self._ticks = 0  # guarded-by: _lock
        self._increases = 0  # guarded-by: _lock
        self._decreases = 0  # guarded-by: _lock
        self._holds = 0  # guarded-by: _lock
        self._last_decision = "none"  # guarded-by: _lock

    # ------------------------------------------------------------------
    # observations (called by the admission layer as traffic flows)
    # ------------------------------------------------------------------
    def observe_completion(self) -> None:
        """Account one resolved job (its latency feeds the shared window)."""
        with self._lock:
            self._completions_since_tick += 1

    def observe_rejection(self) -> None:
        """Account one shed arrival — admission pressure for the next tick."""
        with self._lock:
            self._rejections_since_tick += 1

    def observe_queue_depth(self, depth: int) -> None:
        """Account the queue depth seen at an arrival (pressure signal)."""
        with self._lock:
            if depth >= self._effective_depth:
                self._queue_touched_bound = True

    # ------------------------------------------------------------------
    # the control tick
    # ------------------------------------------------------------------
    def tick_due(self) -> bool:
        """Whether a control decision is due on the injected clock."""
        with self._lock:
            return self._clock() - self._last_tick >= self.config.tick_interval

    def maybe_tick(self, p95: Optional[float]) -> None:
        """Run one control decision if ``tick_interval`` has elapsed.

        Args:
            p95: current latency-window p95 in seconds (``None`` = no data
                yet); the caller reads it from its
                :class:`~repro.serve.admission.LatencyWindow` *outside*
                any admission lock it is free to not hold — the window has
                its own lock.
        """
        with self._lock:
            now = self._clock()
            elapsed = now - self._last_tick
            if elapsed < self.config.tick_interval:
                return
            self._ticks += 1
            self._drain_rate = self._completions_since_tick / elapsed
            self._observed_p95 = p95
            pressure = self._rejections_since_tick > 0 or self._queue_touched_bound
            self._completions_since_tick = 0
            self._rejections_since_tick = 0
            self._queue_touched_bound = False
            self._last_tick = now
            target = self.config.target_p95
            if target is None or p95 is None:
                self._holds += 1
                self._last_decision = "hold"
                return
            if p95 > target:
                shrunk = int(self._effective_depth * self.config.decrease_factor)
                self._effective_depth = max(self.config.min_depth, shrunk)
                self._decreases += 1
                self._last_decision = "decrease"
            elif p95 <= self.config.band * target and pressure:
                grown = self._effective_depth + self.config.increase_step
                self._effective_depth = min(self.config.max_depth, grown)
                self._increases += 1
                self._last_decision = "increase"
            else:
                self._holds += 1
                self._last_decision = "hold"

    # ------------------------------------------------------------------
    # what the admission layer reads
    # ------------------------------------------------------------------
    @property
    def effective_depth(self) -> int:
        """Queue depth arrivals are currently admitted up to."""
        with self._lock:
            return self._effective_depth

    def retry_after(self, queue_depth: int, mean_latency: Optional[float]) -> float:
        """Suggested client back-off for one shed arrival, in seconds.

        With a measured drain rate the hint is the time the current
        backlog needs to clear (``queue_depth / drain_rate``); before any
        drain measurement it falls back to the static heuristic
        (``queue_depth x mean latency / workers``).  Clamped to [1, 60].
        """
        with self._lock:
            drain_rate = self._drain_rate
        if drain_rate is not None and drain_rate > 0:
            hint = queue_depth / drain_rate
        else:
            hint = queue_depth * (mean_latency or 1.0) / self.workers
        return float(min(60.0, max(1.0, hint)))

    def drain_snapshot(self) -> Dict[str, object]:
        """The exportable drain view: what a front tier needs to aggregate.

        A deliberately small, stable subset of :meth:`snapshot` — the two
        quantities a fleet-level admission decision sums across replicas
        (the current admissible depth and the measured drain rate) — so
        the front tier does not couple itself to the full controller
        telemetry schema.
        """
        with self._lock:
            return {
                "effective_depth": self._effective_depth,
                "drain_rate_per_second": self._drain_rate,
            }

    def snapshot(self) -> Dict[str, object]:
        """The ``/metrics`` view of the controller state."""
        with self._lock:
            return {
                "target_p95_seconds": self.config.target_p95,
                "effective_depth": self._effective_depth,
                "initial_depth": self.initial_depth,
                "min_depth": self.config.min_depth,
                "max_depth": self.config.max_depth,
                "tick_interval_seconds": self.config.tick_interval,
                "drain_rate_per_second": self._drain_rate,
                "observed_p95_seconds": self._observed_p95,
                "ticks": self._ticks,
                "increases": self._increases,
                "decreases": self._decreases,
                "holds": self._holds,
                "last_decision": self._last_decision,
            }
