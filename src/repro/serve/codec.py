"""JSON wire codecs for the evaluation service.

The service speaks a strict JSON protocol in front of the in-process
:class:`~repro.api.protocol.EvalRequest` / :class:`~repro.api.protocol.EvalResult`
types.  Two asymmetries shape the codec:

* A wire request cannot carry a trained model or a dataset by value, so it
  names them (``"model": "tea"``, ``"dataset": "test"``) and the server
  resolves the names against its :class:`~repro.serve.server.ModelRegistry`.
  :func:`encode_request` / :func:`decode_request` therefore round-trip the
  *wire form* losslessly, and :func:`to_eval_request` performs the resolution.
* A wire result carries every tensor by value.  Arrays are encoded as
  ``{"dtype", "shape", "data"}`` with flat ``data`` lists; JSON serializes
  Python floats via ``repr``, which round-trips every finite float64 exactly,
  so a decoded :class:`EvalResult` is **bit-identical** to the served one —
  the invariant the service smoke job asserts against direct
  :meth:`Session.evaluate`.

Validation is strict: unknown fields, wrong types (including ``True`` where
an int is expected), and malformed arrays all raise :class:`CodecError`,
which the HTTP layer maps to a typed ``400`` error payload.  Typed payloads
(:func:`error_payload`) also cover
:class:`~repro.api.protocol.UnsupportedRequestError` (``422``), unknown
model/dataset names (``404``), overload (``429``), and shutdown (``503``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import Dict, Optional, Tuple

import numpy as np

from repro.api.protocol import KNOWN_ENCODERS, EvalRequest, UnsupportedRequestError
from repro.api import EvalResult, backend_names


class CodecError(ValueError):
    """A wire payload violates the protocol schema.

    Attributes:
        field: name of the offending field, when one can be blamed.
    """

    def __init__(self, message: str, field: Optional[str] = None) -> None:
        super().__init__(message)
        self.field = field


class UnknownModelError(KeyError):
    """A wire request names a model the registry does not host."""


class UnknownDatasetError(KeyError):
    """A wire request names a dataset the registry does not host."""


@dataclass(frozen=True)
class WireRequest:
    """The validated wire form of one evaluation request.

    Mirrors :class:`EvalRequest` field for field, with the model and dataset
    replaced by registry names and an optional explicit ``backend`` (``None``
    defers to the service session's selection, normally ``auto``).
    """

    model: str
    dataset: str = "test"
    backend: Optional[str] = None
    copy_levels: Tuple[int, ...] = (1,)
    spf_levels: Tuple[int, ...] = (1,)
    repeats: int = 1
    seed: Optional[int] = 0
    encoder: str = "stochastic"
    max_samples: Optional[int] = None
    collect_spike_counters: bool = False
    router_delay: Optional[int] = None
    stochastic_synapses: bool = False
    link_delay: Optional[int] = None


_WIRE_FIELDS = tuple(spec.name for spec in fields(WireRequest))


def _require(condition: bool, message: str, field: str) -> None:
    if not condition:
        raise CodecError(message, field=field)


def _is_int(value: object) -> bool:
    """Strictly an integer — JSON ``true`` must not pass as ``1``."""
    return isinstance(value, int) and not isinstance(value, bool)


def _int_tuple(value: object, field: str) -> Tuple[int, ...]:
    _require(
        isinstance(value, (list, tuple)) and len(value) > 0,
        f"{field} must be a non-empty list of integers",
        field,
    )
    for item in value:
        _require(_is_int(item), f"{field} entries must be integers", field)
    return tuple(int(item) for item in value)


def encode_request(
    request: EvalRequest,
    model: str,
    dataset: str = "test",
    backend: Optional[str] = None,
) -> Dict[str, object]:
    """The wire payload naming ``model``/``dataset`` for an in-process request."""
    return {
        "model": model,
        "dataset": dataset,
        "backend": backend,
        "copy_levels": list(request.copy_levels),
        "spf_levels": list(request.spf_levels),
        "repeats": request.repeats,
        "seed": request.seed,
        "encoder": request.encoder,
        "max_samples": request.max_samples,
        "collect_spike_counters": request.collect_spike_counters,
        "router_delay": request.router_delay,
        "stochastic_synapses": request.stochastic_synapses,
        "link_delay": request.link_delay,
    }


def wire_payload(wire: WireRequest) -> Dict[str, object]:
    """The normalized JSON payload of a validated :class:`WireRequest`.

    Every field is spelled out (defaults included) with deterministic
    types, so two client payloads that decode to the same wire request
    produce the same normalized dict — the property the request journal's
    fingerprinting and the process worker pool's batch shipping rely on.
    ``decode_request(wire_payload(w)) == w`` for every ``WireRequest``.
    """
    return {
        "model": wire.model,
        "dataset": wire.dataset,
        "backend": wire.backend,
        "copy_levels": list(wire.copy_levels),
        "spf_levels": list(wire.spf_levels),
        "repeats": wire.repeats,
        "seed": wire.seed,
        "encoder": wire.encoder,
        "max_samples": wire.max_samples,
        "collect_spike_counters": wire.collect_spike_counters,
        "router_delay": wire.router_delay,
        "stochastic_synapses": wire.stochastic_synapses,
        "link_delay": wire.link_delay,
    }


def decode_request(payload: object) -> WireRequest:
    """Validate a wire payload strictly and return its :class:`WireRequest`.

    Value-range rules that :class:`EvalRequest` already owns (positive
    levels, positive repeats, known encoder, ...) are *not* duplicated here;
    :func:`to_eval_request` funnels them through the dataclass and converts
    any violation into a :class:`CodecError`.
    """
    if not isinstance(payload, dict):
        raise CodecError(
            f"request body must be a JSON object, got {type(payload).__name__}"
        )
    unknown = sorted(set(payload) - set(_WIRE_FIELDS))
    if unknown:
        raise CodecError(
            f"unknown request fields {unknown}; known: {sorted(_WIRE_FIELDS)}",
            field=unknown[0],
        )
    _require("model" in payload, "request is missing the 'model' field", "model")
    model = payload["model"]
    _require(
        isinstance(model, str) and model != "",
        "model must be a non-empty string",
        "model",
    )
    dataset = payload.get("dataset", "test")
    _require(
        isinstance(dataset, str) and dataset != "",
        "dataset must be a non-empty string",
        "dataset",
    )
    backend = payload.get("backend")
    if backend is not None:
        _require(
            isinstance(backend, str), "backend must be a string or null", "backend"
        )
        _require(
            backend in backend_names(),
            f"unknown backend {backend!r}; registered: {backend_names()}",
            "backend",
        )
    copy_levels = _int_tuple(payload.get("copy_levels", [1]), "copy_levels")
    spf_levels = _int_tuple(payload.get("spf_levels", [1]), "spf_levels")
    repeats = payload.get("repeats", 1)
    _require(_is_int(repeats), "repeats must be an integer", "repeats")
    seed = payload.get("seed", 0)
    _require(seed is None or _is_int(seed), "seed must be an integer or null", "seed")
    encoder = payload.get("encoder", "stochastic")
    _require(
        isinstance(encoder, str),
        f"encoder must be a string (known: {KNOWN_ENCODERS})",
        "encoder",
    )
    max_samples = payload.get("max_samples")
    _require(
        max_samples is None or _is_int(max_samples),
        "max_samples must be an integer or null",
        "max_samples",
    )
    collect = payload.get("collect_spike_counters", False)
    _require(
        isinstance(collect, bool),
        "collect_spike_counters must be a boolean",
        "collect_spike_counters",
    )
    router_delay = payload.get("router_delay")
    _require(
        router_delay is None or _is_int(router_delay),
        "router_delay must be an integer or null",
        "router_delay",
    )
    stochastic = payload.get("stochastic_synapses", False)
    _require(
        isinstance(stochastic, bool),
        "stochastic_synapses must be a boolean",
        "stochastic_synapses",
    )
    link_delay = payload.get("link_delay")
    _require(
        link_delay is None or _is_int(link_delay),
        "link_delay must be an integer or null",
        "link_delay",
    )
    return WireRequest(
        model=model,
        dataset=dataset,
        backend=backend,
        copy_levels=copy_levels,
        spf_levels=spf_levels,
        repeats=int(repeats),
        seed=None if seed is None else int(seed),
        encoder=encoder,
        max_samples=None if max_samples is None else int(max_samples),
        collect_spike_counters=collect,
        router_delay=None if router_delay is None else int(router_delay),
        stochastic_synapses=stochastic,
        link_delay=None if link_delay is None else int(link_delay),
    )


def to_eval_request(wire: WireRequest, registry) -> EvalRequest:
    """Resolve a wire request against a registry into an :class:`EvalRequest`.

    ``registry`` needs two lookups — ``model(name)`` raising
    :class:`UnknownModelError` and ``dataset(name)`` raising
    :class:`UnknownDatasetError` (:class:`~repro.serve.server.ModelRegistry`
    implements both).  Value-range violations surface as :class:`CodecError`
    so the transport can answer a typed ``400`` instead of a bare ``500``.
    """
    model = registry.model(wire.model)
    dataset = registry.dataset(wire.dataset)
    try:
        return EvalRequest(
            model=model,
            dataset=dataset,
            copy_levels=wire.copy_levels,
            spf_levels=wire.spf_levels,
            repeats=wire.repeats,
            seed=wire.seed,
            encoder=wire.encoder,
            max_samples=wire.max_samples,
            collect_spike_counters=wire.collect_spike_counters,
            router_delay=wire.router_delay,
            stochastic_synapses=wire.stochastic_synapses,
            link_delay=wire.link_delay,
        )
    except ValueError as error:
        raise CodecError(str(error)) from error


# ----------------------------------------------------------------------
# arrays and results
# ----------------------------------------------------------------------
#: dtypes a wire array may carry; anything else is a protocol violation.
WIRE_DTYPES = ("float64", "int64", "bool")


def encode_array(array: np.ndarray) -> Dict[str, object]:
    """A numpy array as ``{"dtype", "shape", "data"}`` with flat data."""
    array = np.asarray(array)
    if array.dtype.name not in WIRE_DTYPES:
        raise CodecError(
            f"array dtype {array.dtype.name!r} is not wire-encodable; "
            f"allowed: {WIRE_DTYPES}"
        )
    return {
        "dtype": array.dtype.name,
        "shape": list(array.shape),
        "data": array.ravel().tolist(),
    }


def decode_array(obj: object, field: str = "array") -> np.ndarray:
    """Decode :func:`encode_array` output back into a numpy array."""
    _require(isinstance(obj, dict), f"{field} must be an array object", field)
    missing = {"dtype", "shape", "data"} - set(obj)
    _require(not missing, f"{field} is missing {sorted(missing)}", field)
    _require(
        obj["dtype"] in WIRE_DTYPES,
        f"{field} has unknown dtype {obj['dtype']!r}",
        field,
    )
    shape = _int_tuple(obj["shape"], f"{field}.shape") if obj["shape"] else ()
    _require(isinstance(obj["data"], list), f"{field}.data must be a list", field)
    expected = int(np.prod(shape, dtype=np.int64)) if shape else 1
    _require(
        len(obj["data"]) == expected,
        f"{field}.data has {len(obj['data'])} entries, shape {shape} needs {expected}",
        field,
    )
    # Entry types are checked before numpy sees them: np.asarray would
    # silently truncate floats and coerce booleans into an int64 array,
    # which is exactly the lossy coercion a strict codec must refuse.
    data = obj["data"]
    if obj["dtype"] == "bool":
        typed = all(isinstance(item, bool) for item in data)
    elif obj["dtype"] == "int64":
        typed = all(_is_int(item) for item in data)
    else:  # float64; integer-valued entries decode exactly, bools do not pass
        typed = all(
            isinstance(item, (int, float)) and not isinstance(item, bool)
            for item in data
        )
    _require(typed, f"{field}.data entries do not match dtype {obj['dtype']}", field)
    try:
        return np.asarray(data, dtype=obj["dtype"]).reshape(shape)
    except (TypeError, ValueError) as error:
        raise CodecError(
            f"{field}.data does not decode: {error}", field=field
        ) from error


def encode_result(result: EvalResult) -> Dict[str, object]:
    """An :class:`EvalResult` as a JSON-safe payload (exact, see module doc)."""
    return {
        "backend": result.backend,
        "copy_levels": list(result.copy_levels),
        "spf_levels": list(result.spf_levels),
        "scores": encode_array(result.scores),
        "accuracy": encode_array(result.accuracy),
        "labels": encode_array(np.asarray(result.labels, dtype=np.int64)),
        "class_neuron_counts": encode_array(
            np.asarray(result.class_neuron_counts, dtype=np.int64)
        ),
        "cores": encode_array(np.asarray(result.cores, dtype=np.int64)),
        "seed": result.seed,
        "repeats": result.repeats,
        "spike_counters": (
            None
            if result.spike_counters is None
            else encode_array(result.spike_counters)
        ),
    }


_RESULT_FIELDS = (
    "backend",
    "copy_levels",
    "spf_levels",
    "scores",
    "accuracy",
    "labels",
    "class_neuron_counts",
    "cores",
    "seed",
    "repeats",
    "spike_counters",
)


def decode_result(payload: object) -> EvalResult:
    """Decode :func:`encode_result` output back into an :class:`EvalResult`."""
    if not isinstance(payload, dict):
        raise CodecError(
            f"result payload must be a JSON object, got {type(payload).__name__}"
        )
    unknown = sorted(set(payload) - set(_RESULT_FIELDS))
    if unknown:
        raise CodecError(f"unknown result fields {unknown}", field=unknown[0])
    missing = sorted(set(_RESULT_FIELDS) - set(payload))
    if missing:
        raise CodecError(f"result is missing fields {missing}", field=missing[0])
    _require(isinstance(payload["backend"], str), "backend must be a string", "backend")
    seed = payload["seed"]
    _require(seed is None or _is_int(seed), "seed must be an integer or null", "seed")
    _require(_is_int(payload["repeats"]), "repeats must be an integer", "repeats")
    spike_counters = payload["spike_counters"]
    return EvalResult(
        backend=payload["backend"],
        copy_levels=_int_tuple(payload["copy_levels"], "copy_levels"),
        spf_levels=_int_tuple(payload["spf_levels"], "spf_levels"),
        scores=decode_array(payload["scores"], "scores"),
        accuracy=decode_array(payload["accuracy"], "accuracy"),
        labels=decode_array(payload["labels"], "labels"),
        class_neuron_counts=decode_array(
            payload["class_neuron_counts"], "class_neuron_counts"
        ),
        cores=decode_array(payload["cores"], "cores"),
        seed=None if seed is None else int(seed),
        repeats=int(payload["repeats"]),
        spike_counters=(
            None
            if spike_counters is None
            else decode_array(spike_counters, "spike_counters")
        ),
    )


# ----------------------------------------------------------------------
# typed error payloads
# ----------------------------------------------------------------------
def error_payload(error: BaseException) -> Tuple[int, Dict[str, object]]:
    """(HTTP status, ``{"error": {...}}`` payload) for a service failure.

    The ``type`` discriminator is stable protocol surface — clients switch
    on it (:mod:`repro.serve.client` raises the matching typed exception).
    Covers every typed failure of the request path, including overload
    (429, with a ``retry_after`` field the HTTP layer mirrors into the
    ``Retry-After`` header) and shutdown (503); anything unrecognized is a
    500 ``internal-error``.
    """
    # Imported here, not at module top: admission imports nothing from this
    # module today, but the codec's public surface should not be the reason
    # that stays true.
    from repro.serve.admission import QueueFullError, ServiceClosedError

    if isinstance(error, QueueFullError):
        return 429, {
            "error": {
                "type": "overloaded",
                "message": str(error),
                "retry_after": max(1, math.ceil(error.retry_after)),
            }
        }
    if isinstance(error, ServiceClosedError):
        return 503, {
            "error": {"type": "shutting-down", "message": str(error)}
        }
    if isinstance(error, CodecError):
        detail: Dict[str, object] = {
            "type": "request-validation",
            "message": str(error),
        }
        if error.field is not None:
            detail["field"] = error.field
        return 400, {"error": detail}
    if isinstance(error, UnknownModelError):
        return 404, {
            "error": {"type": "unknown-model", "message": str(error.args[0])}
        }
    if isinstance(error, UnknownDatasetError):
        return 404, {
            "error": {"type": "unknown-dataset", "message": str(error.args[0])}
        }
    if isinstance(error, UnsupportedRequestError):
        return 422, {
            "error": {"type": "unsupported-request", "message": str(error)}
        }
    return 500, {
        "error": {
            "type": "internal-error",
            "message": f"{type(error).__name__}: {error}",
        }
    }
