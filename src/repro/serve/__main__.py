"""Command-line entry point: ``python -m repro.serve`` / ``repro-serve``.

Trains the requested learning methods on one test bench at boot (never on
the request path), binds the HTTP service, and serves until interrupted::

    repro-serve --port 8000 --methods tea,biased --workers 4
    curl -s localhost:8000/v1/models | python -m json.tool

The ``front`` subcommand runs the fleet router instead of a replica: it
fronts already-running replicas with consistent model routing, fleet-wide
admission, and health-based ejection (:mod:`repro.serve.front`)::

    repro-serve front --port 8000 \\
        --replicas 127.0.0.1:8101,127.0.0.1:8102,127.0.0.1:8103
    curl -s localhost:8000/v1/fleet | python -m json.tool
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from repro.experiments.runner import ExperimentContext
from repro.serve.front import FrontConfig, FrontServer
from repro.serve.server import EvalServer, ModelRegistry, ServeConfig


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=__doc__,
        formatter_class=argparse.ArgumentDefaultsHelpFormatter,
    )
    service = parser.add_argument_group("service")
    service.add_argument("--host", default="127.0.0.1", help="bind address")
    service.add_argument(
        "--port", type=int, default=8000, help="bind port (0 = ephemeral)"
    )
    service.add_argument(
        "--backend",
        default="auto",
        help="default backend for requests that do not name one",
    )
    service.add_argument(
        "--workers", type=int, default=2, help="workers draining the queue"
    )
    service.add_argument(
        "--worker-mode",
        choices=("thread", "process"),
        default="thread",
        help="thread workers share the GIL; process workers evaluate around it",
    )
    service.add_argument(
        "--queue-depth",
        type=int,
        default=64,
        help="starting queue depth; arrivals beyond the effective depth get 429",
    )
    service.add_argument(
        "--target-p95",
        type=float,
        default=None,
        help=(
            "p95 latency target in seconds for adaptive admission "
            "(default: static queue depth)"
        ),
    )
    service.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help=(
            "append-only request journal; a restarted server replays it "
            "to warm the caches"
        ),
    )
    service.add_argument(
        "--batch-max",
        type=int,
        default=8,
        help="jobs per worker drain (the request-coalescing window)",
    )
    service.add_argument(
        "--request-timeout",
        type=float,
        default=300.0,
        help="seconds before a waiting HTTP request answers 504",
    )
    service.add_argument(
        "--cache-dir", default=None, help="persistent score-cache directory"
    )
    service.add_argument(
        "--cache-max-bytes",
        type=int,
        default=None,
        help="LRU bound for --cache-dir",
    )
    models = parser.add_argument_group("hosted models")
    models.add_argument(
        "--methods",
        default="tea,biased",
        help="comma-separated learning methods to train and host",
    )
    models.add_argument(
        "--testbench", type=int, default=1, help="Table 3 test bench to host"
    )
    models.add_argument("--train-size", type=int, default=2000)
    models.add_argument("--test-size", type=int, default=450)
    models.add_argument("--epochs", type=int, default=16)
    models.add_argument(
        "--eval-samples",
        type=int,
        default=300,
        help="samples in the hosted 'test' dataset",
    )
    models.add_argument("--seed", type=int, default=0)
    return parser


def build_front_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve front",
        description="Fleet router fronting running repro-serve replicas.",
        formatter_class=argparse.ArgumentDefaultsHelpFormatter,
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8000, help="bind port (0 = ephemeral)"
    )
    parser.add_argument(
        "--replicas",
        required=True,
        help="comma-separated replica addresses, e.g. 127.0.0.1:8101,127.0.0.1:8102",
    )
    parser.add_argument(
        "--poll-interval",
        type=float,
        default=0.25,
        help="seconds between health/drain polls of each replica",
    )
    parser.add_argument(
        "--eject-after",
        type=int,
        default=2,
        help="consecutive failed health probes before a replica is ejected",
    )
    parser.add_argument(
        "--request-timeout",
        type=float,
        default=330.0,
        help="socket timeout for one proxied evaluate call",
    )
    return parser


def front_main(argv: Sequence[str]) -> int:
    args = build_front_parser().parse_args(argv)
    replicas = tuple(r.strip() for r in args.replicas.split(",") if r.strip())
    if not replicas:
        print("no replicas to front (--replicas is empty)", file=sys.stderr)
        return 2
    config = FrontConfig(
        host=args.host,
        port=args.port,
        replicas=replicas,
        poll_interval=args.poll_interval,
        eject_after=args.eject_after,
        request_timeout=args.request_timeout,
    )
    server = FrontServer(config).start()
    print(
        f"fronting {len(replicas)} replica(s) on {server.url}  "
        f"(POST /v1/evaluate, GET /v1/models /v1/fleet /healthz /metrics)"
    )
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("shutting down ...")
    finally:
        server.close()
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] == "front":
        return front_main(arguments[1:])
    args = build_parser().parse_args(arguments)
    methods = tuple(m.strip() for m in args.methods.split(",") if m.strip())
    if not methods:
        print("no methods to host (--methods is empty)", file=sys.stderr)
        return 2
    context = ExperimentContext(
        testbench=args.testbench,
        train_size=args.train_size,
        test_size=args.test_size,
        epochs=args.epochs,
        eval_samples=args.eval_samples,
        seed=args.seed,
    )
    print(
        f"training {methods} on test bench {args.testbench} "
        f"(train_size={args.train_size}, epochs={args.epochs}) ..."
    )
    start = time.perf_counter()
    registry = ModelRegistry.from_context(context, methods=methods)
    print(f"models ready in {time.perf_counter() - start:.1f}s")
    config = ServeConfig(
        host=args.host,
        port=args.port,
        backend=args.backend,
        workers=args.workers,
        worker_mode=args.worker_mode,
        queue_depth=args.queue_depth,
        target_p95=args.target_p95,
        batch_max=args.batch_max,
        request_timeout=args.request_timeout,
        cache_dir=args.cache_dir,
        cache_max_bytes=args.cache_max_bytes,
        journal_path=args.journal,
    )
    server = EvalServer(registry, config).start()
    print(
        f"serving on {server.url}  "
        f"(POST /v1/evaluate, GET /v1/models /healthz /metrics)"
    )
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("shutting down ...")
    finally:
        server.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
