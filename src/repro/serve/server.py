"""The evaluation service: model registry, worker pool, HTTP server.

Three layers, separable for testing:

* :class:`ModelRegistry` — the models and datasets the service hosts, by
  name (wire requests reference names; :func:`ModelRegistry.from_context`
  trains the paper's learning methods on one test bench and registers the
  matching evaluation splits).
* :class:`EvalService` — the transport-free core: an
  :class:`~repro.serve.admission.AdmissionController` in front of a worker
  pool, each worker draining *batches* of admitted jobs through its own
  :class:`repro.api.Session` (``submit`` + one ``flush`` per batch), so
  same-fingerprint requests coalesce onto shared engine passes exactly as
  they do in-process.  All workers share one score cache, so a repeated
  configuration is a cache hit regardless of which worker serves it.
  Responses are **bit-identical** to a direct ``Session.evaluate`` of the
  same request — the service adds queuing, never arithmetic.
* :class:`EvalServer` — the stdlib HTTP binding
  (:class:`~http.server.ThreadingHTTPServer` + the handler in
  :mod:`repro.serve.handlers`) exposing ``POST /v1/evaluate``,
  ``GET /v1/models``, ``GET /healthz``, and ``GET /metrics``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from http.server import ThreadingHTTPServer
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api import Session, backend_names
from repro.api.protocol import EvalRequest
from repro.datasets.base import Dataset
from repro.eval.runner import ScoreCache
from repro.serve.admission import (
    AdmissionController,
    Job,
    ServiceClosedError,
)
from repro.serve.codec import (
    UnknownDatasetError,
    UnknownModelError,
    decode_request,
    to_eval_request,
)
from repro.serve.handlers import ServeHandler


@dataclass
class ServeConfig:
    """Tunables of one service instance.

    Attributes:
        host / port: bind address; ``port=0`` asks the OS for an ephemeral
            port (the bound port is on :attr:`EvalServer.port`).
        backend: default backend for requests that do not name one
            (``"auto"`` selects by request capability, as in ``Session``).
        workers: worker threads draining the admission queue.
        queue_depth: bound on *queued* jobs; arrivals beyond it get 429.
        batch_max: most jobs one worker claims per drain — the coalescing
            window.
        request_timeout: seconds an HTTP handler waits for its job before
            answering 504 (the job itself is not cancelled).
        cache_dir / cache_max_bytes: persistent score cache, as in
            :class:`repro.api.Session`.
    """

    host: str = "127.0.0.1"
    port: int = 8000
    backend: str = "auto"
    workers: int = 2
    queue_depth: int = 64
    batch_max: int = 8
    request_timeout: float = 300.0
    cache_dir: Optional[str] = None
    cache_max_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        if self.batch_max <= 0:
            raise ValueError(f"batch_max must be positive, got {self.batch_max}")
        if self.request_timeout <= 0:
            raise ValueError(
                f"request_timeout must be positive, got {self.request_timeout}"
            )


class ModelRegistry:
    """Named models and datasets a service instance hosts."""

    def __init__(self) -> None:
        self._models: Dict[str, Tuple[object, Dict[str, object]]] = {}
        self._datasets: Dict[str, Dataset] = {}

    # ------------------------------------------------------------------
    def add_model(self, name: str, model, **metadata) -> None:
        """Host ``model`` under ``name`` (metadata shows up in /v1/models)."""
        if not name or not isinstance(name, str):
            raise ValueError(f"model name must be a non-empty string, got {name!r}")
        self._models[name] = (model, dict(metadata))

    def add_dataset(self, name: str, dataset: Dataset) -> None:
        """Host ``dataset`` under ``name``."""
        if not name or not isinstance(name, str):
            raise ValueError(f"dataset name must be a non-empty string, got {name!r}")
        self._datasets[name] = dataset

    def model(self, name: str):
        """The hosted model called ``name``."""
        try:
            return self._models[name][0]
        except KeyError:
            raise UnknownModelError(
                f"unknown model {name!r}; hosted: {sorted(self._models)}"
            ) from None

    def dataset(self, name: str) -> Dataset:
        """The hosted dataset called ``name``."""
        try:
            return self._datasets[name]
        except KeyError:
            raise UnknownDatasetError(
                f"unknown dataset {name!r}; hosted: {sorted(self._datasets)}"
            ) from None

    def describe(self) -> Dict[str, object]:
        """The ``GET /v1/models`` payload."""
        return {
            "models": [
                {"name": name, **metadata}
                for name, (_, metadata) in sorted(self._models.items())
            ],
            "datasets": [
                {
                    "name": name,
                    "samples": dataset.sample_count,
                    "features": dataset.feature_count,
                    "classes": dataset.num_classes,
                }
                for name, dataset in sorted(self._datasets.items())
            ],
            "backends": list(backend_names()),
        }

    # ------------------------------------------------------------------
    @classmethod
    def from_context(
        cls, context, methods: Sequence[str] = ("tea", "biased")
    ) -> "ModelRegistry":
        """Train ``methods`` on an ExperimentContext and host the results.

        Hosts the capped evaluation split as ``"test"`` (the default wire
        dataset) and the full test split as ``"test-full"``.  Training
        happens here, at boot — never on the request path.
        """
        registry = cls()
        for method in methods:
            result = context.result(method)
            architecture = context.architecture()
            registry.add_model(
                method,
                result.model,
                method=method,
                testbench=context.testbench,
                input_dim=architecture.input_dim,
                num_classes=architecture.num_classes,
                cores_per_network=architecture.cores_per_network,
            )
        registry.add_dataset("test", context.evaluation_dataset())
        registry.add_dataset("test-full", context.splits().test)
        return registry


class EvalService:
    """Transport-free service core: admission queue + coalescing workers."""

    def __init__(self, registry: ModelRegistry, config: Optional[ServeConfig] = None) -> None:
        self.registry = registry
        self.config = config or ServeConfig()
        self.admission = AdmissionController(
            max_depth=self.config.queue_depth,
            workers=self.config.workers,
        )
        #: one score cache shared by every worker session, so cache hits do
        #: not depend on which worker a request lands on.
        self._score_cache = ScoreCache()
        self._sessions: List[Session] = []
        self._threads: List[threading.Thread] = []
        self._http_counts: Dict[str, int] = {}  # guarded-by: _http_lock
        self._http_lock = threading.Lock()
        self._started = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "EvalService":
        """Start the worker pool (idempotent)."""
        if self._started:
            return self
        self._started = True
        for index in range(self.config.workers):
            session = self._make_session()
            self._sessions.append(session)
            thread = threading.Thread(
                target=self._worker_loop,
                args=(session,),
                name=f"repro-serve-worker-{index}",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()
        return self

    def _make_session(self) -> Session:
        return Session(
            backend=self.config.backend,
            cache=self._score_cache,
            cache_dir=self.config.cache_dir,
            cache_max_bytes=self.config.cache_max_bytes,
        )

    def close(self) -> None:
        """Stop admitting, fail still-queued jobs, join the workers."""
        for job in self.admission.close():
            job.fail(ServiceClosedError("service shut down before the job ran"))
            self.admission.job_done(job, ok=False)
        for thread in self._threads:
            thread.join(timeout=30.0)
        self._threads = []

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def enqueue(self, payload: object) -> Job:
        """Validate, resolve, and admit one wire payload.

        Raises the typed protocol errors (:class:`CodecError`,
        :class:`UnknownModelError`, :class:`UnknownDatasetError`,
        :class:`QueueFullError`, :class:`ServiceClosedError`) for the
        transport to map onto HTTP statuses.
        """
        wire = decode_request(payload)
        request = to_eval_request(wire, self.registry)
        return self.admission.submit(Job(request=request, backend=wire.backend))

    def evaluate_request(self, request: EvalRequest, backend: Optional[str] = None):
        """Admit an in-process :class:`EvalRequest` and wait for its result.

        The examples use this to show queue semantics without HTTP; it goes
        through the same admission + worker path as wire requests.
        """
        job = self.admission.submit(Job(request=request, backend=backend))
        job.done.wait()
        if job.error is not None:
            raise job.error
        return job.result

    def _worker_loop(self, session: Session) -> None:
        admission = self.admission
        while True:
            batch = admission.next_batch(self.config.batch_max, timeout=0.2)
            if not batch:
                if admission.closed:
                    return
                continue
            handles = []
            for job in batch:
                try:
                    handles.append(
                        (job, session.submit(job.request, backend=job.backend))
                    )
                except Exception as error:
                    job.fail(error)
                    admission.job_done(job, ok=False)
            # flush() resolves failures per handle and is not expected to
            # raise; the guard keeps a surprise from killing the worker.
            # Handles it did serve before failing still deliver below, and
            # unserved ones surface a per-job error via handle.result() —
            # a claimed batch never strands its clients.
            try:
                session.flush()
            except Exception:
                pass
            for job, handle in handles:
                try:
                    job.resolve(handle.result())
                    admission.job_done(job, ok=True)
                except Exception as error:
                    job.fail(error)
                    admission.job_done(job, ok=False)

    # ------------------------------------------------------------------
    # introspection endpoints
    # ------------------------------------------------------------------
    def record_http(self, route: str, status: int) -> None:
        """Count one HTTP response for the /metrics request table."""
        key = f"{route} {status}"
        with self._http_lock:
            self._http_counts[key] = self._http_counts.get(key, 0) + 1

    def health(self) -> Dict[str, object]:
        snapshot = self.admission.snapshot()
        return {
            "status": "shutting-down" if self.admission.closed else "ok",
            "workers": self.config.workers,
            "queue_depth": snapshot["queue_depth"],
            "in_flight": snapshot["in_flight"],
        }

    def models(self) -> Dict[str, object]:
        return self.registry.describe()

    def metrics(self) -> Dict[str, object]:
        """Queue counters, latency percentiles, session and cache stats.

        The ``requests`` block satisfies two conservation invariants the CI
        smoke asserts: ``received == admitted + rejected`` and
        ``admitted == completed + failed + in_flight``.
        """
        session_totals = {
            "submitted": 0,
            "flushes": 0,
            "engine_passes": 0,
            "coalesced_requests": 0,
        }
        caches: Dict[int, object] = {}
        for session in self._sessions:
            snapshot = session.stats()
            for key in session_totals:
                session_totals[key] += snapshot[key]
            for cache in session._cache_objects():
                caches[id(cache)] = cache
        hits = sum(cache.hits for cache in caches.values())
        misses = sum(cache.misses for cache in caches.values())
        with self._http_lock:
            http_counts = dict(sorted(self._http_counts.items()))
        return {
            "requests": self.admission.snapshot(),
            "sessions": session_totals,
            "cache": {
                "hits": hits,
                "misses": misses,
                "hit_rate": hits / (hits + misses) if (hits + misses) else None,
            },
            "http": http_counts,
        }


class _ServeHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that carries the service for its handlers."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], service: EvalService) -> None:
        super().__init__(address, ServeHandler)
        self.service = service


class EvalServer:
    """HTTP front end over one :class:`EvalService`.

    Usable as a context manager (the tests and the smoke benchmark boot it
    on an ephemeral port)::

        with EvalServer(registry, ServeConfig(port=0)) as server:
            client = ServeClient(port=server.port)
            result = client.evaluate(model="tea", copy_levels=[1, 2])
    """

    def __init__(self, registry: ModelRegistry, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.service = EvalService(registry, self.config)
        self._httpd: Optional[_ServeHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (the OS choice when configured with ``port=0``)."""
        if self._httpd is None:
            raise RuntimeError("server is not started")
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    def start(self) -> "EvalServer":
        """Bind the socket and start the worker pool + acceptor thread."""
        if self._httpd is not None:
            return self
        self.service.start()
        self._httpd = _ServeHTTPServer(
            (self.config.host, self.config.port), self.service
        )
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-serve-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        """Drain: stop admissions, resolve queued jobs, stop the acceptor."""
        self.service.close()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def __enter__(self) -> "EvalServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
