"""The evaluation service: model registry, worker pool, HTTP server.

Three layers, separable for testing:

* :class:`ModelRegistry` — the models and datasets the service hosts, by
  name (wire requests reference names; :func:`ModelRegistry.from_context`
  trains the paper's learning methods on one test bench and registers the
  matching evaluation splits).
* :class:`EvalService` — the transport-free core: an
  :class:`~repro.serve.admission.AdmissionController` in front of a worker
  pool, each worker draining *batches* of admitted jobs through its own
  :class:`repro.api.Session` (``submit`` + one ``flush`` per batch), so
  same-fingerprint requests coalesce onto shared engine passes exactly as
  they do in-process.  All workers share one score cache, so a repeated
  configuration is a cache hit regardless of which worker serves it.
  Responses are **bit-identical** to a direct ``Session.evaluate`` of the
  same request — the service adds queuing, never arithmetic.
* :class:`EvalServer` — the stdlib HTTP binding
  (:class:`~http.server.ThreadingHTTPServer` + the handler in
  :mod:`repro.serve.handlers`) exposing ``POST /v1/evaluate``,
  ``GET /v1/models``, ``GET /healthz``, and ``GET /metrics``.

Two durability/throughput upgrades sit behind :class:`ServeConfig` flags:

* ``worker_mode="process"`` moves evaluation out of the GIL: the worker
  pool becomes ``workers`` *dispatcher threads* feeding a spawn-context
  :class:`~concurrent.futures.ProcessPoolExecutor` whose children each own
  a :class:`~repro.api.Session` built from a pickled copy of the registry.
  Batches ship as normalized wire payloads (names, not objects), results
  come back as :class:`~repro.api.EvalResult` objects (numpy pickling is
  exact, so bit-identity survives the process hop).  The parent keeps a
  shared :class:`~repro.api.ResultMemo` and answers repeated deterministic
  requests directly from it, without touching a worker.
* ``journal_path`` enables the append-only request journal
  (:mod:`repro.serve.journal`): every admitted deterministic request is
  fingerprinted to disk, and a restarted service replays the journal at
  boot through a warm session — filling the result memo (every backend)
  and the score caches (vectorized) so a repeated burst after a restart is
  served from cache, not recomputed.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import threading
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from http.server import ThreadingHTTPServer
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api import ResultMemo, Session, backend_names
from repro.api.protocol import EvalRequest
from repro.datasets.base import Dataset
from repro.eval.runner import ScoreCache
from repro.serve.admission import (
    AdmissionController,
    Job,
    ServiceClosedError,
)
from repro.serve.codec import (
    UnknownDatasetError,
    UnknownModelError,
    decode_request,
    to_eval_request,
    wire_payload,
)
from repro.serve.controller import ControllerConfig
from repro.serve.handlers import ServeHandler
from repro.serve.journal import RequestJournal

#: Worker-pool implementations a service may run.
WORKER_MODES = ("thread", "process")


@dataclass
class ServeConfig:
    """Tunables of one service instance.

    Attributes:
        host / port: bind address; ``port=0`` asks the OS for an ephemeral
            port (the bound port is on :attr:`EvalServer.port`).
        backend: default backend for requests that do not name one
            (``"auto"`` selects by request capability, as in ``Session``).
        workers: worker threads (``worker_mode="thread"``) or worker
            processes (``worker_mode="process"``) draining the admission
            queue.
        worker_mode: ``"thread"`` drains batches on in-process sessions;
            ``"process"`` dispatches batches to a spawn-context process
            pool around the GIL (see the module docstring).
        queue_depth: *starting* bound on queued jobs; arrivals beyond the
            effective bound get 429.  With ``target_p95`` set the bound
            adapts each control tick.
        target_p95: p95 latency target in seconds for the adaptive
            admission controller; ``None`` keeps the static bound.
        controller_config: full controller tunables; overrides
            ``target_p95`` when given.
        batch_max: most jobs one worker claims per drain — the coalescing
            window.
        request_timeout: seconds an HTTP handler waits for its job before
            answering 504 (the job itself is not cancelled).
        cache_dir / cache_max_bytes: persistent score cache, as in
            :class:`repro.api.Session`.
        journal_path: append-only request-journal file; ``None`` disables
            journaling (and boot-time warm replay).
        memo_entries: capacity of the shared result memo.
    """

    host: str = "127.0.0.1"
    port: int = 8000
    backend: str = "auto"
    workers: int = 2
    worker_mode: str = "thread"
    queue_depth: int = 64
    target_p95: Optional[float] = None
    controller_config: Optional[ControllerConfig] = None
    batch_max: int = 8
    request_timeout: float = 300.0
    cache_dir: Optional[str] = None
    cache_max_bytes: Optional[int] = None
    journal_path: Optional[str] = None
    memo_entries: int = 256

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        if self.worker_mode not in WORKER_MODES:
            raise ValueError(
                f"worker_mode must be one of {WORKER_MODES}, "
                f"got {self.worker_mode!r}"
            )
        if self.batch_max <= 0:
            raise ValueError(f"batch_max must be positive, got {self.batch_max}")
        if self.request_timeout <= 0:
            raise ValueError(
                f"request_timeout must be positive, got {self.request_timeout}"
            )
        if self.target_p95 is not None and self.target_p95 <= 0:
            raise ValueError(
                f"target_p95 must be positive, got {self.target_p95}"
            )
        if self.memo_entries <= 0:
            raise ValueError(
                f"memo_entries must be positive, got {self.memo_entries}"
            )

    def resolved_controller_config(self) -> Optional[ControllerConfig]:
        """The controller tunables this config asks for (``None`` = static)."""
        if self.controller_config is not None:
            return self.controller_config
        if self.target_p95 is not None:
            return ControllerConfig(target_p95=self.target_p95)
        return None


class ModelRegistry:
    """Named models and datasets a service instance hosts."""

    def __init__(self) -> None:
        self._models: Dict[str, Tuple[object, Dict[str, object]]] = {}
        self._datasets: Dict[str, Dataset] = {}

    # ------------------------------------------------------------------
    def add_model(self, name: str, model, **metadata) -> None:
        """Host ``model`` under ``name`` (metadata shows up in /v1/models)."""
        if not name or not isinstance(name, str):
            raise ValueError(f"model name must be a non-empty string, got {name!r}")
        self._models[name] = (model, dict(metadata))

    def add_dataset(self, name: str, dataset: Dataset) -> None:
        """Host ``dataset`` under ``name``."""
        if not name or not isinstance(name, str):
            raise ValueError(f"dataset name must be a non-empty string, got {name!r}")
        self._datasets[name] = dataset

    def model(self, name: str):
        """The hosted model called ``name``."""
        try:
            return self._models[name][0]
        except KeyError:
            raise UnknownModelError(
                f"unknown model {name!r}; hosted: {sorted(self._models)}"
            ) from None

    def dataset(self, name: str) -> Dataset:
        """The hosted dataset called ``name``."""
        try:
            return self._datasets[name]
        except KeyError:
            raise UnknownDatasetError(
                f"unknown dataset {name!r}; hosted: {sorted(self._datasets)}"
            ) from None

    def describe(self) -> Dict[str, object]:
        """The ``GET /v1/models`` payload."""
        return {
            "models": [
                {"name": name, **metadata}
                for name, (_, metadata) in sorted(self._models.items())
            ],
            "datasets": [
                {
                    "name": name,
                    "samples": dataset.sample_count,
                    "features": dataset.feature_count,
                    "classes": dataset.num_classes,
                }
                for name, dataset in sorted(self._datasets.items())
            ],
            "backends": list(backend_names()),
        }

    # ------------------------------------------------------------------
    @classmethod
    def from_context(
        cls, context, methods: Sequence[str] = ("tea", "biased")
    ) -> "ModelRegistry":
        """Train ``methods`` on an ExperimentContext and host the results.

        Hosts the capped evaluation split as ``"test"`` (the default wire
        dataset) and the full test split as ``"test-full"``.  Training
        happens here, at boot — never on the request path.
        """
        registry = cls()
        for method in methods:
            result = context.result(method)
            architecture = context.architecture()
            registry.add_model(
                method,
                result.model,
                method=method,
                testbench=context.testbench,
                input_dim=architecture.input_dim,
                num_classes=architecture.num_classes,
                cores_per_network=architecture.cores_per_network,
            )
        registry.add_dataset("test", context.evaluation_dataset())
        registry.add_dataset("test-full", context.splits().test)
        return registry


# ----------------------------------------------------------------------
# process-worker plumbing (module level: spawn children must import it)
# ----------------------------------------------------------------------
#: per-child session + registry, built once by the pool initializer.
_WORKER_SESSION: Optional[Session] = None
_WORKER_REGISTRY: Optional[ModelRegistry] = None


def _process_worker_init(
    registry: ModelRegistry,
    backend: str,
    cache_dir: Optional[str],
    cache_max_bytes: Optional[int],
) -> None:
    """Build one worker child's session from a pickled registry copy.

    Each child owns its session (and in-memory caches); the on-disk score
    cache under ``cache_dir`` is the cross-process shared tier — its file
    writes are atomic, so children and restarts share it safely.
    """
    global _WORKER_SESSION, _WORKER_REGISTRY
    _WORKER_REGISTRY = registry
    _WORKER_SESSION = Session(
        backend=backend,
        cache_dir=cache_dir,
        cache_max_bytes=cache_max_bytes,
        result_memo=ResultMemo(),
    )


def _picklable_error(error: BaseException) -> BaseException:
    """``error`` itself when it pickles, else a ``RuntimeError`` stand-in.

    Typed protocol errors (``UnsupportedRequestError``, ``CodecError``,
    ...) pickle fine and keep their HTTP status mapping across the process
    hop; anything carrying unpicklable baggage degrades to a string-only
    ``RuntimeError`` (a 500) instead of poisoning the whole batch.
    """
    try:
        pickle.loads(pickle.dumps(error))
        return error
    except Exception:
        return RuntimeError(f"{type(error).__name__}: {error}")


def _process_worker_run(
    items: List[Tuple[object, ...]],
) -> Tuple[List[Tuple[str, object]], int, Dict[str, object]]:
    """Serve one claimed batch inside a worker child.

    ``items`` entries are ``("wire", payload)`` — a normalized wire dict
    resolved against the child's registry — or ``("request", request,
    backend)`` for in-process jobs that never had a wire form.  Returns
    per-item ``("ok", result)`` / ``("error", exception)`` outcomes in
    order, plus the child's pid and cumulative session stats so the parent
    can aggregate ``/metrics`` without another round-trip.
    """
    session = _WORKER_SESSION
    registry = _WORKER_REGISTRY
    assert session is not None and registry is not None
    handles: List[object] = []
    for item in items:
        try:
            if item[0] == "wire":
                wire = decode_request(item[1])
                request = to_eval_request(wire, registry)
                handles.append(session.submit(request, backend=wire.backend))
            else:
                handles.append(session.submit(item[1], backend=item[2]))
        except Exception as error:
            handles.append(_picklable_error(error))
    try:
        session.flush()
    except Exception:
        pass
    outcomes: List[Tuple[str, object]] = []
    for handle in handles:
        if isinstance(handle, BaseException):
            outcomes.append(("error", handle))
            continue
        try:
            outcomes.append(("ok", handle.result()))
        except Exception as error:
            outcomes.append(("error", _picklable_error(error)))
    return outcomes, os.getpid(), session.stats()


class EvalService:
    """Transport-free service core: admission queue + coalescing workers."""

    def __init__(
        self, registry: ModelRegistry, config: Optional[ServeConfig] = None
    ) -> None:
        self.registry = registry
        self.config = config or ServeConfig()
        self.admission = AdmissionController(
            max_depth=self.config.queue_depth,
            workers=self.config.workers,
            controller_config=self.config.resolved_controller_config(),
        )
        #: one score cache shared by every worker session, so cache hits do
        #: not depend on which worker a request lands on.
        self._score_cache = ScoreCache()
        #: one result memo shared by the local sessions (thread workers and
        #: the warm/dispatch session) — the all-backend repeated-request tier.
        self.result_memo = ResultMemo(max_entries=self.config.memo_entries)
        self.journal = (
            RequestJournal(self.config.journal_path)
            if self.config.journal_path is not None
            else None
        )
        self._sessions: List[Session] = []
        self._threads: List[threading.Thread] = []
        self._executor: Optional[ProcessPoolExecutor] = None
        #: warm-replay + process-mode dispatch session (set by start()).
        self._local_session: Optional[Session] = None
        self._journal_warmed = 0
        self._journal_compacted = 0
        self._worker_stats: Dict[int, Dict[str, object]] = {}  # guarded-by: _stats_lock
        self._stats_lock = threading.Lock()
        self._http_counts: Dict[str, int] = {}  # guarded-by: _http_lock
        self._http_lock = threading.Lock()
        self._started = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "EvalService":
        """Warm from the journal, then start the worker pool (idempotent)."""
        if self._started:
            return self
        self._started = True
        self._local_session = self._make_session()
        self._sessions.append(self._local_session)
        self._journal_warmed = self._warm_from_journal()
        if self.journal is not None:
            # Boot is the one moment the whole journal was just read and no
            # appender is active yet: rewrite it down to unique fingerprints
            # so the file tracks distinct requests, not total traffic.
            self._journal_compacted = self.journal.compact()
        if self.config.worker_mode == "process" and self.config.workers > 0:
            self._executor = ProcessPoolExecutor(
                max_workers=self.config.workers,
                mp_context=multiprocessing.get_context("spawn"),
                initializer=_process_worker_init,
                initargs=(
                    self.registry,
                    self.config.backend,
                    self.config.cache_dir,
                    self.config.cache_max_bytes,
                ),
            )
        for index in range(self.config.workers):
            if self.config.worker_mode == "process":
                thread = threading.Thread(
                    target=self._dispatch_loop,
                    name=f"repro-serve-dispatch-{index}",
                    daemon=True,
                )
            else:
                session = self._make_session()
                self._sessions.append(session)
                thread = threading.Thread(
                    target=self._worker_loop,
                    args=(session,),
                    name=f"repro-serve-worker-{index}",
                    daemon=True,
                )
            self._threads.append(thread)
            thread.start()
        return self

    def _make_session(self) -> Session:
        return Session(
            backend=self.config.backend,
            cache=self._score_cache,
            cache_dir=self.config.cache_dir,
            cache_max_bytes=self.config.cache_max_bytes,
            result_memo=self.result_memo,
        )

    def _warm_from_journal(self) -> int:
        """Replay journaled requests through the local session at boot.

        Fills the shared result memo (every backend) and the score caches
        (vectorized) so a restarted server answers a repeated burst from
        cache.  Best-effort by design: a record naming a model this boot
        does not host, or failing evaluation, is skipped — warming must
        never keep a server from starting.
        """
        if self.journal is None:
            return 0
        session = self._local_session
        assert session is not None
        handles = []
        for payload in self.journal.replay():
            try:
                wire = decode_request(payload)
                request = to_eval_request(wire, self.registry)
                handles.append(session.submit(request, backend=wire.backend))
            except Exception:
                continue
        try:
            session.flush()
        except Exception:
            pass
        warmed = 0
        for handle in handles:
            try:
                handle.result()
                warmed += 1
            except Exception:
                continue
        return warmed

    def close(self) -> None:
        """Stop admitting, fail still-queued jobs, join the workers."""
        for job in self.admission.close():
            job.fail(ServiceClosedError("service shut down before the job ran"))
            self.admission.job_done(job, ok=False)
        for thread in self._threads:
            thread.join(timeout=30.0)
        self._threads = []
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self.journal is not None:
            self.journal.close()

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def enqueue(self, payload: object) -> Job:
        """Validate, resolve, and admit one wire payload.

        Raises the typed protocol errors (:class:`CodecError`,
        :class:`UnknownModelError`, :class:`UnknownDatasetError`,
        :class:`QueueFullError`, :class:`ServiceClosedError`) for the
        transport to map onto HTTP statuses.
        """
        wire = decode_request(payload)
        request = to_eval_request(wire, self.registry)
        normalized = wire_payload(wire)
        job = self.admission.submit(
            Job(request=request, backend=wire.backend, wire=normalized)
        )
        # Journal *admitted* deterministic requests only: shed arrivals are
        # not service state, and seed=None requests are fresh entropy that
        # no cache may ever serve, so replaying them would only burn boot
        # time recomputing results nobody can be answered with.
        if self.journal is not None and wire.seed is not None:
            self.journal.record(normalized)
        return job

    def evaluate_request(self, request: EvalRequest, backend: Optional[str] = None):
        """Admit an in-process :class:`EvalRequest` and wait for its result.

        The examples use this to show queue semantics without HTTP; it goes
        through the same admission + worker path as wire requests.
        """
        job = self.admission.submit(Job(request=request, backend=backend))
        job.done.wait()
        if job.error is not None:
            raise job.error
        return job.result

    def _worker_loop(self, session: Session) -> None:
        admission = self.admission
        while True:
            batch = admission.next_batch(self.config.batch_max, timeout=0.2)
            if not batch:
                if admission.closed:
                    return
                continue
            handles = []
            for job in batch:
                try:
                    handles.append(
                        (job, session.submit(job.request, backend=job.backend))
                    )
                except Exception as error:
                    job.fail(error)
                    admission.job_done(job, ok=False)
            # flush() resolves failures per handle and is not expected to
            # raise; the guard keeps a surprise from killing the worker.
            # Handles it did serve before failing still deliver below, and
            # unserved ones surface a per-job error via handle.result() —
            # a claimed batch never strands its clients.
            try:
                session.flush()
            except Exception:
                pass
            for job, handle in handles:
                try:
                    job.resolve(handle.result())
                    admission.job_done(job, ok=True)
                except Exception as error:
                    job.fail(error)
                    admission.job_done(job, ok=False)

    def _dispatch_loop(self) -> None:
        """Process-mode worker: claim batches, ship them to the pool.

        Repeated deterministic requests are answered from the parent-side
        result memo without a process hop; everything else ships to a
        worker child as normalized wire payloads (or the request object
        itself for in-process jobs), and the results warm the memo on the
        way back.  Runs until the admission queue closes and drains.
        """
        admission = self.admission
        session = self._local_session
        executor = self._executor
        assert session is not None and executor is not None
        while True:
            batch = admission.next_batch(self.config.batch_max, timeout=0.2)
            if not batch:
                if admission.closed:
                    return
                continue
            remaining: List[Job] = []
            for job in batch:
                try:
                    memoized = session.cached_result(
                        job.request, backend=job.backend
                    )
                except Exception:
                    memoized = None
                if memoized is not None:
                    job.resolve(memoized)
                    admission.job_done(job, ok=True)
                else:
                    remaining.append(job)
            if not remaining:
                continue
            items: List[Tuple[object, ...]] = [
                ("wire", job.wire)
                if job.wire is not None
                else ("request", job.request, job.backend)
                for job in remaining
            ]
            try:
                outcomes, pid, stats = executor.submit(
                    _process_worker_run, items
                ).result()
            except Exception as error:
                for job in remaining:
                    job.fail(error)
                    admission.job_done(job, ok=False)
                continue
            with self._stats_lock:
                self._worker_stats[pid] = stats
            for job, outcome in zip(remaining, outcomes):
                if outcome[0] == "ok":
                    result = outcome[1]
                    try:
                        session.memoize_result(
                            job.request, result, backend=job.backend
                        )
                    except Exception:
                        pass
                    job.resolve(result)
                    admission.job_done(job, ok=True)
                else:
                    error = outcome[1]
                    job.fail(
                        error
                        if isinstance(error, BaseException)
                        else RuntimeError(str(error))
                    )
                    admission.job_done(job, ok=False)

    # ------------------------------------------------------------------
    # introspection endpoints
    # ------------------------------------------------------------------
    def record_http(self, route: str, status: int) -> None:
        """Count one HTTP response for the /metrics request table."""
        key = f"{route} {status}"
        with self._http_lock:
            self._http_counts[key] = self._http_counts.get(key, 0) + 1

    def health(self) -> Dict[str, object]:
        snapshot = self.admission.snapshot()
        return {
            "status": "shutting-down" if self.admission.closed else "ok",
            "workers": self.config.workers,
            "queue_depth": snapshot["queue_depth"],
            "in_flight": snapshot["in_flight"],
        }

    def models(self) -> Dict[str, object]:
        return self.registry.describe()

    def metrics(self) -> Dict[str, object]:
        """Queue counters, latency percentiles, session and cache stats.

        The ``requests`` block satisfies two conservation invariants the CI
        smoke asserts: ``received == admitted + rejected`` and
        ``admitted == completed + failed + in_flight``.
        """
        session_totals = {
            "submitted": 0,
            "flushes": 0,
            "engine_passes": 0,
            "coalesced_requests": 0,
        }
        caches: Dict[int, object] = {}
        for session in self._sessions:
            snapshot = session.stats()
            for key in session_totals:
                session_totals[key] += snapshot[key]
            for cache in session._cache_objects():
                caches[id(cache)] = cache
        hits = sum(cache.hits for cache in caches.values())
        misses = sum(cache.misses for cache in caches.values())
        # Process workers report their cumulative session stats with every
        # served batch; fold the latest snapshot per child in (their caches
        # live in other processes, so the counters arrive by value).
        with self._stats_lock:
            worker_stats = list(self._worker_stats.values())
        for snapshot in worker_stats:
            for key in session_totals:
                session_totals[key] += int(snapshot.get(key, 0))
            hits += int(snapshot.get("cache_hits", 0))
            misses += int(snapshot.get("cache_misses", 0))
        with self._http_lock:
            http_counts = dict(sorted(self._http_counts.items()))
        journal_view: Optional[Dict[str, object]] = None
        if self.journal is not None:
            journal_view = self.journal.snapshot()
            journal_view["warmed_at_boot"] = self._journal_warmed
            journal_view["compacted_at_boot"] = self._journal_compacted
        return {
            "requests": self.admission.snapshot(),
            "controller": self.admission.controller.snapshot(),
            "drain": self.admission.drain_snapshot(),
            "sessions": session_totals,
            "cache": {
                "hits": hits,
                "misses": misses,
                "hit_rate": hits / (hits + misses) if (hits + misses) else None,
            },
            "memo": self.result_memo.snapshot(),
            "journal": journal_view,
            "worker_mode": self.config.worker_mode,
            "http": http_counts,
        }


class _ServeHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that carries the service for its handlers."""

    daemon_threads = True
    allow_reuse_address = True
    # The stdlib default listen backlog of 5 RSTs connections under a
    # concurrent burst; admission control, not the kernel, sheds load here.
    request_queue_size = 128

    def __init__(self, address: Tuple[str, int], service: EvalService) -> None:
        super().__init__(address, ServeHandler)
        self.service = service


class EvalServer:
    """HTTP front end over one :class:`EvalService`.

    Usable as a context manager (the tests and the smoke benchmark boot it
    on an ephemeral port)::

        with EvalServer(registry, ServeConfig(port=0)) as server:
            client = ServeClient(port=server.port)
            result = client.evaluate(model="tea", copy_levels=[1, 2])
    """

    def __init__(
        self, registry: ModelRegistry, config: Optional[ServeConfig] = None
    ) -> None:
        self.config = config or ServeConfig()
        self.service = EvalService(registry, self.config)
        self._httpd: Optional[_ServeHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (the OS choice when configured with ``port=0``)."""
        if self._httpd is None:
            raise RuntimeError("server is not started")
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    def start(self) -> "EvalServer":
        """Bind the socket and start the worker pool + acceptor thread."""
        if self._httpd is not None:
            return self
        self.service.start()
        self._httpd = _ServeHTTPServer(
            (self.config.host, self.config.port), self.service
        )
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-serve-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        """Drain: stop admissions, resolve queued jobs, stop the acceptor."""
        self.service.close()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def __enter__(self) -> "EvalServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
